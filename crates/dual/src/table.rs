//! Per-destination DUAL state.

use netsim::dense::{DenseMap, DenseSet};
use netsim::ident::NodeId;
use netsim::protocol::TimerId;
use routing_core::metric::Metric;

/// Whether a destination is in normal operation or mid-diffusion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DualState {
    /// Normal: the successor satisfies the feasibility condition.
    Passive,
    /// A diffusing computation is in progress.
    Active {
        /// Neighbors whose replies are outstanding.
        pending: DenseSet,
        /// Neighbors whose queries we deferred until our own diffusion
        /// finishes.
        deferred: DenseSet,
        /// Stuck-in-active guard timer.
        sia_timer: Option<TimerId>,
    },
}

/// The DUAL bookkeeping for one destination.
#[derive(Debug, Clone)]
pub struct DualRoute {
    /// Current distance (what we report to neighbors).
    pub distance: Metric,
    /// Feasible distance: the smallest distance since the last diffusion
    /// completed; the loop-freedom invariant compares reported distances
    /// against it.
    pub feasible_distance: Metric,
    /// Current successor (next hop), if any.
    pub successor: Option<NodeId>,
    /// Last distance reported by each neighbor.
    pub reported: DenseMap<Metric>,
    /// Passive/active state.
    pub state: DualState,
}

impl DualRoute {
    /// A fresh route that knows nothing.
    #[must_use]
    pub fn unknown() -> Self {
        DualRoute {
            distance: Metric::INFINITY,
            feasible_distance: Metric::INFINITY,
            successor: None,
            reported: DenseMap::new(),
            state: DualState::Passive,
        }
    }

    /// Returns `true` while a diffusing computation is in progress.
    #[must_use]
    pub fn is_active(&self) -> bool {
        matches!(self.state, DualState::Active { .. })
    }

    /// The neighbors satisfying the feasibility condition
    /// (reported distance strictly below the feasible distance), with the
    /// total distance through them.
    pub fn feasible_successors<'a, F>(
        &'a self,
        cost: F,
    ) -> impl Iterator<Item = (NodeId, Metric)> + 'a
    where
        F: Fn(NodeId) -> Option<u32> + 'a,
    {
        let fd = self.feasible_distance;
        self.reported.iter().filter_map(move |(n, &rd)| {
            if rd < fd {
                cost(n).map(|c| (n, rd + c))
            } else {
                None
            }
        })
    }

    /// The overall best `(neighbor, distance)` ignoring feasibility (used
    /// when a diffusion completes and the feasible distance resets).
    pub fn best_any<'a, F>(&'a self, cost: F) -> Option<(NodeId, Metric)>
    where
        F: Fn(NodeId) -> Option<u32> + 'a,
    {
        routing_core::select_best(
            self.reported
                .iter()
                .filter_map(|(n, &rd)| cost(n).map(|c| (n, rd + c))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn route_with(fd: u32, reported: &[(u32, u32)]) -> DualRoute {
        let mut r = DualRoute::unknown();
        r.feasible_distance = Metric::new(fd);
        for &(nb, rd) in reported {
            r.reported.insert(n(nb), Metric::new(rd));
        }
        r
    }

    #[test]
    fn feasibility_condition_is_strict() {
        let r = route_with(3, &[(1, 2), (2, 3), (3, 4)]);
        let feasible: Vec<NodeId> = r
            .feasible_successors(|_| Some(1))
            .map(|(nb, _)| nb)
            .collect();
        // Only rd < fd qualifies: neighbor 1 (rd 2). Neighbor 2 (rd 3 == fd)
        // and neighbor 3 (rd 4) do not.
        assert_eq!(feasible, vec![n(1)]);
    }

    #[test]
    fn best_any_ignores_feasibility() {
        let r = route_with(1, &[(1, 5), (2, 3)]);
        let best = r.best_any(|_| Some(1));
        assert_eq!(best, Some((n(2), Metric::new(4))));
    }

    #[test]
    fn unreachable_neighbors_are_skipped() {
        let r = route_with(10, &[(1, 2), (2, 3)]);
        // Neighbor 1's link is down (no cost).
        let best = r.best_any(|nb| if nb == n(1) { None } else { Some(1) });
        assert_eq!(best, Some((n(2), Metric::new(4))));
    }

    #[test]
    fn fresh_route_is_passive_and_unreachable() {
        let r = DualRoute::unknown();
        assert!(!r.is_active());
        assert!(!r.distance.is_finite());
        assert_eq!(r.successor, None);
    }
}
