//! # dual — a loop-free distance vector with diffusing computations
//!
//! The comparator discussed in the paper's §2 and conclusion
//! (Garcia-Luna-Aceves' DUAL, the algorithm inside EIGRP): instead of
//! preventing loops probabilistically (split horizon) or detecting them
//! after the fact (AS paths), DUAL maintains a *feasibility condition* —
//! only neighbors whose reported distance is strictly below the node's
//! feasible distance may become successors — and, when no neighbor
//! qualifies, runs a *diffusing computation*: the route is frozen
//! (unreachable) while queries propagate outward and replies unwind back.
//!
//! The paper's claim to test: this "eliminates routing loops by paying a
//! high cost of delaying routing updates and stopping packet delivery
//! during convergence". The `ext_dual` bench measures exactly that
//! trade-off against DBF and BGP.
//!
//! ```
//! use dual::Dual;
//! use netsim::protocol::RoutingProtocol;
//!
//! assert_eq!(Dual::new().name(), "dual");
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod message;
pub mod protocol;
pub mod table;

pub use message::{DualEntry, DualKind, DualMessage};
pub use protocol::{Dual, DualConfig};
pub use table::{DualRoute, DualState};
