//! The DUAL protocol engine (diffusing computations, loop-free by
//! construction).

use std::sync::Arc;

use netsim::dense::{DenseMap, DenseSet};
use netsim::ident::NodeId;
use netsim::protocol::{Payload, RoutingProtocol, SharedPayload, TimerToken};
use netsim::simulator::ProtocolContext;
use netsim::time::SimDuration;
use routing_core::metric::Metric;
use routing_core::select_best;
use serde::{Deserialize, Serialize};

use crate::message::{DualEntry, DualKind, DualMessage};
use crate::table::{DualRoute, DualState};

mod timer {
    /// Stuck-in-active guard. arg = destination index.
    pub const SIA: u64 = 1;
}

/// Tunable DUAL parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DualConfig {
    /// Stuck-in-active timeout: a diffusing computation that has not
    /// completed by then is forcibly resolved with the information at
    /// hand (EIGRP's SIA reset, simplified).
    pub sia_timeout: SimDuration,
}

impl Default for DualConfig {
    fn default() -> Self {
        DualConfig {
            sia_timeout: SimDuration::from_secs(10),
        }
    }
}

/// A DUAL instance for one router.
///
/// Messages travel over the reliable in-order session service (EIGRP runs
/// DUAL over its Reliable Transport Protocol for the same reason: the
/// algorithm is event-driven with no periodic refresh, so a lost update
/// would leave permanent state gaps).
///
/// This is the comparator the paper's §2/§6 discuss (Garcia-Luna-Aceves):
/// a distance vector that *never* forms transient forwarding loops, paying
/// for it by freezing routes during diffusing computations — affected
/// destinations are unreachable until the diffusion completes. On the
/// study's unit-cost topologies the implementation's passive distance is
/// non-increasing between diffusions, so the feasibility condition
/// (reported distance < feasible distance) is exactly the classic SNC and
/// the protocol converges to shortest paths.
#[derive(Debug)]
pub struct Dual {
    config: DualConfig,
    routes: Vec<DualRoute>,
    /// `(dest, new_distance)` updates accumulated during the current event.
    update_batch: DenseMap<Metric>,
}

impl Dual {
    /// Creates an instance with default parameters.
    #[must_use]
    pub fn new() -> Self {
        Dual::with_config(DualConfig::default())
    }

    /// Creates an instance with explicit parameters.
    #[must_use]
    pub fn with_config(config: DualConfig) -> Self {
        Dual {
            config,
            routes: Vec::new(),
            update_batch: DenseMap::new(),
        }
    }

    /// Read access to a destination's DUAL state (tests/forensics).
    #[must_use]
    pub fn route(&self, dest: NodeId) -> Option<&DualRoute> {
        self.routes.get(dest.index())
    }

    /// Cost closure: unit cost to perceived-up neighbors only.
    fn up_cost(ctx: &ProtocolContext<'_>, n: NodeId) -> Option<u32> {
        ctx.neighbor_up(n).then(|| ctx.link_cost(n))
    }

    /// Passive-state local computation for one destination.
    fn local_compute(&mut self, ctx: &mut ProtocolContext<'_>, dest: NodeId) {
        if dest == ctx.node() || self.routes[dest.index()].is_active() {
            return;
        }
        let best_feasible = {
            let route = &self.routes[dest.index()];
            select_best(route.feasible_successors(|n| Self::up_cost(ctx, n)))
        };
        match best_feasible {
            Some((successor, distance)) => {
                let route = &mut self.routes[dest.index()];
                let changed =
                    route.successor != Some(successor) || route.distance != distance;
                route.successor = Some(successor);
                route.distance = distance;
                route.feasible_distance = route.feasible_distance.min(distance);
                if changed {
                    ctx.install_route(dest, successor);
                    self.update_batch.insert(dest, distance);
                }
            }
            None => {
                let any_up_report = {
                    let route = &self.routes[dest.index()];
                    route
                        .reported
                        .keys()
                        .any(|n| ctx.neighbor_up(n))
                };
                if any_up_report {
                    self.go_active(ctx, dest);
                } else {
                    // Nobody reachable knows this destination at all.
                    let route = &mut self.routes[dest.index()];
                    let changed = route.distance.is_finite() || route.successor.is_some();
                    route.distance = Metric::INFINITY;
                    route.feasible_distance = Metric::INFINITY;
                    route.successor = None;
                    if changed {
                        ctx.remove_route(dest);
                        self.update_batch.insert(dest, Metric::INFINITY);
                    }
                }
            }
        }
    }

    /// Starts a diffusing computation: freeze (unreachable), query all up
    /// neighbors, await their replies.
    fn go_active(&mut self, ctx: &mut ProtocolContext<'_>, dest: NodeId) {
        let pending: DenseSet = ctx
            .neighbors()
            .into_iter()
            .filter(|&n| ctx.neighbor_up(n))
            .collect();
        {
            let route = &mut self.routes[dest.index()];
            route.distance = Metric::INFINITY;
            route.successor = None;
        }
        ctx.remove_route(dest);
        if pending.is_empty() {
            let route = &mut self.routes[dest.index()];
            route.feasible_distance = Metric::INFINITY;
            self.update_batch.insert(dest, Metric::INFINITY);
            return;
        }
        let sia = ctx.set_timer(
            self.config.sia_timeout,
            TimerToken::compose(timer::SIA, dest.index() as u64),
        );
        self.routes[dest.index()].state = DualState::Active {
            pending: pending.clone(),
            deferred: DenseSet::new(),
            sia_timer: Some(sia),
        };
        let query: SharedPayload = Arc::new(DualMessage::new(
            DualKind::Query,
            vec![DualEntry {
                dest,
                metric: Metric::INFINITY,
            }],
        ));
        for n in pending.iter() {
            ctx.send_reliable(n, Arc::clone(&query));
        }
    }

    /// Finishes a diffusion: reselect freely (the feasible distance
    /// resets), answer deferred queries, announce the outcome.
    fn complete_diffusion(&mut self, ctx: &mut ProtocolContext<'_>, dest: NodeId) {
        let (deferred, sia) = match &mut self.routes[dest.index()].state {
            DualState::Active {
                deferred,
                sia_timer,
                ..
            } => (std::mem::take(deferred), sia_timer.take()),
            DualState::Passive => return,
        };
        if let Some(t) = sia {
            ctx.cancel_timer(t);
        }
        let best = self.routes[dest.index()].best_any(|n| Self::up_cost(ctx, n));
        let route = &mut self.routes[dest.index()];
        route.state = DualState::Passive;
        match best {
            Some((successor, distance)) => {
                route.distance = distance;
                route.feasible_distance = distance;
                route.successor = Some(successor);
                ctx.install_route(dest, successor);
            }
            None => {
                route.distance = Metric::INFINITY;
                route.feasible_distance = Metric::INFINITY;
                route.successor = None;
                ctx.remove_route(dest);
            }
        }
        let distance = self.routes[dest.index()].distance;
        let reply: SharedPayload = Arc::new(DualMessage::new(
            DualKind::Reply,
            vec![DualEntry { dest, metric: distance }],
        ));
        for n in deferred.iter() {
            if ctx.neighbor_up(n) {
                ctx.send_reliable(n, Arc::clone(&reply));
            }
        }
        self.update_batch.insert(dest, distance);
    }

    /// Sends the batched distance changes of this event to all up
    /// neighbors (no damping: DUAL's delay lives in the diffusion freeze,
    /// not in timers).
    fn flush_updates(&mut self, ctx: &mut ProtocolContext<'_>) {
        if self.update_batch.is_empty() {
            return;
        }
        let entries: Vec<DualEntry> = self
            .update_batch
            .iter()
            .map(|(dest, &metric)| DualEntry { dest, metric })
            .collect();
        self.update_batch.clear();
        let message: SharedPayload = Arc::new(DualMessage::new(DualKind::Update, entries));
        for n in ctx.neighbors() {
            if ctx.neighbor_up(n) {
                ctx.send_reliable(n, Arc::clone(&message));
            }
        }
    }
}

impl Default for Dual {
    fn default() -> Self {
        Dual::new()
    }
}

impl RoutingProtocol for Dual {
    fn name(&self) -> &'static str {
        "dual"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        self.routes = (0..ctx.num_nodes()).map(|_| DualRoute::unknown()).collect();
        let me = &mut self.routes[ctx.node().index()];
        me.distance = Metric::ZERO;
        me.feasible_distance = Metric::ZERO;
        self.update_batch.insert(ctx.node(), Metric::ZERO);
        self.flush_updates(ctx);
    }

    fn on_message(&mut self, ctx: &mut ProtocolContext<'_>, from: NodeId, payload: &dyn Payload) {
        let Some(message) = payload.as_any().downcast_ref::<DualMessage>() else {
            debug_assert!(false, "DUAL received a foreign payload");
            return;
        };
        for entry in &message.entries {
            let dest = entry.dest;
            if dest == ctx.node() {
                continue;
            }
            self.routes[dest.index()].reported.insert(from, entry.metric);
            match message.kind {
                DualKind::Update => self.local_compute(ctx, dest),
                DualKind::Query => {
                    if self.routes[dest.index()].is_active() {
                        // Already diffusing ourselves: our distance is
                        // frozen at infinity, which is always a safe reply.
                        let reply = DualMessage::new(
                            DualKind::Reply,
                            vec![DualEntry {
                                dest,
                                metric: Metric::INFINITY,
                            }],
                        );
                        ctx.send_reliable(from, Arc::new(reply));
                    } else {
                        self.local_compute(ctx, dest);
                        if let DualState::Active { deferred, .. } =
                            &mut self.routes[dest.index()].state
                        {
                            // The query tipped us into our own diffusion:
                            // answer the querier once we are done.
                            deferred.insert(from);
                        } else {
                            let reply = DualMessage::new(
                                DualKind::Reply,
                                vec![DualEntry {
                                    dest,
                                    metric: self.routes[dest.index()].distance,
                                }],
                            );
                            ctx.send_reliable(from, Arc::new(reply));
                        }
                    }
                }
                DualKind::Reply => {
                    let complete = match &mut self.routes[dest.index()].state {
                        DualState::Active { pending, .. } => {
                            pending.remove(from);
                            pending.is_empty()
                        }
                        DualState::Passive => false,
                    };
                    if complete {
                        self.complete_diffusion(ctx, dest);
                    } else if !self.routes[dest.index()].is_active() {
                        self.local_compute(ctx, dest);
                    }
                }
            }
        }
        self.flush_updates(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ProtocolContext<'_>, token: TimerToken) {
        debug_assert_eq!(token.kind(), timer::SIA);
        let dest = NodeId::new(token.arg() as u32);
        if let DualState::Active { pending, sia_timer, .. } =
            &mut self.routes[dest.index()].state
        {
            // Stuck in active: give up on the silent neighbors and resolve
            // with what we have.
            *sia_timer = None;
            let silent: Vec<NodeId> = pending.iter().collect();
            for n in silent {
                self.routes[dest.index()].reported.remove(n);
            }
            self.complete_diffusion(ctx, dest);
            self.flush_updates(ctx);
        }
    }

    fn on_link_down(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        for i in 0..self.routes.len() {
            let dest = NodeId::new(i as u32);
            if dest == ctx.node() {
                continue;
            }
            self.routes[i].reported.remove(neighbor);
            match &mut self.routes[i].state {
                DualState::Active {
                    pending, deferred, ..
                } => {
                    deferred.remove(neighbor);
                    // A dead neighbor counts as an (infinite) reply.
                    if pending.remove(neighbor) && pending.is_empty() {
                        self.complete_diffusion(ctx, dest);
                    }
                }
                DualState::Passive => {
                    if self.routes[i].successor == Some(neighbor) {
                        self.local_compute(ctx, dest);
                    }
                }
            }
        }
        self.flush_updates(ctx);
    }

    fn on_link_up(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        // Fresh adjacency: full table exchange.
        let entries: Vec<DualEntry> = self
            .routes
            .iter()
            .enumerate()
            .filter(|(_, r)| r.distance.is_finite())
            .map(|(i, r)| DualEntry {
                dest: NodeId::new(i as u32),
                metric: r.distance,
            })
            .collect();
        if !entries.is_empty() {
            ctx.send_reliable(neighbor, Arc::new(DualMessage::new(DualKind::Update, entries)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let d = Dual::new();
        assert_eq!(d.name(), "dual");
        assert_eq!(d.config.sia_timeout, SimDuration::from_secs(10));
        assert!(d.route(NodeId::new(0)).is_none());
    }
}
