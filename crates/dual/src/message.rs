//! DUAL wire messages.

use netsim::ident::NodeId;
use netsim::protocol::Payload;
use routing_core::metric::Metric;
use serde::{Deserialize, Serialize};

/// The three DUAL message kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DualKind {
    /// Unsolicited distance report (topology/route change).
    Update,
    /// The sender lost its feasible successor and starts a diffusing
    /// computation; the receiver must (eventually) reply.
    Query,
    /// Answer to a query, carrying the replier's distance.
    Reply,
}

/// One route entry: destination and the sender's distance to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DualEntry {
    /// The destination.
    pub dest: NodeId,
    /// The sender's current distance (possibly infinite).
    pub metric: Metric,
}

/// A DUAL message: a kind plus a batch of entries.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DualMessage {
    /// What the entries mean.
    pub kind: DualKind,
    /// The affected destinations.
    pub entries: Vec<DualEntry>,
}

impl DualMessage {
    /// Creates a message.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty.
    #[must_use]
    pub fn new(kind: DualKind, entries: Vec<DualEntry>) -> Self {
        assert!(!entries.is_empty(), "empty DUAL message");
        DualMessage { kind, entries }
    }
}

impl Payload for DualMessage {
    /// EIGRP-like sizing: 20-byte header + 12 bytes per entry.
    fn size_bytes(&self) -> usize {
        20 + 12 * self.entries.len()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes() {
        let m = DualMessage::new(
            DualKind::Query,
            vec![DualEntry {
                dest: NodeId::new(3),
                metric: Metric::new(2),
            }],
        );
        assert_eq!(m.size_bytes(), 32);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_messages_rejected() {
        let _ = DualMessage::new(DualKind::Update, vec![]);
    }
}
