//! DUAL behavior on real topologies: loop-freedom and the freeze cost.

use dual::Dual;
use netsim::link::LinkConfig;
use netsim::simulator::{ForwardingPath, Simulator};
use netsim::time::SimTime;
use netsim::trace::TraceEvent;
use topology::instantiate::to_simulator_builder;
use topology::mesh::{Mesh, MeshDegree};
use topology::shortest_path::bfs;

fn dual_mesh(degree: MeshDegree, seed: u64) -> (Simulator, Mesh) {
    let mesh = Mesh::regular(7, 7, degree);
    let (mut builder, _) = to_simulator_builder(mesh.graph(), LinkConfig::default()).unwrap();
    builder.seed(seed);
    let mut sim = builder.build().unwrap();
    for node in mesh.graph().nodes() {
        sim.install_protocol(node, Box::new(Dual::new())).unwrap();
    }
    sim.start();
    (sim, mesh)
}

fn assert_steady_state(sim: &Simulator, mesh: &Mesh, graph: &topology::graph::Graph) {
    for src in graph.nodes() {
        let sp = bfs(graph, src);
        for dst in graph.nodes() {
            if src == dst {
                continue;
            }
            match sim.forwarding_path(src, dst) {
                ForwardingPath::Complete(path) => assert_eq!(
                    (path.len() - 1) as u32,
                    sp.distance(dst).unwrap(),
                    "suboptimal path {src}->{dst}: {path:?}"
                ),
                other => panic!("{src}->{dst} not converged: {other:?}"),
            }
        }
    }
    let _ = mesh;
}

#[test]
fn dual_converges_to_shortest_paths() {
    for (degree, seed) in [(MeshDegree::D3, 1), (MeshDegree::D4, 2), (MeshDegree::D8, 3)] {
        let (mut sim, mesh) = dual_mesh(degree, seed);
        sim.run_until(SimTime::from_secs(30));
        assert_steady_state(&sim, &mesh, mesh.graph());
    }
}

#[test]
fn dual_reconverges_after_failure() {
    let (mut sim, mesh) = dual_mesh(MeshDegree::D4, 4);
    sim.run_until(SimTime::from_secs(30));
    let a = mesh.node_at(3, 3);
    let b = mesh.node_at(4, 3);
    let link = sim.link_between(a, b).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(40), link).unwrap();
    sim.run_until(SimTime::from_secs(90));
    let degraded = mesh.graph().without_edge(topology::graph::Edge::new(a, b));
    assert_steady_state(&sim, &mesh, &degraded);
}

/// The headline invariant the paper attributes to [6]: NO transient
/// forwarding loop, ever.
#[test]
fn dual_never_forms_forwarding_loops() {
    for seed in 0..12u64 {
        for degree in [MeshDegree::D3, MeshDegree::D4, MeshDegree::D5] {
            let (mut sim, mesh) = dual_mesh(degree, 100 + seed);
            sim.run_until(SimTime::from_secs(30));
            // Fail a random-ish on-path link and pump packets through the
            // convergence window.
            let src = mesh.node_at(0, (seed % 7) as usize);
            let dst = mesh.node_at(6, ((seed + 3) % 7) as usize);
            let path = match sim.forwarding_path(src, dst) {
                ForwardingPath::Complete(p) => p,
                other => panic!("not converged: {other:?}"),
            };
            let hop = (seed as usize) % (path.len() - 1);
            let link = sim.link_between(path[hop], path[hop + 1]).unwrap();
            sim.schedule_link_failure(SimTime::from_secs(40), link).unwrap();
            for i in 0..600u64 {
                sim.schedule_default_packet(
                    SimTime::from_millis(35_000 + i * 50),
                    src,
                    dst,
                );
            }
            sim.run_until(SimTime::from_secs(120));
            let ttl_drops = sim
                .trace()
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        TraceEvent::PacketDropped {
                            reason: netsim::packet::DropReason::TtlExpired,
                            ..
                        }
                    )
                })
                .count();
            assert_eq!(
                ttl_drops, 0,
                "DUAL looped at degree {degree}, seed {seed}"
            );
        }
    }
}

#[test]
fn dual_freeze_blackholes_during_diffusion_on_sparse_mesh() {
    // The cost side of the trade-off: on the degree-3 mesh the diffusion
    // freeze makes destinations unreachable for a while, so DUAL drops
    // packets where DBF would have forwarded along a stale alternate.
    let mut total_drops = 0u64;
    for seed in 0..5u64 {
        let (mut sim, mesh) = dual_mesh(MeshDegree::D3, 200 + seed);
        sim.run_until(SimTime::from_secs(30));
        let src = mesh.node_at(0, 3);
        let dst = mesh.node_at(6, 3);
        let path = match sim.forwarding_path(src, dst) {
            ForwardingPath::Complete(p) => p,
            other => panic!("not converged: {other:?}"),
        };
        let link = sim.link_between(path[1], path[2]).unwrap();
        sim.schedule_link_failure(SimTime::from_secs(40), link).unwrap();
        for i in 0..400u64 {
            sim.schedule_default_packet(SimTime::from_millis(39_000 + i * 50), src, dst);
        }
        sim.run_until(SimTime::from_secs(120));
        total_drops += sim.stats().packets_dropped;
        // But reachability returns.
        assert!(sim.forwarding_path(src, dst).is_complete());
    }
    assert!(total_drops > 0, "the diffusion freeze should cost packets");
}

#[test]
fn dual_runs_are_deterministic() {
    let digest = |seed: u64| {
        let (mut sim, _) = dual_mesh(MeshDegree::D4, seed);
        sim.run_until(SimTime::from_secs(60));
        (sim.stats().control_messages_sent, sim.trace().len())
    };
    assert_eq!(digest(42), digest(42));
}

#[test]
fn dual_is_quiet_at_steady_state() {
    let (mut sim, _) = dual_mesh(MeshDegree::D5, 6);
    sim.run_until(SimTime::from_secs(60));
    let before = sim.stats().control_messages_sent;
    sim.run_until(SimTime::from_secs(200));
    assert_eq!(before, sim.stats().control_messages_sent);
}
