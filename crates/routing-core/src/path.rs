//! AS paths for path-vector routing.

use std::fmt;

use netsim::ident::NodeId;
use serde::{Deserialize, Serialize};

/// A BGP-style AS path: the sequence of routers an announcement traversed,
/// most recent first (the paper models one router per AS).
///
/// # Examples
///
/// ```
/// use routing_core::path::AsPath;
/// use netsim::ident::NodeId;
///
/// let origin = AsPath::origin(NodeId::new(9));
/// let via7 = origin.prepended(NodeId::new(7));
/// assert_eq!(via7.len(), 2);
/// assert!(via7.contains(NodeId::new(9)));
/// assert_eq!(via7.first(), Some(NodeId::new(7)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AsPath {
    hops: Vec<NodeId>,
}

impl AsPath {
    /// The path a destination announces for itself: just its own id.
    #[must_use]
    pub fn origin(node: NodeId) -> Self {
        AsPath { hops: vec![node] }
    }

    /// A path from an explicit hop sequence.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is empty (an AS path always contains the origin).
    #[must_use]
    pub fn from_hops(hops: Vec<NodeId>) -> Self {
        assert!(!hops.is_empty(), "AS path must contain the origin");
        AsPath { hops }
    }

    /// Returns this path with `node` prepended (what a router does before
    /// re-announcing a route).
    #[must_use]
    pub fn prepended(&self, node: NodeId) -> AsPath {
        let mut hops = Vec::with_capacity(self.hops.len() + 1);
        hops.push(node);
        hops.extend_from_slice(&self.hops);
        AsPath { hops }
    }

    /// Number of ASes on the path (the route-selection metric).
    #[must_use]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// An AS path is never empty; this exists for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if `node` appears anywhere on the path — BGP's loop
    /// detection test.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.hops.contains(&node)
    }

    /// The most recent hop (the announcing neighbor's own id).
    #[must_use]
    pub fn first(&self) -> Option<NodeId> {
        self.hops.first().copied()
    }

    /// The originating AS, or `None` for an empty path (constructors
    /// always produce at least the origin hop).
    #[must_use]
    pub fn origin_as(&self) -> Option<NodeId> {
        self.hops.last().copied()
    }

    /// The hop sequence, most recent first.
    #[must_use]
    pub fn hops(&self) -> &[NodeId] {
        &self.hops
    }

    /// Wire size: 2 bytes per AS number (as in BGP-4 AS_PATH segments).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        2 + 2 * self.hops.len()
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for hop in &self.hops {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{hop}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn prepend_builds_longer_paths() {
        let p = AsPath::origin(n(5)).prepended(n(3)).prepended(n(1));
        assert_eq!(p.hops(), &[n(1), n(3), n(5)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.origin_as(), Some(n(5)));
        assert_eq!(p.first(), Some(n(1)));
    }

    #[test]
    fn loop_detection_sees_every_hop() {
        let p = AsPath::origin(n(5)).prepended(n(3));
        assert!(p.contains(n(5)));
        assert!(p.contains(n(3)));
        assert!(!p.contains(n(4)));
    }

    #[test]
    fn display_is_space_separated() {
        let p = AsPath::origin(n(2)).prepended(n(1));
        assert_eq!(p.to_string(), "n1 n2");
    }

    #[test]
    #[should_panic(expected = "origin")]
    fn empty_paths_are_rejected() {
        let _ = AsPath::from_hops(vec![]);
    }

    #[test]
    fn size_tracks_length() {
        assert_eq!(AsPath::origin(n(0)).size_bytes(), 4);
        assert_eq!(AsPath::origin(n(0)).prepended(n(1)).size_bytes(), 6);
    }
}
