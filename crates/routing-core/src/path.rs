//! AS paths for path-vector routing.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use netsim::ident::NodeId;
use serde::{Deserialize, Serialize};

/// Longest path (after prepending) whose interner lookup key is built in
/// a stack buffer instead of a temporary heap vector. Paper topologies
/// have diameter well under this.
const INLINE_HOPS: usize = 16;

/// A BGP-style AS path: the sequence of routers an announcement traversed,
/// most recent first (the paper models one router per AS).
///
/// The hop sequence is stored behind an `Arc`, so cloning a path — which
/// BGP does for every Adj-RIB-In slot and every re-announcement — bumps a
/// reference count instead of copying hops. Equality, ordering and
/// hashing compare hop *contents*, exactly as the old `Vec`-backed
/// representation did; two equal paths need not share storage, but paths
/// produced by one [`PathInterner`] do.
///
/// # Examples
///
/// ```
/// use routing_core::path::AsPath;
/// use netsim::ident::NodeId;
///
/// let origin = AsPath::origin(NodeId::new(9));
/// let via7 = origin.prepended(NodeId::new(7));
/// assert_eq!(via7.len(), 2);
/// assert!(via7.contains(NodeId::new(9)));
/// assert_eq!(via7.first(), Some(NodeId::new(7)));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsPath {
    hops: Arc<[NodeId]>,
}

// Equality/ordering/hashing compare hop contents (identical to the old
// `Vec`-backed derive), with an `Arc::ptr_eq` fast path: thanks to
// refcount sharing, most comparisons on the hot path are between clones
// of one allocation and never touch the hops at all.
impl PartialEq for AsPath {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.hops, &other.hops) || self.hops == other.hops
    }
}

impl Eq for AsPath {}

impl PartialOrd for AsPath {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for AsPath {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if Arc::ptr_eq(&self.hops, &other.hops) {
            std::cmp::Ordering::Equal
        } else {
            self.hops.cmp(&other.hops)
        }
    }
}

impl std::hash::Hash for AsPath {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.hops.hash(state);
    }
}

impl AsPath {
    /// The path a destination announces for itself: just its own id.
    #[must_use]
    pub fn origin(node: NodeId) -> Self {
        AsPath {
            hops: Arc::from([node].as_slice()),
        }
    }

    /// A path from an explicit hop sequence.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is empty (an AS path always contains the origin).
    #[must_use]
    pub fn from_hops(hops: Vec<NodeId>) -> Self {
        assert!(!hops.is_empty(), "AS path must contain the origin");
        AsPath {
            hops: Arc::from(hops),
        }
    }

    /// Returns this path with `node` prepended (what a router does before
    /// re-announcing a route).
    ///
    /// Allocates a fresh hop sequence; inside BGP the same operation goes
    /// through [`PathInterner::prepended`], which returns the shared
    /// interned copy instead.
    #[must_use]
    pub fn prepended(&self, node: NodeId) -> AsPath {
        let mut hops = Vec::with_capacity(self.hops.len() + 1);
        hops.push(node);
        hops.extend_from_slice(&self.hops);
        AsPath {
            hops: Arc::from(hops),
        }
    }

    /// Number of ASes on the path (the route-selection metric).
    #[must_use]
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// An AS path is never empty; this exists for API completeness.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Returns `true` if `node` appears anywhere on the path — BGP's loop
    /// detection test.
    #[must_use]
    pub fn contains(&self, node: NodeId) -> bool {
        self.hops.contains(&node)
    }

    /// The most recent hop (the announcing neighbor's own id).
    #[must_use]
    pub fn first(&self) -> Option<NodeId> {
        self.hops.first().copied()
    }

    /// The originating AS, or `None` for an empty path (constructors
    /// always produce at least the origin hop).
    #[must_use]
    pub fn origin_as(&self) -> Option<NodeId> {
        self.hops.last().copied()
    }

    /// The hop sequence, most recent first.
    #[must_use]
    pub fn hops(&self) -> &[NodeId] {
        &self.hops
    }

    /// Wire size: 2 bytes per AS number (as in BGP-4 AS_PATH segments).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        2 + 2 * self.hops.len()
    }

    /// Whether `self` and `other` share one hop-sequence allocation (the
    /// interner's postcondition for equal paths). Equality of contents
    /// does not imply shared storage; this is a storage-level probe.
    #[must_use]
    pub fn shares_storage(&self, other: &AsPath) -> bool {
        Arc::ptr_eq(&self.hops, &other.hops)
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for hop in self.hops.iter() {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{hop}")?;
            first = false;
        }
        Ok(())
    }
}

/// A deduplicating store of AS paths with copy-on-extend prepending.
///
/// BGP builds the same few paths over and over: every re-announcement
/// prepends the local id to a best path, and convergence replays the
/// same alternatives repeatedly. The interner keeps one `Arc` per
/// distinct hop sequence; interning an already-known sequence returns
/// the shared allocation (a *hit*, no heap traffic), and prepending
/// builds its candidate key in a stack buffer for paths up to
/// [`INLINE_HOPS`] hops, so a hit never allocates at all.
///
/// Each BGP instance owns its interner — there is no global state, so
/// parallel sweep runs share nothing and determinism is preserved.
///
/// # Examples
///
/// ```
/// use routing_core::path::{AsPath, PathInterner};
/// use netsim::ident::NodeId;
///
/// let mut interner = PathInterner::new();
/// let base = interner.origin(NodeId::new(9));
/// let a = interner.prepended(&base, NodeId::new(7));
/// let b = interner.prepended(&base, NodeId::new(7));
/// assert_eq!(a, b);
/// assert!(a.shares_storage(&b));
/// assert_eq!(interner.hits(), 1);
/// ```
#[derive(Debug, Default)]
pub struct PathInterner {
    // A BTreeSet (not a hash table) keeps the simulation crates free of
    // HashMap iteration-order hazards (simlint D001) — and lookups
    // borrow as `&[NodeId]`, so probing never allocates.
    paths: BTreeSet<Arc<[NodeId]>>,
    hits: u64,
    misses: u64,
}

impl PathInterner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Self {
        PathInterner::default()
    }

    /// The interned path for `hops`, sharing storage with every other
    /// path of the same hop sequence returned by this interner.
    ///
    /// # Panics
    ///
    /// Panics if `hops` is empty (an AS path always contains the origin).
    pub fn intern(&mut self, hops: &[NodeId]) -> AsPath {
        assert!(!hops.is_empty(), "AS path must contain the origin");
        if let Some(shared) = self.paths.get(hops) {
            self.hits += 1;
            return AsPath {
                hops: Arc::clone(shared),
            };
        }
        self.misses += 1;
        let shared: Arc<[NodeId]> = Arc::from(hops);
        self.paths.insert(Arc::clone(&shared));
        AsPath { hops: shared }
    }

    /// The interned origin-only path for `node`.
    pub fn origin(&mut self, node: NodeId) -> AsPath {
        self.intern(&[node])
    }

    /// Copy-on-extend prepend: the interned path `[node, path...]`.
    ///
    /// `path` itself is never mutated (paths are immutable values); the
    /// extended sequence is looked up — via a stack buffer for short
    /// paths — and only allocated the first time it is seen.
    pub fn prepended(&mut self, path: &AsPath, node: NodeId) -> AsPath {
        let n = path.len() + 1;
        if n <= INLINE_HOPS {
            let mut buf = [NodeId::new(0); INLINE_HOPS];
            buf[0] = node;
            buf[1..n].copy_from_slice(path.hops());
            self.intern(&buf[..n])
        } else {
            let mut hops = Vec::with_capacity(n);
            hops.push(node);
            hops.extend_from_slice(path.hops());
            self.intern(&hops)
        }
    }

    /// Number of distinct hop sequences stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether no path has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Lookups that found an existing allocation.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to allocate a new sequence.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn prepend_builds_longer_paths() {
        let p = AsPath::origin(n(5)).prepended(n(3)).prepended(n(1));
        assert_eq!(p.hops(), &[n(1), n(3), n(5)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.origin_as(), Some(n(5)));
        assert_eq!(p.first(), Some(n(1)));
    }

    #[test]
    fn loop_detection_sees_every_hop() {
        let p = AsPath::origin(n(5)).prepended(n(3));
        assert!(p.contains(n(5)));
        assert!(p.contains(n(3)));
        assert!(!p.contains(n(4)));
    }

    #[test]
    fn display_is_space_separated() {
        let p = AsPath::origin(n(2)).prepended(n(1));
        assert_eq!(p.to_string(), "n1 n2");
    }

    #[test]
    #[should_panic(expected = "origin")]
    fn empty_paths_are_rejected() {
        let _ = AsPath::from_hops(vec![]);
    }

    #[test]
    fn size_tracks_length() {
        assert_eq!(AsPath::origin(n(0)).size_bytes(), 4);
        assert_eq!(AsPath::origin(n(0)).prepended(n(1)).size_bytes(), 6);
    }

    #[test]
    fn clones_share_storage_but_equals_need_not() {
        let a = AsPath::origin(n(1)).prepended(n(2));
        let b = a.clone();
        assert!(a.shares_storage(&b));
        let c = AsPath::from_hops(vec![n(2), n(1)]);
        assert_eq!(a, c);
        assert!(!a.shares_storage(&c));
    }

    #[test]
    fn interner_prepend_matches_plain_prepend() {
        let mut i = PathInterner::new();
        let base = i.origin(n(9));
        let via = i.prepended(&base, n(4));
        assert_eq!(via, AsPath::origin(n(9)).prepended(n(4)));
        assert_eq!(via.hops(), &[n(4), n(9)]);
    }

    #[test]
    fn interner_equal_paths_share_storage() {
        let mut i = PathInterner::new();
        let a = i.intern(&[n(1), n(2), n(3)]);
        let b = i.intern(&[n(1), n(2), n(3)]);
        assert_eq!(a, b);
        assert!(a.shares_storage(&b));
        assert_eq!(i.len(), 1);
        assert_eq!((i.hits(), i.misses()), (1, 1));
    }

    #[test]
    fn interner_distinct_paths_do_not_share() {
        let mut i = PathInterner::new();
        let a = i.intern(&[n(1)]);
        let b = i.intern(&[n(2)]);
        assert_ne!(a, b);
        assert!(!a.shares_storage(&b));
        assert_eq!(i.len(), 2);
        assert_eq!(i.hits(), 0);
    }

    #[test]
    fn interner_loop_detection_still_sees_self() {
        // The BGP receive filter drops paths containing the local id; the
        // interned representation must preserve that test.
        let mut i = PathInterner::new();
        let base = i.origin(n(3));
        let me = i.prepended(&base, n(7));
        assert!(me.contains(n(7)));
        assert!(me.contains(n(3)));
        assert!(!me.contains(n(5)));
    }

    #[test]
    fn interner_handles_paths_beyond_the_inline_buffer() {
        let mut i = PathInterner::new();
        let mut path = i.origin(n(0));
        for hop in 1..=(INLINE_HOPS as u32 + 4) {
            path = i.prepended(&path, n(hop));
        }
        assert_eq!(path.len(), INLINE_HOPS + 5);
        assert_eq!(path.first(), Some(n(INLINE_HOPS as u32 + 4)));
        assert_eq!(path.origin_as(), Some(n(0)));
        // Re-deriving the same long path is a pure hit.
        let misses_before = i.misses();
        let shorter = i.intern(&path.hops()[1..]);
        let again = i.prepended(&shorter, path.first().expect("nonempty"));
        assert!(again.shares_storage(&path));
        assert_eq!(i.misses(), misses_before);
    }

    #[test]
    fn display_and_debug_match_vec_backed_representation() {
        let p = AsPath::from_hops(vec![n(1), n(3), n(5)]);
        assert_eq!(p.to_string(), "n1 n3 n5");
        assert_eq!(
            format!("{p:?}"),
            "AsPath { hops: [NodeId(1), NodeId(3), NodeId(5)] }"
        );
    }
}
