//! Distance-vector metrics with RIP's finite infinity.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A hop-count metric saturating at RIP's infinity of 16.
///
/// All three studied protocols use unit link costs, so a metric is a hop
/// count; 16 means "unreachable" and survives arithmetic (counting past
/// infinity is impossible by construction).
///
/// # Examples
///
/// ```
/// use routing_core::metric::Metric;
///
/// let m = Metric::new(14) + 1;
/// assert_eq!(m, Metric::new(15));
/// assert!(!(m + 1).is_finite());
/// assert_eq!(m + 99, Metric::INFINITY);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct Metric(u8);

impl Metric {
    /// The unreachable metric (RFC 2453 §3.4.2).
    pub const INFINITY: Metric = Metric(16);

    /// The zero metric (a router's distance to itself).
    pub const ZERO: Metric = Metric(0);

    /// Creates a metric, clamping at infinity.
    #[must_use]
    pub fn new(value: u32) -> Self {
        Metric(value.min(16) as u8)
    }

    /// The raw hop count (16 = infinity).
    #[must_use]
    pub fn value(self) -> u8 {
        self.0
    }

    /// Returns `true` unless this metric means unreachable.
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0 < 16
    }
}

impl std::ops::Add<u32> for Metric {
    type Output = Metric;

    fn add(self, cost: u32) -> Metric {
        Metric::new(u32::from(self.0) + cost)
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "{}", self.0)
        } else {
            f.write_str("inf")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_saturates_at_infinity() {
        assert_eq!(Metric::new(15) + 1, Metric::INFINITY);
        assert_eq!(Metric::INFINITY + 1, Metric::INFINITY);
        assert_eq!(Metric::new(100), Metric::INFINITY);
    }

    #[test]
    fn ordering_puts_infinity_last() {
        assert!(Metric::ZERO < Metric::new(1));
        assert!(Metric::new(15) < Metric::INFINITY);
    }

    #[test]
    fn display_formats_infinity() {
        assert_eq!(Metric::new(3).to_string(), "3");
        assert_eq!(Metric::INFINITY.to_string(), "inf");
    }

    #[test]
    fn finiteness() {
        assert!(Metric::ZERO.is_finite());
        assert!(Metric::new(15).is_finite());
        assert!(!Metric::INFINITY.is_finite());
    }
}
