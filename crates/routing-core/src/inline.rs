//! A fixed-capacity small vector with heap spill-over.
//!
//! Protocol messages are overwhelmingly short — a distance-vector update
//! carries at most 25 entries (RFC 2453 §3.6) and a BGP update usually
//! announces a handful of destinations — yet storing them in a `Vec`
//! costs a heap allocation per message on the simulator's hottest path.
//! [`InlineVec<T, N>`] keeps the first `N` elements inline in the value
//! itself and only touches the heap past that, so the common short
//! message never allocates for its element storage at all.
//!
//! The implementation is `unsafe`-free (slots are `Option<T>`), which
//! costs a discriminant per inline element — an explicit trade against
//! the repo-wide `forbid(unsafe_code)` policy enforced by simlint S001.

use std::fmt;

/// A vector that stores up to `N` elements inline and spills the rest to
/// the heap.
///
/// # Examples
///
/// ```
/// use routing_core::inline::InlineVec;
///
/// let v: InlineVec<u32, 4> = (0..3).collect();
/// assert_eq!(v.len(), 3);
/// assert!(!v.spilled());
/// assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
///
/// let big: InlineVec<u32, 4> = (0..6).collect();
/// assert!(big.spilled());
/// assert_eq!(big.iter().copied().sum::<u32>(), 15);
/// ```
#[derive(Clone)]
pub struct InlineVec<T, const N: usize> {
    head: [Option<T>; N],
    spill: Vec<T>,
    len: usize,
}

impl<T, const N: usize> InlineVec<T, N> {
    /// An empty vector (no heap allocation).
    #[must_use]
    pub fn new() -> Self {
        InlineVec {
            head: std::array::from_fn(|_| None),
            spill: Vec::new(),
            len: 0,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether elements have overflowed into heap storage.
    #[must_use]
    pub fn spilled(&self) -> bool {
        self.len > N
    }

    /// Appends an element.
    pub fn push(&mut self, value: T) {
        if self.len < N {
            self.head[self.len] = Some(value);
        } else {
            self.spill.push(value);
        }
        self.len += 1;
    }

    /// The element at `index`, if in bounds.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<&T> {
        if index >= self.len {
            None
        } else if index < N {
            self.head[index].as_ref()
        } else {
            self.spill.get(index - N)
        }
    }

    /// Removes every element, keeping any spill allocation.
    pub fn clear(&mut self) {
        for slot in &mut self.head {
            *slot = None;
        }
        self.spill.clear();
        self.len = 0;
    }

    /// Iterates the elements in insertion order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            // The occupied prefix only: every slot in it is `Some`, so the
            // iterator never has to distinguish a vacant slot from the end.
            head: self.head[..self.len.min(N)].iter(),
            spill: self.spill.iter(),
        }
    }

    /// Whether any element equals `value`.
    #[must_use]
    pub fn contains(&self, value: &T) -> bool
    where
        T: PartialEq,
    {
        self.iter().any(|v| v == value)
    }
}

/// Borrowing iterator over an [`InlineVec`] (see [`InlineVec::iter`]).
///
/// A concrete type rather than `impl Iterator` so `&InlineVec` can
/// implement [`IntoIterator`] without boxing — `for x in &v` over a
/// received message is the simulator's hottest loop.
#[derive(Debug)]
pub struct Iter<'a, T> {
    head: std::slice::Iter<'a, Option<T>>,
    spill: std::slice::Iter<'a, T>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        match self.head.next() {
            Some(slot) => slot.as_ref(),
            None => self.spill.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.head.len() + self.spill.len();
        (n, Some(n))
    }
}

impl<T> ExactSizeIterator for Iter<'_, T> {}

impl<T, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: PartialEq, const N: usize> PartialEq<[T]> for InlineVec<T, N> {
    fn eq(&self, other: &[T]) -> bool {
        self.len == other.len() && self.iter().eq(other.iter())
    }
}

impl<T: PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self == other.as_slice()
    }
}

impl<T, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(items: Vec<T>) -> Self {
        items.into_iter().collect()
    }
}

impl<T, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = std::iter::Chain<
        std::iter::Flatten<std::array::IntoIter<Option<T>, N>>,
        std::vec::IntoIter<T>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        self.head.into_iter().flatten().chain(self.spill)
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 3> = InlineVec::new();
        for i in 0..3 {
            v.push(i);
        }
        assert!(!v.spilled());
        assert_eq!(v.len(), 3);
        v.push(3);
        assert!(v.spilled());
        assert_eq!(v.len(), 4);
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn get_spans_inline_and_spill() {
        let v: InlineVec<u32, 2> = (10..15).collect();
        assert_eq!(v.get(0), Some(&10));
        assert_eq!(v.get(1), Some(&11));
        assert_eq!(v.get(2), Some(&12));
        assert_eq!(v.get(4), Some(&14));
        assert_eq!(v.get(5), None);
    }

    #[test]
    fn equality_is_order_sensitive_and_capacity_blind() {
        let a: InlineVec<u32, 4> = vec![1, 2, 3].into();
        let b: InlineVec<u32, 4> = vec![1, 2, 3].into();
        let c: InlineVec<u32, 4> = vec![3, 2, 1].into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, vec![1, 2, 3]);
        assert_ne!(a, vec![1, 2]);
    }

    #[test]
    fn owned_iteration_preserves_order_across_spill() {
        let v: InlineVec<String, 2> = (0..5).map(|i| i.to_string()).collect();
        let out: Vec<String> = v.into_iter().collect();
        assert_eq!(out, vec!["0", "1", "2", "3", "4"]);
    }

    #[test]
    fn clear_resets_and_reuses() {
        let mut v: InlineVec<u32, 2> = (0..4).collect();
        v.clear();
        assert!(v.is_empty());
        assert_eq!(v.iter().count(), 0);
        v.push(9);
        assert_eq!(v.get(0), Some(&9));
        assert!(!v.spilled());
    }

    #[test]
    fn contains_checks_both_regions() {
        let v: InlineVec<u32, 2> = (0..4).collect();
        assert!(v.contains(&0));
        assert!(v.contains(&3));
        assert!(!v.contains(&4));
    }
}
