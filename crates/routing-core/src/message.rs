//! The distance-vector wire format shared by RIP and DBF.

use netsim::ident::NodeId;
use netsim::protocol::Payload;
use serde::{Deserialize, Serialize};

use crate::inline::InlineVec;
use crate::metric::Metric;

/// Maximum route entries per message (RFC 2453 §3.6: 25 RTEs).
///
/// The paper leans on this constant: a 49-destination network fits in two
/// RIP messages, so a link failure's full impact propagates almost at once,
/// whereas BGP must split updates by path (§5.2).
pub const MAX_ENTRIES_PER_MESSAGE: usize = 25;

/// One route entry: a destination and the advertised distance to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvEntry {
    /// The advertised destination.
    pub dest: NodeId,
    /// The announcing router's distance (possibly poisoned to infinity).
    pub metric: Metric,
}

/// A distance-vector update message.
///
/// Entries live inline in the message value ([`InlineVec`] sized to the
/// RFC limit), so building, cloning and queuing a message never allocates
/// for entry storage — the ≤25-entry case is the *only* case.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvMessage {
    /// Up to [`MAX_ENTRIES_PER_MESSAGE`] route entries.
    pub entries: InlineVec<DvEntry, MAX_ENTRIES_PER_MESSAGE>,
}

impl DvMessage {
    /// Creates a message from any entry source.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_ENTRIES_PER_MESSAGE`] entries are supplied;
    /// use [`pack_entries`] to split larger batches.
    #[must_use]
    pub fn new(entries: impl IntoIterator<Item = DvEntry>) -> Self {
        let entries: InlineVec<DvEntry, MAX_ENTRIES_PER_MESSAGE> =
            entries.into_iter().collect();
        assert!(
            entries.len() <= MAX_ENTRIES_PER_MESSAGE,
            "message overflow: {} entries",
            entries.len()
        );
        DvMessage { entries }
    }
}

impl Payload for DvMessage {
    /// RIPv2 sizing: 4-byte header + 20 bytes per route entry.
    fn size_bytes(&self) -> usize {
        4 + 20 * self.entries.len()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Splits an arbitrary entry list into maximal messages.
///
/// # Examples
///
/// ```
/// use routing_core::message::{pack_entries, DvEntry, MAX_ENTRIES_PER_MESSAGE};
/// use routing_core::metric::Metric;
/// use netsim::ident::NodeId;
///
/// let entries: Vec<DvEntry> = (0..60)
///     .map(|i| DvEntry { dest: NodeId::new(i), metric: Metric::new(1) })
///     .collect();
/// let messages = pack_entries(entries);
/// assert_eq!(messages.len(), 3);
/// assert_eq!(messages[0].entries.len(), MAX_ENTRIES_PER_MESSAGE);
/// assert_eq!(messages[2].entries.len(), 10);
/// ```
#[must_use]
pub fn pack_entries(entries: impl IntoIterator<Item = DvEntry>) -> Vec<DvMessage> {
    let mut messages = Vec::new();
    let mut batch: InlineVec<DvEntry, MAX_ENTRIES_PER_MESSAGE> = InlineVec::new();
    for entry in entries {
        batch.push(entry);
        if batch.len() == MAX_ENTRIES_PER_MESSAGE {
            messages.push(DvMessage {
                entries: std::mem::take(&mut batch),
            });
        }
    }
    if !batch.is_empty() {
        messages.push(DvMessage { entries: batch });
    }
    messages
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u32) -> DvEntry {
        DvEntry {
            dest: NodeId::new(i),
            metric: Metric::new(i),
        }
    }

    #[test]
    fn sizes_match_ripv2() {
        assert_eq!(DvMessage::new(vec![]).size_bytes(), 4);
        assert_eq!(DvMessage::new(vec![entry(0)]).size_bytes(), 24);
        let full = DvMessage::new((0..25).map(entry));
        assert_eq!(full.size_bytes(), 504);
    }

    #[test]
    fn packing_preserves_order_and_contents() {
        let packed = pack_entries((0..30).map(entry));
        assert_eq!(packed.len(), 2);
        let flat: Vec<DvEntry> = packed.into_iter().flat_map(|m| m.entries).collect();
        assert_eq!(flat, (0..30).map(entry).collect::<Vec<_>>());
    }

    #[test]
    fn packing_empty_produces_no_messages() {
        assert!(pack_entries(vec![]).is_empty());
    }

    #[test]
    fn exact_multiple_has_no_trailing_empty_message() {
        let packed = pack_entries((0..50).map(entry));
        assert_eq!(packed.len(), 2);
        assert!(packed.iter().all(|m| m.entries.len() == 25));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn oversized_message_is_rejected() {
        let _ = DvMessage::new((0..26).map(entry));
    }
}
