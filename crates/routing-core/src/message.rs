//! The distance-vector wire format shared by RIP and DBF.

use netsim::ident::NodeId;
use netsim::protocol::Payload;
use serde::{Deserialize, Serialize};

use crate::metric::Metric;

/// Maximum route entries per message (RFC 2453 §3.6: 25 RTEs).
///
/// The paper leans on this constant: a 49-destination network fits in two
/// RIP messages, so a link failure's full impact propagates almost at once,
/// whereas BGP must split updates by path (§5.2).
pub const MAX_ENTRIES_PER_MESSAGE: usize = 25;

/// One route entry: a destination and the advertised distance to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvEntry {
    /// The advertised destination.
    pub dest: NodeId,
    /// The announcing router's distance (possibly poisoned to infinity).
    pub metric: Metric,
}

/// A distance-vector update message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DvMessage {
    /// Up to [`MAX_ENTRIES_PER_MESSAGE`] route entries.
    pub entries: Vec<DvEntry>,
}

impl DvMessage {
    /// Creates a message.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_ENTRIES_PER_MESSAGE`] entries are supplied;
    /// use [`pack_entries`] to split larger vectors.
    #[must_use]
    pub fn new(entries: Vec<DvEntry>) -> Self {
        assert!(
            entries.len() <= MAX_ENTRIES_PER_MESSAGE,
            "message overflow: {} entries",
            entries.len()
        );
        DvMessage { entries }
    }
}

impl Payload for DvMessage {
    /// RIPv2 sizing: 4-byte header + 20 bytes per route entry.
    fn size_bytes(&self) -> usize {
        4 + 20 * self.entries.len()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Splits an arbitrary entry list into maximal messages.
///
/// # Examples
///
/// ```
/// use routing_core::message::{pack_entries, DvEntry, MAX_ENTRIES_PER_MESSAGE};
/// use routing_core::metric::Metric;
/// use netsim::ident::NodeId;
///
/// let entries: Vec<DvEntry> = (0..60)
///     .map(|i| DvEntry { dest: NodeId::new(i), metric: Metric::new(1) })
///     .collect();
/// let messages = pack_entries(entries);
/// assert_eq!(messages.len(), 3);
/// assert_eq!(messages[0].entries.len(), MAX_ENTRIES_PER_MESSAGE);
/// assert_eq!(messages[2].entries.len(), 10);
/// ```
#[must_use]
pub fn pack_entries(entries: Vec<DvEntry>) -> Vec<DvMessage> {
    if entries.is_empty() {
        return Vec::new();
    }
    let mut messages = Vec::with_capacity(entries.len().div_ceil(MAX_ENTRIES_PER_MESSAGE));
    let mut batch = Vec::with_capacity(MAX_ENTRIES_PER_MESSAGE.min(entries.len()));
    for entry in entries {
        batch.push(entry);
        if batch.len() == MAX_ENTRIES_PER_MESSAGE {
            messages.push(DvMessage::new(std::mem::take(&mut batch)));
        }
    }
    if !batch.is_empty() {
        messages.push(DvMessage::new(batch));
    }
    messages
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u32) -> DvEntry {
        DvEntry {
            dest: NodeId::new(i),
            metric: Metric::new(i),
        }
    }

    #[test]
    fn sizes_match_ripv2() {
        assert_eq!(DvMessage::new(vec![]).size_bytes(), 4);
        assert_eq!(DvMessage::new(vec![entry(0)]).size_bytes(), 24);
        let full = DvMessage::new((0..25).map(entry).collect());
        assert_eq!(full.size_bytes(), 504);
    }

    #[test]
    fn packing_preserves_order_and_contents() {
        let packed = pack_entries((0..30).map(entry).collect());
        assert_eq!(packed.len(), 2);
        let flat: Vec<DvEntry> = packed.into_iter().flat_map(|m| m.entries).collect();
        assert_eq!(flat, (0..30).map(entry).collect::<Vec<_>>());
    }

    #[test]
    fn packing_empty_produces_no_messages() {
        assert!(pack_entries(vec![]).is_empty());
    }

    #[test]
    fn exact_multiple_has_no_trailing_empty_message() {
        let packed = pack_entries((0..50).map(entry).collect());
        assert_eq!(packed.len(), 2);
        assert!(packed.iter().all(|m| m.entries.len() == 25));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn oversized_message_is_rejected() {
        let _ = DvMessage::new((0..26).map(entry).collect());
    }
}
