//! # routing-core — shared routing-protocol building blocks
//!
//! The three protocols of the study (RIP, DBF, BGP) are deliberate
//! variations within one algorithm family, so their common vocabulary lives
//! here: saturating hop-count metrics ([`metric`]), AS paths ([`path`]), the
//! triggered-update/MRAI hold-down state machine ([`damping`]) and the
//! 25-entry distance-vector wire format ([`message`]).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod damping;
pub mod inline;
pub mod message;
pub mod metric;
pub mod path;

pub use damping::{DampAction, Damper};
pub use inline::InlineVec;
pub use message::{pack_entries, DvEntry, DvMessage, MAX_ENTRIES_PER_MESSAGE};
pub use metric::Metric;
pub use path::{AsPath, PathInterner};

/// Selects the best (metric, neighbor) pair with deterministic tie-breaking
/// toward the lowest neighbor id — the selection rule all protocols in the
/// study share.
///
/// Returns `None` if the iterator is empty or every metric is infinite.
///
/// # Examples
///
/// ```
/// use routing_core::{select_best, Metric};
/// use netsim::ident::NodeId;
///
/// let candidates = [
///     (NodeId::new(3), Metric::new(2)),
///     (NodeId::new(1), Metric::new(2)),
///     (NodeId::new(2), Metric::INFINITY),
/// ];
/// assert_eq!(select_best(candidates), Some((NodeId::new(1), Metric::new(2))));
/// ```
pub fn select_best<I>(candidates: I) -> Option<(netsim::ident::NodeId, Metric)>
where
    I: IntoIterator<Item = (netsim::ident::NodeId, Metric)>,
{
    candidates
        .into_iter()
        .filter(|(_, m)| m.is_finite())
        .min_by_key(|&(n, m)| (m, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::ident::NodeId;

    #[test]
    fn select_best_prefers_lower_metric() {
        let best = select_best([
            (NodeId::new(0), Metric::new(5)),
            (NodeId::new(1), Metric::new(3)),
        ]);
        assert_eq!(best, Some((NodeId::new(1), Metric::new(3))));
    }

    #[test]
    fn select_best_ignores_infinity() {
        assert_eq!(select_best([(NodeId::new(0), Metric::INFINITY)]), None);
        assert_eq!(select_best(std::iter::empty()), None);
    }

    #[test]
    fn select_best_ties_break_to_lowest_id() {
        let best = select_best([
            (NodeId::new(9), Metric::new(1)),
            (NodeId::new(4), Metric::new(1)),
            (NodeId::new(7), Metric::new(1)),
        ]);
        assert_eq!(best, Some((NodeId::new(4), Metric::new(1))));
    }
}
