//! Triggered-update damping (RFC 2453 §3.10.1) and MRAI (RFC 1771 §9.2.1.1)
//! share one state machine: after an update is sent, a hold-down window
//! opens; changes arriving inside the window are batched and flushed when it
//! closes.
//!
//! The paper identifies this timer as the dominant cause of transient-loop
//! longevity (§5.2), so its semantics are centralized here and reused by
//! RIP, DBF and BGP.

use netsim::time::SimDuration;

/// What the caller should do after reporting a route change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DampAction {
    /// Send the update immediately and arm the hold-down window for the
    /// returned duration.
    SendNow(SimDuration),
    /// A window is open; the change was queued for the window's expiry.
    Deferred,
}

/// Hold-down window state for one peer (or one (peer, destination) pair in
/// BGP's per-destination MRAI mode).
///
/// # Examples
///
/// ```
/// use routing_core::damping::{Damper, DampAction};
/// use netsim::time::SimDuration;
/// use netsim::rng::SimRng;
///
/// let mut damper = Damper::new(SimDuration::from_secs(1), SimDuration::from_secs(5));
/// let mut rng = SimRng::seed_from(1);
/// // First change goes out immediately...
/// assert!(matches!(damper.on_change(&mut rng), DampAction::SendNow(_)));
/// // ...the next is deferred until the window expires.
/// assert_eq!(damper.on_change(&mut rng), DampAction::Deferred);
/// assert!(damper.on_window_expired()); // pending work to flush
/// ```
#[derive(Debug, Clone)]
pub struct Damper {
    min_interval: SimDuration,
    max_interval: SimDuration,
    window_open: bool,
    pending: bool,
}

impl Damper {
    /// Creates a damper whose window length is drawn uniformly from
    /// `[min_interval, max_interval]` each time it opens.
    ///
    /// # Panics
    ///
    /// Panics if `min_interval > max_interval`.
    #[must_use]
    pub fn new(min_interval: SimDuration, max_interval: SimDuration) -> Self {
        assert!(
            min_interval <= max_interval,
            "min {min_interval} exceeds max {max_interval}"
        );
        Damper {
            min_interval,
            max_interval,
            window_open: false,
            pending: false,
        }
    }

    /// Reports that a route changed.
    ///
    /// Returns [`DampAction::SendNow`] (caller sends and must arm a timer
    /// for the returned window length, calling [`Damper::on_window_expired`]
    /// when it fires) or [`DampAction::Deferred`].
    pub fn on_change(&mut self, rng: &mut netsim::rng::SimRng) -> DampAction {
        if self.window_open {
            self.pending = true;
            DampAction::Deferred
        } else {
            self.window_open = true;
            DampAction::SendNow(rng.gen_duration(self.min_interval, self.max_interval))
        }
    }

    /// Reports that the hold-down window expired.
    ///
    /// Returns `true` if deferred changes are pending: the caller must send
    /// them now and arm a fresh window by calling [`Damper::reopen`].
    /// Returns `false` if the window closed with nothing pending.
    pub fn on_window_expired(&mut self) -> bool {
        self.window_open = false;
        std::mem::take(&mut self.pending)
    }

    /// Re-opens the window after flushing deferred changes, returning its
    /// length.
    ///
    /// # Panics
    ///
    /// Panics if the window is already open.
    pub fn reopen(&mut self, rng: &mut netsim::rng::SimRng) -> SimDuration {
        assert!(!self.window_open, "window already open");
        self.window_open = true;
        rng.gen_duration(self.min_interval, self.max_interval)
    }

    /// Whether a hold-down window is currently open.
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.window_open
    }

    /// Whether changes are queued behind the window.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.pending
    }
}

/// How a triggered-update damping timer treats the *first* update after a
/// quiet period.
///
/// RFC 2453 §3.10.1 sends the first triggered update immediately and only
/// spaces out subsequent ones ([`DampingMode::FirstImmediate`]); the
/// paper's §5.2 relies on that behavior ("the failure information can
/// propagate along the path in a few milliseconds"), so it is the study's
/// default. [`DampingMode::DelayedFlush`] — delaying *every* triggered
/// update by a fresh draw — is provided as an ablation; it slows the
/// poison wave enough to give even RIP transient loops, contradicting the
/// paper's Observation 2, which is itself evidence for the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DampingMode {
    /// First update sends immediately; later changes batch behind a
    /// hold-down window.
    FirstImmediate,
    /// Every update waits a fresh random delay; changes arriving during
    /// the wait join the batch.
    DelayedFlush,
}

/// What to do after reporting a route change to a [`TriggeredScheduler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerAction {
    /// Send the batched update now and arm a timer for the returned
    /// hold-down window.
    SendNowThenHold(SimDuration),
    /// Arm a timer; the batch is flushed when it fires.
    HoldFor(SimDuration),
    /// A timer is already armed; the change simply joins the batch.
    AlreadyPending,
}

/// Unified triggered-update scheduling for RIP and DBF under either
/// [`DampingMode`].
///
/// The caller keeps the actual change set (route change flags); the
/// scheduler only decides *when* to flush it.
///
/// # Examples
///
/// ```
/// use routing_core::damping::{DampingMode, TriggeredScheduler, TriggerAction};
/// use netsim::time::SimDuration;
/// use netsim::rng::SimRng;
///
/// let mut s = TriggeredScheduler::new(
///     DampingMode::DelayedFlush,
///     SimDuration::from_secs(1),
///     SimDuration::from_secs(5),
/// );
/// let mut rng = SimRng::seed_from(0);
/// assert!(matches!(s.on_change(&mut rng), TriggerAction::HoldFor(_)));
/// assert_eq!(s.on_change(&mut rng), TriggerAction::AlreadyPending);
/// assert!(s.on_timer_expired(&mut rng, true).0); // flush now
/// ```
#[derive(Debug, Clone)]
pub struct TriggeredScheduler {
    mode: DampingMode,
    min_interval: SimDuration,
    max_interval: SimDuration,
    armed: bool,
}

impl TriggeredScheduler {
    /// Creates a scheduler drawing windows uniformly from
    /// `[min_interval, max_interval]`.
    ///
    /// # Panics
    ///
    /// Panics if `min_interval > max_interval`.
    #[must_use]
    pub fn new(mode: DampingMode, min_interval: SimDuration, max_interval: SimDuration) -> Self {
        assert!(
            min_interval <= max_interval,
            "min {min_interval} exceeds max {max_interval}"
        );
        TriggeredScheduler {
            mode,
            min_interval,
            max_interval,
            armed: false,
        }
    }

    /// Reports that at least one route changed.
    pub fn on_change(&mut self, rng: &mut netsim::rng::SimRng) -> TriggerAction {
        if self.armed {
            return TriggerAction::AlreadyPending;
        }
        self.armed = true;
        let window = rng.gen_duration(self.min_interval, self.max_interval);
        match self.mode {
            DampingMode::FirstImmediate => TriggerAction::SendNowThenHold(window),
            DampingMode::DelayedFlush => TriggerAction::HoldFor(window),
        }
    }

    /// Reports that the armed timer fired. `has_changes` is whether the
    /// caller's change set is non-empty.
    ///
    /// Returns `(flush_now, rearm)`: if `flush_now`, send the batch; if
    /// `rearm` is `Some`, arm a fresh timer for that window.
    pub fn on_timer_expired(
        &mut self,
        rng: &mut netsim::rng::SimRng,
        has_changes: bool,
    ) -> (bool, Option<SimDuration>) {
        self.armed = false;
        if !has_changes {
            return (false, None);
        }
        match self.mode {
            DampingMode::FirstImmediate => {
                // Flush the deferred batch and hold down again.
                self.armed = true;
                let window = rng.gen_duration(self.min_interval, self.max_interval);
                (true, Some(window))
            }
            DampingMode::DelayedFlush => (true, None),
        }
    }

    /// Whether a timer is currently armed.
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.armed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::rng::SimRng;

    fn damper() -> Damper {
        Damper::new(SimDuration::from_secs(1), SimDuration::from_secs(5))
    }

    #[test]
    fn first_change_sends_immediately() {
        let mut d = damper();
        let mut rng = SimRng::seed_from(0);
        match d.on_change(&mut rng) {
            DampAction::SendNow(w) => {
                assert!(w >= SimDuration::from_secs(1) && w <= SimDuration::from_secs(5));
            }
            DampAction::Deferred => panic!("first change must send"),
        }
        assert!(d.is_open());
    }

    #[test]
    fn changes_in_window_are_batched() {
        let mut d = damper();
        let mut rng = SimRng::seed_from(0);
        let _ = d.on_change(&mut rng);
        assert_eq!(d.on_change(&mut rng), DampAction::Deferred);
        assert_eq!(d.on_change(&mut rng), DampAction::Deferred);
        assert!(d.has_pending());
        assert!(d.on_window_expired());
        assert!(!d.has_pending());
    }

    #[test]
    fn quiet_window_expires_cleanly() {
        let mut d = damper();
        let mut rng = SimRng::seed_from(0);
        let _ = d.on_change(&mut rng);
        assert!(!d.on_window_expired());
        // Next change sends immediately again.
        assert!(matches!(d.on_change(&mut rng), DampAction::SendNow(_)));
    }

    #[test]
    fn reopen_after_flush() {
        let mut d = damper();
        let mut rng = SimRng::seed_from(0);
        let _ = d.on_change(&mut rng);
        let _ = d.on_change(&mut rng);
        assert!(d.on_window_expired());
        let w = d.reopen(&mut rng);
        assert!(w >= SimDuration::from_secs(1) && w <= SimDuration::from_secs(5));
        assert!(d.is_open());
    }

    #[test]
    fn delayed_flush_never_sends_immediately() {
        let mut s = TriggeredScheduler::new(
            DampingMode::DelayedFlush,
            SimDuration::from_secs(1),
            SimDuration::from_secs(5),
        );
        let mut rng = SimRng::seed_from(1);
        match s.on_change(&mut rng) {
            TriggerAction::HoldFor(w) => {
                assert!(w >= SimDuration::from_secs(1) && w <= SimDuration::from_secs(5));
            }
            other => panic!("expected HoldFor, got {other:?}"),
        }
        assert!(s.is_armed());
        // Flush at expiry, then idle (no rearm).
        let (flush, rearm) = s.on_timer_expired(&mut rng, true);
        assert!(flush);
        assert_eq!(rearm, None);
        assert!(!s.is_armed());
    }

    #[test]
    fn first_immediate_sends_then_holds() {
        let mut s = TriggeredScheduler::new(
            DampingMode::FirstImmediate,
            SimDuration::from_secs(1),
            SimDuration::from_secs(5),
        );
        let mut rng = SimRng::seed_from(2);
        assert!(matches!(s.on_change(&mut rng), TriggerAction::SendNowThenHold(_)));
        assert_eq!(s.on_change(&mut rng), TriggerAction::AlreadyPending);
        // Deferred changes flush at expiry and the hold-down reopens.
        let (flush, rearm) = s.on_timer_expired(&mut rng, true);
        assert!(flush);
        assert!(rearm.is_some());
        assert!(s.is_armed());
        // A quiet expiry closes the window.
        let (flush, rearm) = s.on_timer_expired(&mut rng, false);
        assert!(!flush);
        assert_eq!(rearm, None);
    }

    #[test]
    fn fixed_interval_window_is_exact() {
        let mut d = Damper::new(SimDuration::from_secs(3), SimDuration::from_secs(3));
        let mut rng = SimRng::seed_from(7);
        match d.on_change(&mut rng) {
            DampAction::SendNow(w) => assert_eq!(w, SimDuration::from_secs(3)),
            DampAction::Deferred => panic!(),
        }
    }
}
