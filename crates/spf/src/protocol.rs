//! The SPF (link-state) protocol engine.

use std::sync::Arc;

use netsim::ident::NodeId;
use netsim::protocol::{Payload, RoutingProtocol, SharedPayload, TimerToken};
use netsim::simulator::ProtocolContext;
use netsim::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::lsdb::{LinkStateDb, Lsa};

mod timer {
    pub const SPF_CALC: u64 = 1;
    pub const REFRESH: u64 = 2;
}

/// Tunable SPF parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpfConfig {
    /// Hold-down between an LSDB change and the (batched) SPF run,
    /// modeling router SPF throttling.
    pub spf_delay: SimDuration,
    /// Periodic LSA refresh interval (OSPF default is 30 minutes; far
    /// beyond the study's run lengths, present for completeness).
    pub refresh_interval: SimDuration,
}

impl Default for SpfConfig {
    fn default() -> Self {
        SpfConfig {
            spf_delay: SimDuration::from_millis(50),
            refresh_interval: SimDuration::from_secs(1800),
        }
    }
}

/// A flooded link-state advertisement.
#[derive(Debug, Clone)]
pub struct LsaMessage(pub Lsa);

impl Payload for LsaMessage {
    /// 20-byte OSPF-ish header + 8 bytes per advertised adjacency.
    fn size_bytes(&self) -> usize {
        20 + 8 * self.0.neighbors.len()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// A link-state shortest-path-first instance for one router.
///
/// This is the paper's §6 "future work" comparison point: global topology
/// knowledge via flooding, Dijkstra on the LSDB, no distance-vector
/// counting dynamics at all.
#[derive(Debug, Default)]
pub struct Spf {
    config: SpfConfig,
    db: LinkStateDb,
    seq: u64,
    spf_scheduled: bool,
}

impl Spf {
    /// Creates an instance with default parameters.
    #[must_use]
    pub fn new() -> Self {
        Spf::with_config(SpfConfig::default())
    }

    /// Creates an instance with explicit parameters.
    #[must_use]
    pub fn with_config(config: SpfConfig) -> Self {
        Spf {
            config,
            db: LinkStateDb::default(),
            seq: 0,
            spf_scheduled: false,
        }
    }

    /// Read access to the link-state database.
    #[must_use]
    pub fn database(&self) -> &LinkStateDb {
        &self.db
    }

    /// Re-originates this router's own LSA from its current perceived
    /// adjacencies and floods it.
    fn originate(&mut self, ctx: &mut ProtocolContext<'_>) {
        self.seq += 1;
        let neighbors: Vec<(NodeId, u32)> = ctx
            .neighbors()
            .into_iter()
            .filter(|&n| ctx.neighbor_up(n))
            .map(|n| (n, ctx.link_cost(n)))
            .collect();
        let lsa = Lsa {
            origin: ctx.node(),
            seq: self.seq,
            neighbors,
        };
        self.flood(ctx, &lsa, None);
        self.db.install(lsa);
        self.schedule_spf(ctx);
    }

    /// Floods `lsa` to all up neighbors except `except`.
    ///
    /// The LSA is wrapped once; every neighbor's frame shares the same
    /// payload allocation instead of deep-cloning the adjacency list per
    /// link.
    fn flood(&self, ctx: &mut ProtocolContext<'_>, lsa: &Lsa, except: Option<NodeId>) {
        let message: SharedPayload = Arc::new(LsaMessage(lsa.clone()));
        for neighbor in ctx.neighbors() {
            if Some(neighbor) != except && ctx.neighbor_up(neighbor) {
                ctx.send(neighbor, Arc::clone(&message));
            }
        }
    }

    fn schedule_spf(&mut self, ctx: &mut ProtocolContext<'_>) {
        if !self.spf_scheduled {
            self.spf_scheduled = true;
            ctx.set_timer(self.config.spf_delay, TimerToken::compose(timer::SPF_CALC, 0));
        }
    }

    fn run_spf(&mut self, ctx: &mut ProtocolContext<'_>) {
        let hops = self.db.shortest_path_first(ctx.node());
        for (i, hop) in hops.iter().enumerate() {
            let dest = NodeId::new(i as u32);
            if dest == ctx.node() {
                continue;
            }
            match hop {
                Some(next) => ctx.install_route(dest, *next),
                None => ctx.remove_route(dest),
            }
        }
    }
}

impl RoutingProtocol for Spf {
    fn name(&self) -> &'static str {
        "spf"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        self.db = LinkStateDb::new(ctx.num_nodes());
        self.originate(ctx);
        let refresh = self.config.refresh_interval;
        ctx.set_timer(refresh, TimerToken::compose(timer::REFRESH, 0));
    }

    fn on_message(&mut self, ctx: &mut ProtocolContext<'_>, from: NodeId, payload: &dyn Payload) {
        let Some(LsaMessage(lsa)) = payload.as_any().downcast_ref::<LsaMessage>() else {
            debug_assert!(false, "SPF received a non-LSA payload");
            return;
        };
        if self.db.install_if_newer(lsa) {
            self.flood(ctx, lsa, Some(from));
            self.schedule_spf(ctx);
        }
    }

    fn on_timer(&mut self, ctx: &mut ProtocolContext<'_>, token: TimerToken) {
        match token.kind() {
            timer::SPF_CALC => {
                self.spf_scheduled = false;
                self.run_spf(ctx);
            }
            timer::REFRESH => {
                self.originate(ctx);
                let refresh = self.config.refresh_interval;
                ctx.set_timer(refresh, TimerToken::compose(timer::REFRESH, 0));
            }
            other => debug_assert!(false, "unknown SPF timer kind {other}"),
        }
    }

    fn on_link_down(&mut self, ctx: &mut ProtocolContext<'_>, _neighbor: NodeId) {
        self.originate(ctx);
    }

    fn on_link_up(&mut self, ctx: &mut ProtocolContext<'_>, _neighbor: NodeId) {
        self.originate(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsa_message_size_tracks_adjacency_count() {
        let small = LsaMessage(Lsa {
            origin: NodeId::new(0),
            seq: 1,
            neighbors: vec![(NodeId::new(1), 1)],
        });
        let large = LsaMessage(Lsa {
            origin: NodeId::new(0),
            seq: 1,
            neighbors: (1..9).map(|i| (NodeId::new(i), 1)).collect(),
        });
        assert_eq!(small.size_bytes(), 28);
        assert_eq!(large.size_bytes(), 84);
    }

    #[test]
    fn default_config_matches_ospf_practice() {
        let cfg = SpfConfig::default();
        assert_eq!(cfg.spf_delay, SimDuration::from_millis(50));
        assert_eq!(cfg.refresh_interval, SimDuration::from_secs(1800));
        assert_eq!(Spf::new().name(), "spf");
    }
}
