//! The link-state database and shortest-path-first computation.

use std::collections::BinaryHeap;

use netsim::ident::NodeId;
use serde::{Deserialize, Serialize};

/// A link-state advertisement: one router's view of its adjacencies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lsa {
    /// The originating router.
    pub origin: NodeId,
    /// Monotonic sequence number; higher replaces lower.
    pub seq: u64,
    /// The origin's live adjacencies and link costs.
    pub neighbors: Vec<(NodeId, u32)>,
}

/// The collected LSAs of every known router.
#[derive(Debug, Clone, Default)]
pub struct LinkStateDb {
    entries: Vec<Option<Lsa>>,
}

impl LinkStateDb {
    /// Creates a database for `num_nodes` routers.
    #[must_use]
    pub fn new(num_nodes: usize) -> Self {
        LinkStateDb {
            entries: vec![None; num_nodes],
        }
    }

    /// Installs `lsa` if it is newer than the stored instance.
    ///
    /// Returns `true` if the database changed (the LSA must be flooded on).
    ///
    /// # Panics
    ///
    /// Panics if the origin is out of range.
    pub fn install(&mut self, lsa: Lsa) -> bool {
        let slot = &mut self.entries[lsa.origin.index()];
        match slot {
            Some(existing) if existing.seq >= lsa.seq => false,
            _ => {
                *slot = Some(lsa);
                true
            }
        }
    }

    /// Installs a borrowed LSA if it is newer than the stored instance,
    /// cloning it only when accepted — a stale flood costs nothing.
    ///
    /// Returns `true` if the database changed (the LSA must be flooded on).
    ///
    /// # Panics
    ///
    /// Panics if the origin is out of range.
    pub fn install_if_newer(&mut self, lsa: &Lsa) -> bool {
        let slot = &mut self.entries[lsa.origin.index()];
        match slot {
            Some(existing) if existing.seq >= lsa.seq => false,
            _ => {
                *slot = Some(lsa.clone());
                true
            }
        }
    }

    /// The stored LSA for `origin`.
    #[must_use]
    pub fn get(&self, origin: NodeId) -> Option<&Lsa> {
        self.entries.get(origin.index())?.as_ref()
    }

    /// Returns `true` if the database records a *bidirectional* link
    /// `a <-> b` (both LSAs list each other), the standard two-way check
    /// that keeps half-dead links out of SPF.
    #[must_use]
    pub fn has_bidirectional(&self, a: NodeId, b: NodeId) -> bool {
        let lists = |x: NodeId, y: NodeId| {
            self.get(x)
                .is_some_and(|lsa| lsa.neighbors.iter().any(|&(n, _)| n == y))
        };
        lists(a, b) && lists(b, a)
    }

    /// Dijkstra from `source` over bidirectional links, returning
    /// `next_hop[dest]` (ties toward the lowest next-hop id, then lowest
    /// intermediate ids, deterministically).
    #[must_use]
    pub fn shortest_path_first(&self, source: NodeId) -> Vec<Option<NodeId>> {
        let n = self.entries.len();
        let mut dist = vec![u64::MAX; n];
        let mut first_hop: Vec<Option<NodeId>> = vec![None; n];
        let mut done = vec![false; n];
        let mut heap: BinaryHeap<std::cmp::Reverse<(u64, u32, u32)>> = BinaryHeap::new();
        dist[source.index()] = 0;
        // Entries: (distance, tie-break id, node). The first hop is carried
        // implicitly through `first_hop`.
        heap.push(std::cmp::Reverse((0, source.index() as u32, source.index() as u32)));
        while let Some(std::cmp::Reverse((d, _, at_ix))) = heap.pop() {
            let at = NodeId::new(at_ix);
            if done[at.index()] {
                continue;
            }
            done[at.index()] = true;
            let Some(lsa) = self.get(at) else { continue };
            let mut neighbors = lsa.neighbors.clone();
            neighbors.sort_unstable();
            for (next, cost) in neighbors {
                if next.index() >= n || !self.has_bidirectional(at, next) {
                    continue;
                }
                let nd = d + u64::from(cost);
                if nd < dist[next.index()] {
                    dist[next.index()] = nd;
                    first_hop[next.index()] = if at == source {
                        Some(next)
                    } else {
                        first_hop[at.index()]
                    };
                    heap.push(std::cmp::Reverse((nd, next.index() as u32, next.index() as u32)));
                }
            }
        }
        first_hop[source.index()] = None;
        first_hop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn lsa(origin: u32, seq: u64, neighbors: &[u32]) -> Lsa {
        Lsa {
            origin: n(origin),
            seq,
            neighbors: neighbors.iter().map(|&x| (n(x), 1)).collect(),
        }
    }

    fn line_db() -> LinkStateDb {
        // 0 - 1 - 2 - 3
        let mut db = LinkStateDb::new(4);
        db.install(lsa(0, 1, &[1]));
        db.install(lsa(1, 1, &[0, 2]));
        db.install(lsa(2, 1, &[1, 3]));
        db.install(lsa(3, 1, &[2]));
        db
    }

    #[test]
    fn install_honors_sequence_numbers() {
        let mut db = LinkStateDb::new(2);
        assert!(db.install(lsa(0, 5, &[1])));
        assert!(!db.install(lsa(0, 5, &[1])));
        assert!(!db.install(lsa(0, 4, &[])));
        assert!(db.install(lsa(0, 6, &[])));
        assert_eq!(db.get(n(0)).unwrap().neighbors.len(), 0);
    }

    #[test]
    fn bidirectional_check_requires_both_sides() {
        let mut db = LinkStateDb::new(3);
        db.install(lsa(0, 1, &[1]));
        assert!(!db.has_bidirectional(n(0), n(1)));
        db.install(lsa(1, 1, &[0]));
        assert!(db.has_bidirectional(n(0), n(1)));
        assert!(db.has_bidirectional(n(1), n(0)));
    }

    #[test]
    fn spf_on_line_routes_through_the_chain() {
        let db = line_db();
        let hops = db.shortest_path_first(n(0));
        assert_eq!(hops[1], Some(n(1)));
        assert_eq!(hops[2], Some(n(1)));
        assert_eq!(hops[3], Some(n(1)));
        assert_eq!(hops[0], None);
    }

    #[test]
    fn spf_ignores_half_dead_links() {
        let mut db = line_db();
        // Node 2 stops listing 3 (e.g. 2 detected the failure first).
        db.install(lsa(2, 2, &[1]));
        let hops = db.shortest_path_first(n(0));
        assert_eq!(hops[3], None, "dest 3 must be unreachable");
    }

    #[test]
    fn spf_picks_shortest_of_two_branches() {
        // Square 0-1-3 / 0-2-3 plus direct 0-3 long way is equal; with unit
        // costs both branches tie at 2, lowest first-hop wins.
        let mut db = LinkStateDb::new(4);
        db.install(lsa(0, 1, &[1, 2]));
        db.install(lsa(1, 1, &[0, 3]));
        db.install(lsa(2, 1, &[0, 3]));
        db.install(lsa(3, 1, &[1, 2]));
        let hops = db.shortest_path_first(n(0));
        assert_eq!(hops[3], Some(n(1)), "tie must break to the lower id");
    }
}
