//! # spf — a link-state shortest-path-first protocol
//!
//! The paper's §6 names link-state protocols as the next family to compare;
//! this crate provides that extension: LSA flooding with sequence numbers,
//! a link-state database with two-way connectivity checking, throttled
//! Dijkstra recomputation, and FIB installation.
//!
//! ```
//! use spf::Spf;
//! use netsim::protocol::RoutingProtocol;
//!
//! assert_eq!(Spf::new().name(), "spf");
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod lsdb;
pub mod protocol;

pub use lsdb::{LinkStateDb, Lsa};
pub use protocol::{LsaMessage, Spf, SpfConfig};
