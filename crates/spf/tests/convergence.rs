//! SPF behavior on real topologies.

use netsim::link::LinkConfig;
use netsim::simulator::{ForwardingPath, Simulator};
use netsim::time::SimTime;
use spf::Spf;
use topology::instantiate::to_simulator_builder;
use topology::mesh::{Mesh, MeshDegree};
use topology::shortest_path::bfs;

fn spf_mesh(degree: MeshDegree, seed: u64) -> (Simulator, Mesh) {
    let mesh = Mesh::regular(7, 7, degree);
    let (mut builder, _) = to_simulator_builder(mesh.graph(), LinkConfig::default()).unwrap();
    builder.seed(seed);
    let mut sim = builder.build().unwrap();
    for node in mesh.graph().nodes() {
        sim.install_protocol(node, Box::new(Spf::new())).unwrap();
    }
    sim.start();
    (sim, mesh)
}

fn assert_steady_state(sim: &Simulator, mesh: &Mesh) {
    for src in mesh.graph().nodes() {
        let sp = bfs(mesh.graph(), src);
        for dst in mesh.graph().nodes() {
            if src == dst {
                continue;
            }
            match sim.forwarding_path(src, dst) {
                ForwardingPath::Complete(path) => assert_eq!(
                    (path.len() - 1) as u32,
                    sp.distance(dst).unwrap(),
                    "suboptimal path {src}->{dst}: {path:?}"
                ),
                other => panic!("{src}->{dst} not converged: {other:?}"),
            }
        }
    }
}

#[test]
fn spf_converges_within_seconds() {
    for degree in [MeshDegree::D3, MeshDegree::D6] {
        let (mut sim, mesh) = spf_mesh(degree, 1);
        sim.run_until(SimTime::from_secs(5));
        assert_steady_state(&sim, &mesh);
    }
}

#[test]
fn spf_reconverges_quickly_after_failure() {
    let (mut sim, mesh) = spf_mesh(MeshDegree::D4, 2);
    sim.run_until(SimTime::from_secs(5));
    let src = mesh.node_at(0, 3);
    let dst = mesh.node_at(6, 3);
    let path = match sim.forwarding_path(src, dst) {
        ForwardingPath::Complete(p) => p,
        other => panic!("not converged: {other:?}"),
    };
    let (a, b) = (path[2], path[3]);
    let link = sim.link_between(a, b).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(10), link).unwrap();
    // Detection 50 ms + flood ~10 ms + SPF delay 50 ms: well inside 1 s.
    sim.run_until(SimTime::from_secs(11));
    let degraded = mesh.graph().without_edge(topology::graph::Edge::new(a, b));
    let sp = bfs(&degraded, src);
    match sim.forwarding_path(src, dst) {
        ForwardingPath::Complete(p) => {
            assert_eq!((p.len() - 1) as u32, sp.distance(dst).unwrap());
        }
        other => panic!("not reconverged after 1 s: {other:?}"),
    }
}

#[test]
fn spf_runs_are_deterministic() {
    let digest = |seed: u64| {
        let (mut sim, _) = spf_mesh(MeshDegree::D5, seed);
        sim.run_until(SimTime::from_secs(20));
        (sim.stats().control_messages_sent, sim.trace().len())
    };
    assert_eq!(digest(3), digest(3));
}

#[test]
fn spf_floods_each_lsa_once_per_link_direction() {
    let (mut sim, mesh) = spf_mesh(MeshDegree::D4, 4);
    sim.run_until(SimTime::from_secs(20));
    // Each of the 49 LSAs traverses each of the 84 links at most twice
    // (once per direction), plus the initial per-link exchange; the total
    // must be far below a broadcast storm.
    let msgs = sim.stats().control_messages_sent;
    let upper = (mesh.graph().num_edges() * 2 * mesh.graph().num_nodes()) as u64;
    assert!(msgs <= upper, "flooding storm: {msgs} > {upper}");
    assert!(msgs >= (mesh.graph().num_edges() * 2) as u64);
}
