//! DBF behavior on real topologies, emphasizing the instant switch-over
//! that distinguishes it from RIP.

use dbf::Dbf;
use netsim::link::LinkConfig;
use netsim::simulator::{ForwardingPath, Simulator};
use netsim::time::SimTime;
use topology::instantiate::to_simulator_builder;
use topology::mesh::{Mesh, MeshDegree};
use topology::shortest_path::bfs;

fn dbf_mesh(degree: MeshDegree, seed: u64) -> (Simulator, Mesh) {
    let mesh = Mesh::regular(7, 7, degree);
    let (mut builder, _) = to_simulator_builder(mesh.graph(), LinkConfig::default()).unwrap();
    builder.seed(seed);
    let mut sim = builder.build().unwrap();
    for node in mesh.graph().nodes() {
        sim.install_protocol(node, Box::new(Dbf::new())).unwrap();
    }
    sim.start();
    (sim, mesh)
}

fn assert_steady_state(sim: &Simulator, mesh: &Mesh) {
    for src in mesh.graph().nodes() {
        let sp = bfs(mesh.graph(), src);
        for dst in mesh.graph().nodes() {
            if src == dst {
                continue;
            }
            match sim.forwarding_path(src, dst) {
                ForwardingPath::Complete(path) => assert_eq!(
                    (path.len() - 1) as u32,
                    sp.distance(dst).unwrap(),
                    "suboptimal path {src}->{dst}: {path:?}"
                ),
                other => panic!("{src}->{dst} not converged: {other:?}"),
            }
        }
    }
}

#[test]
fn dbf_converges_to_shortest_paths() {
    for (degree, seed) in [(MeshDegree::D3, 1), (MeshDegree::D5, 2), (MeshDegree::D8, 3)] {
        let (mut sim, mesh) = dbf_mesh(degree, seed);
        sim.run_until(SimTime::from_secs(80));
        assert_steady_state(&sim, &mesh);
    }
}

#[test]
fn dbf_switches_instantly_on_dense_mesh() {
    // §4.1: in a degree-6 mesh a router adjacent to the failure finds a
    // valid cached alternate the moment it detects the failure.
    let (mut sim, mesh) = dbf_mesh(MeshDegree::D6, 4);
    sim.run_until(SimTime::from_secs(80));

    let src = mesh.node_at(0, 2);
    let dst = mesh.node_at(6, 2);
    let path = match sim.forwarding_path(src, dst) {
        ForwardingPath::Complete(p) => p,
        other => panic!("not converged: {other:?}"),
    };
    // Fail a link in the middle of the live path.
    let (a, b) = (path[2], path[3]);
    let link = sim.link_between(a, b).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(90), link).unwrap();

    // 1 ms after detection (detection delay = 50 ms) the upstream router
    // already has an alternate installed.
    sim.run_until(SimTime::from_millis(90_051));
    let next = sim.fib(a).next_hop(dst);
    assert!(next.is_some(), "DBF must switch instantly");
    assert_ne!(next, Some(b), "alternate must avoid the failed link");

    // And the whole flow reconverges to the new shortest path eventually.
    sim.run_until(SimTime::from_secs(160));
    let degraded = mesh.graph().without_edge(topology::graph::Edge::new(a, b));
    let sp = bfs(&degraded, src);
    match sim.forwarding_path(src, dst) {
        ForwardingPath::Complete(p) => {
            assert_eq!((p.len() - 1) as u32, sp.distance(dst).unwrap());
        }
        other => panic!("not reconverged: {other:?}"),
    }
}

#[test]
fn dbf_sparse_mesh_may_lose_reachability_but_recovers() {
    // At degree 3 the neighbors of a failure often route *through* the
    // failing router (poisoned cache entries), so reachability can vanish
    // temporarily — but must return well before RIP's periodic cycle.
    let (mut sim, mesh) = dbf_mesh(MeshDegree::D3, 5);
    sim.run_until(SimTime::from_secs(80));
    let src = mesh.node_at(0, 3);
    let dst = mesh.node_at(6, 3);
    let path = match sim.forwarding_path(src, dst) {
        ForwardingPath::Complete(p) => p,
        other => panic!("not converged: {other:?}"),
    };
    let (a, b) = (path[1], path[2]);
    let link = sim.link_between(a, b).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(90), link).unwrap();
    sim.run_until(SimTime::from_secs(170));
    let degraded = mesh.graph().without_edge(topology::graph::Edge::new(a, b));
    let sp = bfs(&degraded, src);
    match sim.forwarding_path(src, dst) {
        ForwardingPath::Complete(p) => {
            assert_eq!((p.len() - 1) as u32, sp.distance(dst).unwrap());
        }
        other => panic!("not reconverged: {other:?}"),
    }
}

#[test]
fn dbf_runs_are_deterministic() {
    let digest = |seed: u64| {
        let (mut sim, _) = dbf_mesh(MeshDegree::D4, seed);
        sim.run_until(SimTime::from_secs(100));
        (sim.stats().control_messages_sent, sim.trace().len())
    };
    assert_eq!(digest(77), digest(77));
}

#[test]
fn dbf_cached_poison_prevents_bogus_alternates() {
    // A line topology: 0-1-2. Node 1's only route to 2 is direct; node 0
    // advertises poison for dest 2 (it routes via 1). After the 1-2 link
    // dies, node 1 must NOT pick node 0 as an alternate.
    let mut builder = netsim::simulator::SimulatorBuilder::new();
    let nodes = builder.add_nodes(3);
    builder.add_link(nodes[0], nodes[1], LinkConfig::default()).unwrap();
    builder.add_link(nodes[1], nodes[2], LinkConfig::default()).unwrap();
    builder.seed(8);
    let mut sim = builder.build().unwrap();
    for &n in &nodes {
        sim.install_protocol(n, Box::new(Dbf::new())).unwrap();
    }
    sim.start();
    sim.run_until(SimTime::from_secs(60));
    let link = sim.link_between(nodes[1], nodes[2]).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(60), link).unwrap();
    sim.run_until(SimTime::from_secs(120));
    assert_eq!(sim.fib(nodes[1]).next_hop(nodes[2]), None);
    assert_eq!(sim.fib(nodes[0]).next_hop(nodes[2]), None);
}

#[test]
fn dbf_and_rip_agree_at_steady_state() {
    // Before any failure the two protocols must compute identical
    // forwarding (same selection rule, same tie-breaks).
    let (mut sim_dbf, mesh) = dbf_mesh(MeshDegree::D4, 6);
    sim_dbf.run_until(SimTime::from_secs(80));

    let (mut builder, _) = to_simulator_builder(mesh.graph(), LinkConfig::default()).unwrap();
    builder.seed(6);
    let mut sim_rip = builder.build().unwrap();
    for node in mesh.graph().nodes() {
        sim_rip.install_protocol(node, Box::new(rip::Rip::new())).unwrap();
    }
    sim_rip.start();
    sim_rip.run_until(SimTime::from_secs(80));

    for src in mesh.graph().nodes() {
        for dst in mesh.graph().nodes() {
            if src == dst {
                continue;
            }
            let a = sim_dbf.forwarding_path(src, dst);
            let b = sim_rip.forwarding_path(src, dst);
            assert!(a.is_complete() && b.is_complete());
            assert_eq!(
                a.nodes().len(),
                b.nodes().len(),
                "path length differs {src}->{dst}"
            );
        }
    }
}
