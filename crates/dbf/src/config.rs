//! DBF configuration.

use netsim::time::SimDuration;
use rip::config::SplitHorizon;
use routing_core::damping::DampingMode;
use serde::{Deserialize, Serialize};

/// Tunable DBF parameters.
///
/// DBF is RIP plus a per-neighbor cache (paper §3): "the only difference
/// between DBF and RIP is that a router keeps a cache of the latest routing
/// update learned from each of its neighbors", so the timer structure is
/// the same and the defaults match [`rip::RipConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DbfConfig {
    /// Interval between full-table periodic updates.
    pub periodic_interval: SimDuration,
    /// Uniform jitter applied to each periodic interval (±jitter).
    pub periodic_jitter: SimDuration,
    /// Shortest triggered-update damping window.
    pub triggered_min: SimDuration,
    /// Longest triggered-update damping window.
    pub triggered_max: SimDuration,
    /// Neighbor staleness: a neighbor whose vector is not refreshed within
    /// this span is treated as silent and its cache invalidated.
    pub neighbor_timeout: SimDuration,
    /// Loop-prevention mode for outgoing updates.
    pub split_horizon: SplitHorizon,
    /// Triggered-update damping semantics (see [`DampingMode`]).
    pub damping_mode: DampingMode,
}

impl Default for DbfConfig {
    fn default() -> Self {
        DbfConfig {
            periodic_interval: SimDuration::from_secs(30),
            periodic_jitter: SimDuration::from_secs(3),
            triggered_min: SimDuration::from_secs(1),
            triggered_max: SimDuration::from_secs(5),
            neighbor_timeout: SimDuration::from_secs(180),
            split_horizon: SplitHorizon::PoisonReverse,
            damping_mode: DampingMode::FirstImmediate,
        }
    }
}

impl DbfConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.periodic_interval.is_zero() {
            return Err("periodic_interval must be positive".into());
        }
        if self.periodic_jitter >= self.periodic_interval {
            return Err("periodic_jitter must be below periodic_interval".into());
        }
        if self.triggered_min > self.triggered_max {
            return Err("triggered_min exceeds triggered_max".into());
        }
        if self.neighbor_timeout < self.periodic_interval * 2 {
            return Err("neighbor_timeout must cover at least two periodic intervals".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_rip() {
        let dbf = DbfConfig::default();
        let rip = rip::RipConfig::default();
        dbf.validate().unwrap();
        assert_eq!(dbf.periodic_interval, rip.periodic_interval);
        assert_eq!(dbf.triggered_min, rip.triggered_min);
        assert_eq!(dbf.triggered_max, rip.triggered_max);
        assert_eq!(dbf.split_horizon, rip.split_horizon);
        assert_eq!(dbf.damping_mode, rip.damping_mode);
    }

    #[test]
    fn validation_rejects_bad_timers() {
        let cfg = DbfConfig {
            neighbor_timeout: SimDuration::from_secs(10),
            ..DbfConfig::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = DbfConfig {
            triggered_min: SimDuration::from_secs(30),
            ..DbfConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
