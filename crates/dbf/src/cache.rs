//! The per-neighbor distance-vector cache that distinguishes DBF from RIP.
//!
//! Keeping the latest vector from *every* neighbor gives a router an
//! instant answer to "who else can reach this destination?" — the zero-time
//! path switch-over of paper §4.1. The cache stores advertisements verbatim
//! (including poisoned infinities), so a neighbor that routes through us
//! correctly offers no alternate.

use netsim::dense::DenseMap;
use netsim::ident::NodeId;
use routing_core::Metric;

/// Latest advertised distance vectors, per neighbor.
///
/// Neighbors are dense small integers, so the vectors live in a
/// [`DenseMap`] — a `Vec` indexed by node id — rather than a tree;
/// iteration still visits neighbors in ascending id order, which is what
/// keeps recomputation order (and therefore traces) identical to the old
/// `BTreeMap` representation.
#[derive(Debug, Clone, Default)]
pub struct NeighborCache {
    /// `vectors[neighbor][dest]` = advertised metric; `None` = never heard.
    vectors: DenseMap<Vec<Option<Metric>>>,
    num_dests: usize,
}

impl NeighborCache {
    /// Creates a cache for `num_dests` destinations.
    #[must_use]
    pub fn new(num_dests: usize) -> Self {
        NeighborCache {
            vectors: DenseMap::new(),
            num_dests,
        }
    }

    /// Records that `neighbor` advertised `metric` for `dest`.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range.
    pub fn update(&mut self, neighbor: NodeId, dest: NodeId, metric: Metric) {
        assert!(dest.index() < self.num_dests, "{dest} out of range");
        let num_dests = self.num_dests;
        let vector = self
            .vectors
            .get_or_insert_with(neighbor, || vec![None; num_dests]);
        vector[dest.index()] = Some(metric);
    }

    /// The advertised metric from `neighbor` for `dest`, if any.
    #[must_use]
    pub fn advertised(&self, neighbor: NodeId, dest: NodeId) -> Option<Metric> {
        *self.vectors.get(neighbor)?.get(dest.index())?
    }

    /// Forgets everything learned from `neighbor` (link failure or
    /// staleness timeout).
    pub fn invalidate(&mut self, neighbor: NodeId) {
        self.vectors.remove(neighbor);
    }

    /// Returns `(neighbor, advertised_metric)` candidates for `dest`,
    /// restricted to neighbors accepted by `usable`.
    pub fn candidates<'a, F>(
        &'a self,
        dest: NodeId,
        usable: F,
    ) -> impl Iterator<Item = (NodeId, Metric)> + 'a
    where
        F: Fn(NodeId) -> bool + 'a,
    {
        self.vectors.iter().filter_map(move |(neighbor, vector)| {
            if !usable(neighbor) {
                return None;
            }
            let metric = (*vector.get(dest.index())?)?;
            Some((neighbor, metric))
        })
    }

    /// Neighbors currently present in the cache.
    pub fn known_neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.vectors.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn update_and_lookup() {
        let mut c = NeighborCache::new(4);
        c.update(n(1), n(3), Metric::new(2));
        assert_eq!(c.advertised(n(1), n(3)), Some(Metric::new(2)));
        assert_eq!(c.advertised(n(1), n(2)), None);
        assert_eq!(c.advertised(n(2), n(3)), None);
    }

    #[test]
    fn poisoned_entries_are_remembered() {
        let mut c = NeighborCache::new(4);
        c.update(n(1), n(3), Metric::INFINITY);
        assert_eq!(c.advertised(n(1), n(3)), Some(Metric::INFINITY));
    }

    #[test]
    fn invalidate_forgets_whole_vector() {
        let mut c = NeighborCache::new(4);
        c.update(n(1), n(0), Metric::new(1));
        c.update(n(1), n(2), Metric::new(5));
        c.invalidate(n(1));
        assert_eq!(c.advertised(n(1), n(0)), None);
        assert_eq!(c.known_neighbors().count(), 0);
    }

    #[test]
    fn candidates_respect_usability_filter() {
        let mut c = NeighborCache::new(4);
        c.update(n(1), n(3), Metric::new(2));
        c.update(n(2), n(3), Metric::new(1));
        let all: Vec<_> = c.candidates(n(3), |_| true).collect();
        assert_eq!(all.len(), 2);
        let only2: Vec<_> = c.candidates(n(3), |nb| nb == n(2)).collect();
        assert_eq!(only2, vec![(n(2), Metric::new(1))]);
    }

    #[test]
    fn candidates_skip_unknown_destinations() {
        let mut c = NeighborCache::new(4);
        c.update(n(1), n(0), Metric::new(1));
        assert_eq!(c.candidates(n(3), |_| true).count(), 0);
    }
}
