//! # dbf — Distributed Bellman-Ford with a per-neighbor vector cache
//!
//! The second protocol of the study (Bertsekas & Gallager's algorithm). The
//! single deliberate difference from [`rip`]: every router caches the
//! latest distance vector from each neighbor, so when the best path dies it
//! switches to an alternate next hop *in the same event* — a zero-length
//! path switch-over period (paper §4.1). The alternate need not be the
//! final shortest path; in a well-connected network the packets still
//! arrive while convergence continues in the background.
//!
//! ```
//! use dbf::Dbf;
//! use netsim::protocol::RoutingProtocol;
//!
//! let instance = Dbf::new();
//! assert_eq!(instance.name(), "dbf");
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod protocol;

pub use cache::NeighborCache;
pub use config::DbfConfig;
pub use protocol::{Dbf, SelectedRoute};
