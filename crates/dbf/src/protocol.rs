//! The DBF protocol engine.

use netsim::ident::NodeId;
use netsim::protocol::{Payload, RoutingProtocol, TimerId, TimerToken};
use netsim::simulator::ProtocolContext;
use netsim::time::SimDuration;
use routing_core::damping::{TriggerAction, TriggeredScheduler};
use routing_core::message::{pack_entries, DvEntry, DvMessage};
use routing_core::metric::Metric;
use routing_core::select_best;
use rip::config::SplitHorizon;
use netsim::dense::DenseMap;
use std::sync::Arc;

use crate::cache::NeighborCache;
use crate::config::DbfConfig;

mod timer {
    pub const PERIODIC: u64 = 1;
    pub const TRIGGERED_WINDOW: u64 = 2;
    pub const NEIGHBOR_TIMEOUT: u64 = 3;
}

/// The selected route for one destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectedRoute {
    /// Distance through the selected next hop.
    pub metric: Metric,
    /// The selected next hop (`None` for the self route).
    pub next_hop: Option<NodeId>,
}

/// A Distributed Bellman-Ford instance for one router.
///
/// Identical to [`rip::Rip`] except for the per-neighbor vector cache: when
/// the current next hop to a destination is lost, DBF *instantly* selects
/// the best alternate from the cache instead of waiting for the next
/// periodic update — the paper's "zero time path switch-over" (§4.1).
#[derive(Debug)]
pub struct Dbf {
    config: DbfConfig,
    cache: NeighborCache,
    selected: Vec<Option<SelectedRoute>>,
    changed: Vec<bool>,
    neighbor_timers: DenseMap<TimerId>,
    scheduler: TriggeredScheduler,
}

impl Dbf {
    /// Creates an instance with the paper's default parameters.
    #[must_use]
    pub fn new() -> Self {
        Dbf::from_valid(DbfConfig::default())
    }

    /// Creates an instance with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for an invalid
    /// configuration.
    pub fn with_config(config: DbfConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Dbf::from_valid(config))
    }

    /// Builds an instance from an already-validated configuration.
    fn from_valid(config: DbfConfig) -> Self {
        Dbf {
            scheduler: TriggeredScheduler::new(
                config.damping_mode,
                config.triggered_min,
                config.triggered_max,
            ),
            config,
            cache: NeighborCache::default(),
            selected: Vec::new(),
            changed: Vec::new(),
            neighbor_timers: DenseMap::new(),
        }
    }

    /// The currently selected route for `dest` (for tests and forensics).
    #[must_use]
    pub fn selected(&self, dest: NodeId) -> Option<SelectedRoute> {
        self.selected.get(dest.index()).copied().flatten()
    }

    /// Re-runs route selection for `dest` against the cache, updating the
    /// FIB and the change flag when the outcome differs.
    fn recompute(&mut self, ctx: &mut ProtocolContext<'_>, dest: NodeId) {
        if dest == ctx.node() {
            return;
        }
        let best = select_best(
            self.cache
                .candidates(dest, |n| ctx.neighbor_up(n))
                .map(|(n, advertised)| (n, advertised + ctx.link_cost(n))),
        )
        .map(|(next_hop, metric)| SelectedRoute {
            metric,
            next_hop: Some(next_hop),
        });
        let slot = &mut self.selected[dest.index()];
        if *slot == best {
            return;
        }
        *slot = best;
        self.changed[dest.index()] = true;
        match best {
            Some(SelectedRoute {
                next_hop: Some(next),
                ..
            }) => ctx.install_route(dest, next),
            // No candidate — or (unreachably, self routes never get here)
            // one without a next hop, which cannot be forwarded to either.
            _ => ctx.remove_route(dest),
        }
    }

    /// Whether any destination's selection changed since the last flush —
    /// the hot-path check, with no `Vec` materialised just to test
    /// emptiness.
    fn has_changes(&self) -> bool {
        self.changed.iter().any(|&c| c)
    }

    fn changed_dests(&self) -> Vec<NodeId> {
        self.changed
            .iter()
            .enumerate()
            .filter(|(_, &c)| c)
            .map(|(i, _)| NodeId::new(i as u32))
            .collect()
    }

    fn clear_changed(&mut self) {
        self.changed.fill(false);
    }

    /// The advertisement for one neighbor under split horizon, as a lazy
    /// iterator — entries stream straight into the inline message
    /// storage of [`pack_entries`] without an intermediate `Vec`.
    ///
    /// Unlike RIP's table dump, DBF advertises the *full vector*: a
    /// destination with no selected route is announced with an infinite
    /// metric, which is how withdrawals reach neighbors whose caches would
    /// otherwise hold the stale finite entry forever.
    fn build_entries<'a>(
        &'a self,
        neighbor: NodeId,
        only: Option<&'a [NodeId]>,
    ) -> impl Iterator<Item = DvEntry> + 'a {
        self.selected.iter().enumerate().filter_map(move |(i, slot)| {
            let dest = NodeId::new(i as u32);
            if only.is_some_and(|set| !set.contains(&dest)) {
                return None;
            }
            let metric = match slot {
                None => Metric::INFINITY,
                Some(route) => {
                    let toward_neighbor = route.next_hop == Some(neighbor);
                    match (toward_neighbor, self.config.split_horizon) {
                        (true, SplitHorizon::Simple) => return None,
                        (true, SplitHorizon::PoisonReverse) => Metric::INFINITY,
                        _ => route.metric,
                    }
                }
            };
            Some(DvEntry { dest, metric })
        })
    }

    fn send_update(&self, ctx: &mut ProtocolContext<'_>, to: NodeId, only: Option<&[NodeId]>) {
        for message in pack_entries(self.build_entries(to, only)) {
            ctx.send(to, Arc::new(message));
        }
    }

    fn send_to_all_up(&self, ctx: &mut ProtocolContext<'_>, only: Option<&[NodeId]>) {
        for neighbor in ctx.neighbors() {
            if ctx.neighbor_up(neighbor) {
                self.send_update(ctx, neighbor, only);
            }
        }
    }

    fn after_changes(&mut self, ctx: &mut ProtocolContext<'_>) {
        if !self.has_changes() {
            return;
        }
        match self.scheduler.on_change(ctx.rng()) {
            TriggerAction::SendNowThenHold(window) => {
                self.flush_changed(ctx);
                ctx.set_timer(window, TimerToken::compose(timer::TRIGGERED_WINDOW, 0));
            }
            TriggerAction::HoldFor(window) => {
                ctx.set_timer(window, TimerToken::compose(timer::TRIGGERED_WINDOW, 0));
            }
            TriggerAction::AlreadyPending => {}
        }
    }

    fn flush_changed(&mut self, ctx: &mut ProtocolContext<'_>) {
        let changed = self.changed_dests();
        if !changed.is_empty() {
            self.send_to_all_up(ctx, Some(&changed));
            self.clear_changed();
        }
    }

    fn refresh_neighbor_timer(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        let id = ctx.set_timer(
            self.config.neighbor_timeout,
            TimerToken::compose(timer::NEIGHBOR_TIMEOUT, neighbor.index() as u64),
        );
        if let Some(old) = self.neighbor_timers.insert(neighbor, id) {
            ctx.cancel_timer(old);
        }
    }

    fn drop_neighbor(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        self.cache.invalidate(neighbor);
        if let Some(t) = self.neighbor_timers.remove(neighbor) {
            ctx.cancel_timer(t);
        }
        for i in 0..self.selected.len() {
            self.recompute(ctx, NodeId::new(i as u32));
        }
        self.after_changes(ctx);
    }
}

impl Default for Dbf {
    fn default() -> Self {
        Dbf::new()
    }
}

impl RoutingProtocol for Dbf {
    fn name(&self) -> &'static str {
        "dbf"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        let n = ctx.num_nodes();
        self.cache = NeighborCache::new(n);
        self.selected = vec![None; n];
        self.changed = vec![false; n];
        // Self route, announced like any change.
        self.selected[ctx.node().index()] = Some(SelectedRoute {
            metric: Metric::ZERO,
            next_hop: None,
        });
        self.changed[ctx.node().index()] = true;
        let first = ctx
            .rng()
            .gen_duration(SimDuration::ZERO, self.config.periodic_interval);
        ctx.set_timer(first, TimerToken::compose(timer::PERIODIC, 0));
        self.after_changes(ctx);
    }

    fn on_message(&mut self, ctx: &mut ProtocolContext<'_>, from: NodeId, payload: &dyn Payload) {
        let Some(message) = payload.as_any().downcast_ref::<DvMessage>() else {
            debug_assert!(false, "DBF received a non-DV payload");
            return;
        };
        self.refresh_neighbor_timer(ctx, from);
        for &entry in &message.entries {
            if entry.dest == ctx.node() {
                continue;
            }
            self.cache.update(from, entry.dest, entry.metric);
            self.recompute(ctx, entry.dest);
        }
        self.after_changes(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ProtocolContext<'_>, token: TimerToken) {
        match token.kind() {
            timer::PERIODIC => {
                self.send_to_all_up(ctx, None);
                self.clear_changed();
                let jitter = self.config.periodic_jitter;
                let next = ctx.rng().gen_duration(
                    self.config.periodic_interval - jitter,
                    self.config.periodic_interval + jitter,
                );
                ctx.set_timer(next, TimerToken::compose(timer::PERIODIC, 0));
            }
            timer::TRIGGERED_WINDOW => {
                let has_changes = self.has_changes();
                let (flush, rearm) = self.scheduler.on_timer_expired(ctx.rng(), has_changes);
                if flush {
                    self.flush_changed(ctx);
                }
                if let Some(window) = rearm {
                    ctx.set_timer(window, TimerToken::compose(timer::TRIGGERED_WINDOW, 0));
                }
            }
            timer::NEIGHBOR_TIMEOUT => {
                let neighbor = NodeId::new(token.arg() as u32);
                self.neighbor_timers.remove(neighbor);
                self.cache.invalidate(neighbor);
                for i in 0..self.selected.len() {
                    self.recompute(ctx, NodeId::new(i as u32));
                }
                self.after_changes(ctx);
            }
            other => debug_assert!(false, "unknown DBF timer kind {other}"),
        }
    }

    fn on_link_down(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        // The instant switch-over: invalidate the neighbor and re-select
        // every destination from the remaining cached vectors, updating the
        // FIB in the same event.
        self.drop_neighbor(ctx, neighbor);
    }

    fn on_link_up(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        self.send_update(ctx, neighbor, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selected_route_equality_drives_change_detection() {
        let a = SelectedRoute {
            metric: Metric::new(2),
            next_hop: Some(NodeId::new(1)),
        };
        let b = SelectedRoute {
            metric: Metric::new(2),
            next_hop: Some(NodeId::new(1)),
        };
        let c = SelectedRoute {
            metric: Metric::new(2),
            next_hop: Some(NodeId::new(3)),
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn new_instance_has_empty_state() {
        let dbf = Dbf::new();
        assert_eq!(dbf.name(), "dbf");
        assert!(dbf.selected(NodeId::new(0)).is_none());
    }
}
