//! # bench — figure regeneration and performance benchmarks
//!
//! Each binary in `src/bin/` regenerates one of the paper's figures or an
//! ablation; `benches/` holds criterion benchmarks. This library provides
//! the shared sweep drivers.
//!
//! Every binary accepts an optional first argument: the number of
//! randomized runs per sweep point (default 100, the paper's count).
//! Results are printed as aligned tables and written as CSV under
//! `results/`.

use convergence::aggregate::{aggregate_point, PointSummary};
use convergence::experiment::ExperimentConfig;
use convergence::metrics::series::{delay_series, throughput_series};
use convergence::metrics::summary::{summarize, RunSummary};
use convergence::protocols::ProtocolKind;
use convergence::runner::{run, RunResult};
use topology::mesh::MeshDegree;

/// Default randomized runs per sweep point (the paper's §5 count).
pub const DEFAULT_RUNS: usize = 100;

/// Base seed for sweeps; per-point seeds derive deterministically.
pub const BASE_SEED: u64 = 20030622;

/// Parses the optional runs-per-point argument.
///
/// # Panics
///
/// Panics with a usage message when the argument is not a number.
#[must_use]
pub fn runs_from_args() -> usize {
    match std::env::args().nth(1) {
        None => DEFAULT_RUNS,
        Some(arg) => arg
            .parse()
            .unwrap_or_else(|_| panic!("usage: <binary> [runs-per-point], got {arg:?}")),
    }
}

/// A deterministic seed for a sweep point. Seeds depend on the degree and
/// run index but *not* the protocol, so all protocols face the identical
/// scenario sequence (flows, failed links) at each degree — the paper
/// compares protocols on the same situations.
#[must_use]
pub fn point_seed(degree: MeshDegree, run_index: usize) -> u64 {
    BASE_SEED + u64::from(degree.as_u32()) * 100_000 + run_index as u64
}

/// Runs `runs` seeded repetitions of the paper experiment for one
/// (protocol, degree) point, applying `customize` to each configuration,
/// and maps every result through `extract`.
///
/// # Panics
///
/// Panics if any run fails (the paper's regular meshes never do).
pub fn sweep_map<T>(
    protocol: ProtocolKind,
    degree: MeshDegree,
    runs: usize,
    customize: &dyn Fn(&mut ExperimentConfig),
    extract: &dyn Fn(&RunResult, &RunSummary) -> T,
) -> Vec<T> {
    (0..runs)
        .map(|i| {
            let mut cfg = ExperimentConfig::paper(protocol, degree, point_seed(degree, i));
            customize(&mut cfg);
            let result = run(&cfg)
                .unwrap_or_else(|e| panic!("{protocol} d{degree} run {i} failed: {e}"));
            let summary = summarize(&result);
            extract(&result, &summary)
        })
        .collect()
}

/// Runs one sweep point and aggregates the scalar summaries.
#[must_use]
pub fn sweep_point(
    protocol: ProtocolKind,
    degree: MeshDegree,
    runs: usize,
    customize: &dyn Fn(&mut ExperimentConfig),
) -> PointSummary {
    let summaries = sweep_map(protocol, degree, runs, customize, &|_, s| s.clone());
    aggregate_point(&summaries)
}

/// Per-run series extracted for the Figure 5/7 time plots.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// Delivered packets per second, seconds relative to failure.
    pub throughput: Vec<(i64, u64)>,
    /// Mean delivered-packet delay per second.
    pub delay: Vec<(i64, Option<f64>)>,
}

/// Runs a sweep point collecting throughput and delay series over the
/// window `[from_s, to_s)` seconds around the failure.
#[must_use]
pub fn sweep_series(
    protocol: ProtocolKind,
    degree: MeshDegree,
    runs: usize,
    from_s: i64,
    to_s: i64,
) -> Vec<SeriesPoint> {
    sweep_map(protocol, degree, runs, &|_| {}, &|result, _| SeriesPoint {
        throughput: throughput_series(&result.trace, result.t_fail, from_s, to_s),
        delay: delay_series(&result.trace, result.t_fail, from_s, to_s),
    })
}

/// The directory figure CSVs are written into.
#[must_use]
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("results")
}

/// Renders a compact ASCII sparkline of a numeric series (for terminal
/// previews of the Figure 5/7 curves).
#[must_use]
pub fn sparkline(values: &[f64], max_hint: Option<f64>) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = max_hint
        .unwrap_or_else(|| values.iter().copied().fold(0.0_f64, f64::max))
        .max(1e-12);
    values
        .iter()
        .map(|&v| {
            let ix = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            GLYPHS[ix]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_seeds_are_unique_per_degree_and_run() {
        let mut seen = std::collections::HashSet::new();
        for degree in MeshDegree::ALL {
            for i in 0..100 {
                assert!(seen.insert(point_seed(degree, i)));
            }
        }
    }

    #[test]
    fn sparkline_spans_the_range() {
        let line = sparkline(&[0.0, 0.5, 1.0], Some(1.0));
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
    }

    #[test]
    fn tiny_sweep_runs_end_to_end() {
        let point = sweep_point(ProtocolKind::Spf, MeshDegree::D6, 2, &|_| {});
        assert_eq!(point.drops_total.n, 2);
        assert!(point.delivery_ratio.mean > 0.9);
    }
}
