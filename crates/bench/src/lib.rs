//! # bench — figure regeneration and performance benchmarks
//!
//! Each binary in `src/bin/` regenerates one of the paper's figures or an
//! ablation; `benches/` holds criterion benchmarks. This library provides
//! the shared sweep drivers.
//!
//! Every binary accepts an optional positional argument (the number of
//! randomized runs per sweep point; default 100, the paper's count) and a
//! `--jobs N` flag (worker threads per sweep point; `0` = all cores,
//! default 1, `JOBS` env var as fallback). Sweeps are deterministic for
//! every job count: per-run seeds depend only on the slot index, and
//! results are assembled in slot order, so the printed tables and CSVs
//! are byte-identical whether a sweep ran on one thread or sixteen.
//! Results are printed as aligned tables and written as CSV under
//! `results/`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use convergence::aggregate::{aggregate_point, PointSummary};
use convergence::experiment::ExperimentConfig;
use convergence::metrics::series::{delay_series, throughput_series};
use convergence::metrics::streaming::summarize_streaming;
use convergence::metrics::summary::{summarize, RunSummary};
use convergence::parallel::par_map_indexed;
use convergence::protocols::ProtocolKind;
use convergence::runner::{run, RunResult};
use topology::mesh::MeshDegree;

/// Default randomized runs per sweep point (the paper's §5 count).
pub const DEFAULT_RUNS: usize = 100;

/// Base seed for sweeps; per-point seeds derive deterministically.
pub const BASE_SEED: u64 = 20030622;

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepArgs {
    /// Randomized runs per sweep point.
    pub runs: usize,
    /// Worker threads per sweep point (`0` = all cores, `1` =
    /// sequential).
    pub jobs: usize,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            runs: DEFAULT_RUNS,
            jobs: 1,
        }
    }
}

/// Parses `[runs-per-point] [--jobs N]` from the process arguments, with
/// the `JOBS` environment variable as a fallback for the flag.
///
/// # Panics
///
/// Panics with a usage message on malformed arguments.
#[must_use]
pub fn sweep_args() -> SweepArgs {
    parse_sweep_args(std::env::args().skip(1), std::env::var("JOBS").ok())
}

/// Testable core of [`sweep_args`].
///
/// # Panics
///
/// Panics with a usage message on malformed arguments.
#[must_use]
pub fn parse_sweep_args<I: Iterator<Item = String>>(
    mut args: I,
    jobs_env: Option<String>,
) -> SweepArgs {
    const USAGE: &str = "usage: <binary> [runs-per-point] [--jobs N]";
    let mut parsed = SweepArgs::default();
    if let Some(env) = jobs_env {
        parsed.jobs = env
            .parse()
            .unwrap_or_else(|_| panic!("{USAGE}; JOBS env var not a number: {env:?}"));
    }
    let mut runs_seen = false;
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            let value = args
                .next()
                .unwrap_or_else(|| panic!("{USAGE}; --jobs needs a value"));
            parsed.jobs = value
                .parse()
                .unwrap_or_else(|_| panic!("{USAGE}; got --jobs {value:?}"));
        } else if let Some(value) = arg.strip_prefix("--jobs=") {
            parsed.jobs = value
                .parse()
                .unwrap_or_else(|_| panic!("{USAGE}; got --jobs={value:?}"));
        } else if !runs_seen {
            parsed.runs = arg
                .parse()
                .unwrap_or_else(|_| panic!("{USAGE}; got {arg:?}"));
            runs_seen = true;
        } else {
            panic!("{USAGE}; unexpected argument {arg:?}");
        }
    }
    parsed
}

/// Parses the optional runs-per-point argument (compatibility wrapper
/// over [`sweep_args`]; `--jobs` is accepted but ignored by the caller).
///
/// # Panics
///
/// Panics with a usage message when the argument is not a number.
#[must_use]
pub fn runs_from_args() -> usize {
    sweep_args().runs
}

/// A deterministic seed for a sweep point. Seeds depend on the degree and
/// run index but *not* the protocol, so all protocols face the identical
/// scenario sequence (flows, failed links) at each degree — the paper
/// compares protocols on the same situations.
#[must_use]
pub fn point_seed(degree: MeshDegree, run_index: usize) -> u64 {
    BASE_SEED + u64::from(degree.as_u32()) * 100_000 + run_index as u64
}

/// Runs `runs` seeded repetitions of the paper experiment for one
/// (protocol, degree) point on up to `jobs` worker threads, applying
/// `customize` to each configuration, and maps every result through
/// `extract`.
///
/// Each worker discards the run's trace as soon as `extract` returns, so
/// the sweep retains `runs × T`, never `runs` full traces. Results come
/// back in run-index order regardless of `jobs`.
///
/// # Panics
///
/// Panics if any run fails (the paper's regular meshes never do).
pub fn sweep_map<T: Send>(
    protocol: ProtocolKind,
    degree: MeshDegree,
    runs: usize,
    jobs: usize,
    customize: &(dyn Fn(&mut ExperimentConfig) + Sync),
    extract: &(dyn Fn(&RunResult, &RunSummary) -> T + Sync),
) -> Vec<T> {
    par_map_indexed(runs, jobs, |i| {
        let mut cfg = ExperimentConfig::paper(protocol, degree, point_seed(degree, i));
        customize(&mut cfg);
        let result =
            run(&cfg).unwrap_or_else(|e| panic!("{protocol} d{degree} run {i} failed: {e}"));
        let summary = summarize(&result)
            .unwrap_or_else(|e| panic!("{protocol} d{degree} run {i}: {e}"));
        extract(&result, &summary)
    })
}

/// Runs one sweep point and aggregates the scalar summaries.
///
/// Uses the streaming metric observers: each run's trace is folded into
/// its [`RunSummary`] in a single pass and dropped, so a 100-run point
/// holds 100 summaries instead of 100 event traces. The summaries are
/// identical to the trace-based path's.
///
/// # Panics
///
/// Panics if any run fails (the paper's regular meshes never do).
#[must_use]
pub fn sweep_point(
    protocol: ProtocolKind,
    degree: MeshDegree,
    runs: usize,
    jobs: usize,
    customize: &(dyn Fn(&mut ExperimentConfig) + Sync),
) -> PointSummary {
    let summaries = par_map_indexed(runs, jobs, |i| {
        let mut cfg = ExperimentConfig::paper(protocol, degree, point_seed(degree, i));
        customize(&mut cfg);
        let result =
            run(&cfg).unwrap_or_else(|e| panic!("{protocol} d{degree} run {i} failed: {e}"));
        summarize_streaming(&result)
            .unwrap_or_else(|e| panic!("{protocol} d{degree} run {i}: {e}"))
    });
    aggregate_point(&summaries).expect("nonempty sweep")
}

/// Per-run series extracted for the Figure 5/7 time plots.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// Delivered packets per second, seconds relative to failure.
    pub throughput: Vec<(i64, u64)>,
    /// Mean delivered-packet delay per second.
    pub delay: Vec<(i64, Option<f64>)>,
}

/// Runs a sweep point collecting throughput and delay series over the
/// window `[from_s, to_s)` seconds around the failure.
#[must_use]
pub fn sweep_series(
    protocol: ProtocolKind,
    degree: MeshDegree,
    runs: usize,
    jobs: usize,
    from_s: i64,
    to_s: i64,
) -> Vec<SeriesPoint> {
    sweep_map(protocol, degree, runs, jobs, &|_| {}, &|result, _| {
        SeriesPoint {
            throughput: throughput_series(&result.trace, result.t_fail, from_s, to_s),
            delay: delay_series(&result.trace, result.t_fail, from_s, to_s),
        }
    })
}

/// The directory figure CSVs are written into.
#[must_use]
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("results")
}

/// Renders a compact ASCII sparkline of a numeric series (for terminal
/// previews of the Figure 5/7 curves).
#[must_use]
pub fn sparkline(values: &[f64], max_hint: Option<f64>) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = max_hint
        .unwrap_or_else(|| values.iter().copied().fold(0.0_f64, f64::max))
        .max(1e-12);
    values
        .iter()
        .map(|&v| {
            let ix = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            GLYPHS[ix]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_seeds_are_unique_per_degree_and_run() {
        let mut seen = std::collections::HashSet::new();
        for degree in MeshDegree::ALL {
            for i in 0..100 {
                assert!(seen.insert(point_seed(degree, i)));
            }
        }
    }

    #[test]
    fn sparkline_spans_the_range() {
        let line = sparkline(&[0.0, 0.5, 1.0], Some(1.0));
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
    }

    #[test]
    fn arg_parsing_accepts_runs_jobs_and_env() {
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>().into_iter();
        assert_eq!(parse_sweep_args(args(&[]), None), SweepArgs::default());
        assert_eq!(
            parse_sweep_args(args(&["25"]), None),
            SweepArgs { runs: 25, jobs: 1 }
        );
        assert_eq!(
            parse_sweep_args(args(&["25", "--jobs", "4"]), None),
            SweepArgs { runs: 25, jobs: 4 }
        );
        assert_eq!(
            parse_sweep_args(args(&["--jobs=8", "10"]), None),
            SweepArgs { runs: 10, jobs: 8 }
        );
        // Env fallback applies, explicit flag wins.
        assert_eq!(
            parse_sweep_args(args(&["5"]), Some("2".into())),
            SweepArgs { runs: 5, jobs: 2 }
        );
        assert_eq!(
            parse_sweep_args(args(&["5", "--jobs", "3"]), Some("2".into())),
            SweepArgs { runs: 5, jobs: 3 }
        );
    }

    #[test]
    #[should_panic(expected = "unexpected argument")]
    fn arg_parsing_rejects_extra_positionals() {
        let _ = parse_sweep_args(["1".to_string(), "2".to_string()].into_iter(), None);
    }

    #[test]
    fn tiny_sweep_runs_end_to_end() {
        let point = sweep_point(ProtocolKind::Spf, MeshDegree::D6, 2, 1, &|_| {});
        assert_eq!(point.drops_total.n, 2);
        assert!(point.delivery_ratio.mean > 0.9);
    }

    #[test]
    fn sweep_point_is_identical_for_any_job_count() {
        let sequential = sweep_point(ProtocolKind::Spf, MeshDegree::D6, 3, 1, &|_| {});
        let parallel = sweep_point(ProtocolKind::Spf, MeshDegree::D6, 3, 3, &|_| {});
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn sweep_csv_bytes_are_identical_for_any_job_count() {
        use convergence::report::{fmt_f64, Table};
        let csv = |jobs: usize| {
            let point = sweep_point(ProtocolKind::Dbf, MeshDegree::D6, 2, jobs, &|_| {});
            let mut table =
                Table::new(["delivery", "no-route", "rtconv"].map(String::from).to_vec());
            table.push_row(vec![
                format!("{:.6}", point.delivery_ratio.mean),
                fmt_f64(point.drops_no_route.mean),
                fmt_f64(point.routing_convergence_s.mean),
            ]);
            table.to_csv().into_bytes()
        };
        assert_eq!(csv(1), csv(4));
    }
}
