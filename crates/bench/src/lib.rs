//! # bench — figure regeneration and performance benchmarks
//!
//! Each binary in `src/bin/` regenerates one of the paper's figures or an
//! ablation; `benches/` holds criterion benchmarks. This library provides
//! the shared sweep drivers.
//!
//! Every binary accepts an optional positional argument (the number of
//! randomized runs per sweep point; default 100, the paper's count), a
//! `--jobs N` flag (worker threads per sweep point; `0` = all cores,
//! default 1, `JOBS` env var as fallback), and a `--progress` flag (live
//! per-sweep completion and ETA on stderr). Sweeps are deterministic for
//! every job count: per-run seeds depend only on the slot index, and
//! results are assembled in slot order, so the printed tables and CSVs
//! are byte-identical whether a sweep ran on one thread or sixteen.
//! Results are printed as aligned tables and written as CSV under
//! `results/`, with per-run telemetry under `results/telemetry/`.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use convergence::aggregate::{aggregate_point, run_telemetry, PointSummary};
use convergence::experiment::ExperimentConfig;
use convergence::metrics::series::{delay_series, throughput_series};
use convergence::metrics::streaming::summarize_streaming;
use convergence::metrics::summary::{summarize, RunSummary};
use convergence::parallel::par_map_indexed_with;
use convergence::protocols::ProtocolKind;
use convergence::runner::{run, RunResult};
use obs::progress::Progress;
use obs::telemetry::{render_jsonl, RunTelemetry};
use topology::mesh::MeshDegree;

/// Default randomized runs per sweep point (the paper's §5 count).
pub const DEFAULT_RUNS: usize = 100;

/// Base seed for sweeps; per-point seeds derive deterministically.
pub const BASE_SEED: u64 = 20030622;

/// Command-line options shared by every figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepArgs {
    /// Randomized runs per sweep point.
    pub runs: usize,
    /// Worker threads per sweep point (`0` = all cores, `1` =
    /// sequential).
    pub jobs: usize,
    /// Report live sweep progress (runs completed / total, per-slot
    /// status, wall-clock ETA) on stderr.
    pub progress: bool,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            runs: DEFAULT_RUNS,
            jobs: 1,
            progress: false,
        }
    }
}

/// Parses `[runs-per-point] [--jobs N]` from the process arguments, with
/// the `JOBS` environment variable as a fallback for the flag.
///
/// # Panics
///
/// Panics with a usage message on malformed arguments.
#[must_use]
pub fn sweep_args() -> SweepArgs {
    parse_sweep_args(std::env::args().skip(1), std::env::var("JOBS").ok())
}

/// Testable core of [`sweep_args`].
///
/// # Panics
///
/// Panics with a usage message on malformed arguments.
#[must_use]
pub fn parse_sweep_args<I: Iterator<Item = String>>(
    mut args: I,
    jobs_env: Option<String>,
) -> SweepArgs {
    const USAGE: &str = "usage: <binary> [runs-per-point] [--jobs N] [--progress]";
    let mut parsed = SweepArgs::default();
    if let Some(env) = jobs_env {
        parsed.jobs = env
            .parse()
            .unwrap_or_else(|_| panic!("{USAGE}; JOBS env var not a number: {env:?}"));
    }
    let mut runs_seen = false;
    while let Some(arg) = args.next() {
        if arg == "--progress" {
            parsed.progress = true;
        } else if arg == "--jobs" {
            let value = args
                .next()
                .unwrap_or_else(|| panic!("{USAGE}; --jobs needs a value"));
            parsed.jobs = value
                .parse()
                .unwrap_or_else(|_| panic!("{USAGE}; got --jobs {value:?}"));
        } else if let Some(value) = arg.strip_prefix("--jobs=") {
            parsed.jobs = value
                .parse()
                .unwrap_or_else(|_| panic!("{USAGE}; got --jobs={value:?}"));
        } else if !runs_seen {
            parsed.runs = arg
                .parse()
                .unwrap_or_else(|_| panic!("{USAGE}; got {arg:?}"));
            runs_seen = true;
        } else {
            panic!("{USAGE}; unexpected argument {arg:?}");
        }
    }
    parsed
}

/// Parses the optional runs-per-point argument (compatibility wrapper
/// over [`sweep_args`]; `--jobs` is accepted but ignored by the caller).
///
/// # Panics
///
/// Panics with a usage message when the argument is not a number.
#[must_use]
pub fn runs_from_args() -> usize {
    sweep_args().runs
}

/// A deterministic seed for a sweep point. Seeds depend on the degree and
/// run index but *not* the protocol, so all protocols face the identical
/// scenario sequence (flows, failed links) at each degree — the paper
/// compares protocols on the same situations.
#[must_use]
pub fn point_seed(degree: MeshDegree, run_index: usize) -> u64 {
    BASE_SEED + u64::from(degree.as_u32()) * 100_000 + run_index as u64
}

/// Collects per-run telemetry across a bench binary's sweeps and, when
/// `--progress` was given, reports live completion on stderr.
///
/// One observer lives per binary: each observed sweep appends its rows
/// (stamped with a `label/slot` context), and [`SweepObserver::finish`]
/// writes everything as `results/telemetry/<bin>.jsonl` — the per-target
/// stream `run_all` merges into `results/telemetry.jsonl`. The rows are
/// in sweep-then-slot order and contain no wall-clock values, so the file
/// bytes are deterministic for a fixed seed and any `--jobs` count; the
/// wall clock is used only for the (stderr) ETA display.
#[derive(Debug)]
pub struct SweepObserver {
    bin: &'static str,
    progress: bool,
    started: std::time::Instant,
    rows: Vec<RunTelemetry>,
}

impl SweepObserver {
    /// An observer for the binary `bin` honouring the parsed `--progress`
    /// flag.
    #[must_use]
    pub fn new(bin: &'static str, args: SweepArgs) -> Self {
        SweepObserver {
            bin,
            progress: args.progress,
            started: std::time::Instant::now(),
            rows: Vec::new(),
        }
    }

    /// An observer that neither prints progress nor is ever finished —
    /// what the unobserved sweep wrappers use internally.
    #[must_use]
    pub fn quiet(bin: &'static str) -> Self {
        SweepObserver::new(bin, SweepArgs { progress: false, ..SweepArgs::default() })
    }

    /// The live progress meter for one sweep of `total` runs. Binaries
    /// that drive `par_map_indexed_with` themselves pair this with
    /// [`ProgressMeter::tick`] in the completion callback.
    #[must_use]
    pub fn meter(&self, label: &str, total: usize) -> ProgressMeter {
        ProgressMeter {
            label: label.to_string(),
            enabled: self.progress,
            started: self.started,
            progress: Progress::new(total),
        }
    }

    /// Appends one sweep's telemetry rows, stamping each with `label`.
    pub fn push_rows(&mut self, label: &str, rows: Vec<RunTelemetry>) {
        for mut row in rows {
            row.label = label.to_string();
            self.rows.push(row);
        }
    }

    /// All rows collected so far, in sweep-then-slot order.
    #[must_use]
    pub fn rows(&self) -> &[RunTelemetry] {
        &self.rows
    }

    /// The collected rows rendered as JSONL (deterministic bytes).
    #[must_use]
    pub fn render_jsonl(&self) -> String {
        render_jsonl(&self.rows)
    }

    /// Writes the collected rows to `results/telemetry/<bin>.jsonl`,
    /// returning the path.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn finish(&self) -> std::io::Result<std::path::PathBuf> {
        let dir = results_dir().join("telemetry");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{}.jsonl", self.bin));
        std::fs::write(&path, self.render_jsonl())?;
        Ok(path)
    }
}

/// Live completion meter for one sweep (see [`SweepObserver::meter`]).
#[derive(Debug)]
pub struct ProgressMeter {
    label: String,
    enabled: bool,
    started: std::time::Instant,
    progress: Progress,
}

impl ProgressMeter {
    /// Marks run slot `i` complete; prints a progress line when enabled.
    pub fn tick(&self, i: usize) {
        self.progress.mark_done(i);
        if self.enabled {
            let elapsed = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
            eprintln!("{}", self.progress.render(&self.label, Some(elapsed)));
        }
    }
}

/// The telemetry context label of one (protocol, degree) sweep point.
fn point_label(protocol: ProtocolKind, degree: MeshDegree) -> String {
    format!("{protocol}/d{degree}")
}

/// Runs `runs` seeded repetitions of the paper experiment for one
/// (protocol, degree) point on up to `jobs` worker threads, applying
/// `customize` to each configuration, and maps every result through
/// `extract`.
///
/// Each worker discards the run's trace as soon as `extract` returns, so
/// the sweep retains `runs × T`, never `runs` full traces. Results come
/// back in run-index order regardless of `jobs`.
///
/// # Panics
///
/// Panics if any run fails (the paper's regular meshes never do).
pub fn sweep_map<T: Send>(
    protocol: ProtocolKind,
    degree: MeshDegree,
    runs: usize,
    jobs: usize,
    customize: &(dyn Fn(&mut ExperimentConfig) + Sync),
    extract: &(dyn Fn(&RunResult, &RunSummary) -> T + Sync),
) -> Vec<T> {
    sweep_map_observed(
        protocol,
        degree,
        runs,
        jobs,
        customize,
        extract,
        &mut SweepObserver::quiet("adhoc"),
    )
}

/// [`sweep_map`] recording per-run telemetry (and live progress) into
/// `observer`.
///
/// # Panics
///
/// Panics if any run fails (the paper's regular meshes never do).
pub fn sweep_map_observed<T: Send>(
    protocol: ProtocolKind,
    degree: MeshDegree,
    runs: usize,
    jobs: usize,
    customize: &(dyn Fn(&mut ExperimentConfig) + Sync),
    extract: &(dyn Fn(&RunResult, &RunSummary) -> T + Sync),
    observer: &mut SweepObserver,
) -> Vec<T> {
    let label = point_label(protocol, degree);
    let meter = observer.meter(&label, runs);
    let slots = par_map_indexed_with(
        runs,
        jobs,
        |i| {
            let mut cfg = ExperimentConfig::paper(protocol, degree, point_seed(degree, i));
            customize(&mut cfg);
            let result =
                run(&cfg).unwrap_or_else(|e| panic!("{protocol} d{degree} run {i} failed: {e}"));
            let telemetry = run_telemetry(i as u64, cfg.seed, 1, protocol.label(), &result);
            let summary = summarize(&result)
                .unwrap_or_else(|e| panic!("{protocol} d{degree} run {i}: {e}"));
            (extract(&result, &summary), telemetry)
        },
        &|i| meter.tick(i),
    );
    let mut out = Vec::with_capacity(slots.len());
    let mut rows = Vec::with_capacity(slots.len());
    for (value, telemetry) in slots {
        out.push(value);
        rows.push(telemetry);
    }
    observer.push_rows(&label, rows);
    out
}

/// Runs one sweep point and aggregates the scalar summaries.
///
/// Uses the streaming metric observers: each run's trace is folded into
/// its [`RunSummary`] in a single pass and dropped, so a 100-run point
/// holds 100 summaries instead of 100 event traces. The summaries are
/// identical to the trace-based path's.
///
/// # Panics
///
/// Panics if any run fails (the paper's regular meshes never do).
#[must_use]
pub fn sweep_point(
    protocol: ProtocolKind,
    degree: MeshDegree,
    runs: usize,
    jobs: usize,
    customize: &(dyn Fn(&mut ExperimentConfig) + Sync),
) -> PointSummary {
    sweep_point_observed(
        protocol,
        degree,
        runs,
        jobs,
        customize,
        &mut SweepObserver::quiet("adhoc"),
    )
}

/// [`sweep_point`] recording per-run telemetry (and live progress) into
/// `observer`. The telemetry never feeds the aggregated summaries, so
/// figure CSVs are unchanged by observation.
///
/// # Panics
///
/// Panics if any run fails (the paper's regular meshes never do).
#[must_use]
pub fn sweep_point_observed(
    protocol: ProtocolKind,
    degree: MeshDegree,
    runs: usize,
    jobs: usize,
    customize: &(dyn Fn(&mut ExperimentConfig) + Sync),
    observer: &mut SweepObserver,
) -> PointSummary {
    let label = point_label(protocol, degree);
    let meter = observer.meter(&label, runs);
    let slots = par_map_indexed_with(
        runs,
        jobs,
        |i| {
            let mut cfg = ExperimentConfig::paper(protocol, degree, point_seed(degree, i));
            customize(&mut cfg);
            let result =
                run(&cfg).unwrap_or_else(|e| panic!("{protocol} d{degree} run {i} failed: {e}"));
            let telemetry = run_telemetry(i as u64, cfg.seed, 1, protocol.label(), &result);
            let summary = summarize_streaming(&result)
                .unwrap_or_else(|e| panic!("{protocol} d{degree} run {i}: {e}"));
            (summary, telemetry)
        },
        &|i| meter.tick(i),
    );
    let mut summaries = Vec::with_capacity(slots.len());
    let mut rows = Vec::with_capacity(slots.len());
    for (summary, telemetry) in slots {
        summaries.push(summary);
        rows.push(telemetry);
    }
    observer.push_rows(&label, rows);
    aggregate_point(&summaries).expect("nonempty sweep")
}

/// Per-run series extracted for the Figure 5/7 time plots.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// Delivered packets per second, seconds relative to failure.
    pub throughput: Vec<(i64, u64)>,
    /// Mean delivered-packet delay per second.
    pub delay: Vec<(i64, Option<f64>)>,
}

/// Runs a sweep point collecting throughput and delay series over the
/// window `[from_s, to_s)` seconds around the failure.
#[must_use]
pub fn sweep_series(
    protocol: ProtocolKind,
    degree: MeshDegree,
    runs: usize,
    jobs: usize,
    from_s: i64,
    to_s: i64,
) -> Vec<SeriesPoint> {
    sweep_series_observed(
        protocol,
        degree,
        runs,
        jobs,
        from_s,
        to_s,
        &mut SweepObserver::quiet("adhoc"),
    )
}

/// [`sweep_series`] recording per-run telemetry (and live progress) into
/// `observer`.
#[must_use]
pub fn sweep_series_observed(
    protocol: ProtocolKind,
    degree: MeshDegree,
    runs: usize,
    jobs: usize,
    from_s: i64,
    to_s: i64,
    observer: &mut SweepObserver,
) -> Vec<SeriesPoint> {
    sweep_map_observed(
        protocol,
        degree,
        runs,
        jobs,
        &|_| {},
        &|result, _| SeriesPoint {
            throughput: throughput_series(&result.trace, result.t_fail, from_s, to_s),
            delay: delay_series(&result.trace, result.t_fail, from_s, to_s),
        },
        observer,
    )
}

/// The directory figure CSVs are written into.
#[must_use]
pub fn results_dir() -> std::path::PathBuf {
    std::path::PathBuf::from("results")
}

/// Renders a compact ASCII sparkline of a numeric series (for terminal
/// previews of the Figure 5/7 curves).
#[must_use]
pub fn sparkline(values: &[f64], max_hint: Option<f64>) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = max_hint
        .unwrap_or_else(|| values.iter().copied().fold(0.0_f64, f64::max))
        .max(1e-12);
    values
        .iter()
        .map(|&v| {
            let ix = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            GLYPHS[ix]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_seeds_are_unique_per_degree_and_run() {
        let mut seen = std::collections::HashSet::new();
        for degree in MeshDegree::ALL {
            for i in 0..100 {
                assert!(seen.insert(point_seed(degree, i)));
            }
        }
    }

    #[test]
    fn sparkline_spans_the_range() {
        let line = sparkline(&[0.0, 0.5, 1.0], Some(1.0));
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('▁'));
        assert!(line.ends_with('█'));
    }

    #[test]
    fn arg_parsing_accepts_runs_jobs_and_env() {
        let args = |v: &[&str]| v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>().into_iter();
        assert_eq!(parse_sweep_args(args(&[]), None), SweepArgs::default());
        assert_eq!(
            parse_sweep_args(args(&["25"]), None),
            SweepArgs { runs: 25, jobs: 1, progress: false }
        );
        assert_eq!(
            parse_sweep_args(args(&["25", "--jobs", "4"]), None),
            SweepArgs { runs: 25, jobs: 4, progress: false }
        );
        assert_eq!(
            parse_sweep_args(args(&["--jobs=8", "10"]), None),
            SweepArgs { runs: 10, jobs: 8, progress: false }
        );
        // Env fallback applies, explicit flag wins.
        assert_eq!(
            parse_sweep_args(args(&["5"]), Some("2".into())),
            SweepArgs { runs: 5, jobs: 2, progress: false }
        );
        assert_eq!(
            parse_sweep_args(args(&["5", "--jobs", "3"]), Some("2".into())),
            SweepArgs { runs: 5, jobs: 3, progress: false }
        );
        assert_eq!(
            parse_sweep_args(args(&["--progress", "5", "--jobs", "2"]), None),
            SweepArgs { runs: 5, jobs: 2, progress: true }
        );
    }

    #[test]
    #[should_panic(expected = "unexpected argument")]
    fn arg_parsing_rejects_extra_positionals() {
        let _ = parse_sweep_args(["1".to_string(), "2".to_string()].into_iter(), None);
    }

    #[test]
    fn tiny_sweep_runs_end_to_end() {
        let point = sweep_point(ProtocolKind::Spf, MeshDegree::D6, 2, 1, &|_| {});
        assert_eq!(point.drops_total.n, 2);
        assert!(point.delivery_ratio.mean > 0.9);
    }

    #[test]
    fn sweep_point_is_identical_for_any_job_count() {
        let sequential = sweep_point(ProtocolKind::Spf, MeshDegree::D6, 3, 1, &|_| {});
        let parallel = sweep_point(ProtocolKind::Spf, MeshDegree::D6, 3, 3, &|_| {});
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn telemetry_bytes_are_identical_for_any_job_count() {
        let jsonl = |jobs: usize| {
            let mut observer = SweepObserver::quiet("determinism-test");
            let _ = sweep_point_observed(
                ProtocolKind::Rip,
                MeshDegree::D6,
                3,
                jobs,
                &|_| {},
                &mut observer,
            );
            observer.render_jsonl().into_bytes()
        };
        let sequential = jsonl(1);
        assert_eq!(sequential, jsonl(4));
        let text = String::from_utf8(sequential).expect("jsonl is utf-8");
        assert_eq!(text.lines().count(), 3);
        assert!(text.starts_with("{\"label\":\"RIP/d6\",\"slot\":0,"));
        for line in text.lines() {
            assert!(line.contains("\"attempts\":1,\"ok\":true,\"protocol\":\"RIP\""));
            assert!(obs::telemetry::field_u64(line, "events_processed").unwrap_or(0) > 0);
            assert!(obs::telemetry::field_u64(line, "queue_high_water").unwrap_or(0) > 0);
        }
    }

    #[test]
    fn sweep_csv_bytes_are_identical_for_any_job_count() {
        use convergence::report::{fmt_f64, Table};
        let csv = |jobs: usize| {
            let point = sweep_point(ProtocolKind::Dbf, MeshDegree::D6, 2, jobs, &|_| {});
            let mut table =
                Table::new(["delivery", "no-route", "rtconv"].map(String::from).to_vec());
            table.push_row(vec![
                format!("{:.6}", point.delivery_ratio.mean),
                fmt_f64(point.drops_no_route.mean),
                fmt_f64(point.routing_convergence_s.mean),
            ]);
            table.to_csv().into_bytes()
        };
        assert_eq!(csv(1), csv(4));
    }
}
