//! Extension E3 (paper §6 future work): end-to-end reliable-transport
//! performance during routing convergence.
//!
//! A window-limited go-back-N transfer (the "simple flow control with a
//! maximal window size and retransmission after timeout" of the paper's
//! reference \[25\]) crosses the mesh while one on-path link fails. We
//! measure the goodput stall and retransmission cost per protocol.

use bench::{point_seed, sweep_args, SweepArgs, SweepObserver};
use convergence::prelude::*;
use convergence::report::{fmt_f64, Table};
use netsim::time::SimDuration;
use topology::mesh::MeshDegree;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ext_tcp", args);
    let runs = runs.min(50);
    println!("Extension E3 — go-back-N transfer across a failure, {runs} runs/point\n");

    let mut table = Table::new(
        [
            "degree",
            "protocol",
            "stall (s)",
            "retransmissions",
            "completion (s)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for degree in [MeshDegree::D3, MeshDegree::D4, MeshDegree::D6] {
        for protocol in ProtocolKind::PAPER {
            let sweep_label = format!("{}/d{degree}/gbn", protocol.label());
            let meter = observer.meter(&sweep_label, runs);
            let per_run = par_map_indexed_with(runs, jobs, |i| {
                let mut cfg = ExperimentConfig::paper(protocol, degree, point_seed(degree, i));
                cfg.traffic.mode = TrafficMode::GoBackN(GoBackNConfig {
                    total_packets: 20_000,
                    ..GoBackNConfig::default()
                });
                cfg.traffic.lead = SimDuration::from_secs(2);
                cfg.traffic.tail = SimDuration::from_secs(120);
                cfg.drain = SimDuration::from_secs(300);
                let result = run(&cfg).expect("run succeeds");
                let report = &result.flow_reports[0];
                // Stall: longest gap between progress events after the
                // failure.
                let mut stall = 0.0f64;
                for w in report.progress.windows(2) {
                    if w[1].0 >= result.t_fail {
                        stall = stall.max(w[1].0.saturating_since(w[0].0).as_secs_f64());
                    }
                }
                let done = report
                    .completed_at
                    .map(|done| done.saturating_since(result.t_fail).as_secs_f64());
                let telemetry = run_telemetry(i as u64, cfg.seed, 1, protocol.label(), &result);
                ((stall, report.retransmissions as f64, done), telemetry)
            }, &|i| meter.tick(i));
            let (per_run, rows): (Vec<_>, Vec<_>) = per_run.into_iter().unzip();
            observer.push_rows(&sweep_label, rows);
            let stalls: Vec<f64> = per_run.iter().map(|&(s, _, _)| s).collect();
            let retx: Vec<f64> = per_run.iter().map(|&(_, r, _)| r).collect();
            let completion: Vec<f64> = per_run.iter().filter_map(|&(_, _, c)| c).collect();
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
            table.push_row(vec![
                degree.to_string(),
                protocol.label().to_string(),
                fmt_f64(mean(&stalls)),
                fmt_f64(mean(&retx)),
                if completion.is_empty() {
                    "-".into()
                } else {
                    fmt_f64(mean(&completion))
                },
            ]);
            eprintln!("  degree {degree} {protocol} done");
        }
    }
    println!("{}", table.render());
    println!("expected: the transport hides packet loss but not time — the stall");
    println!("tracks each protocol's forwarding-path convergence delay, and");
    println!("go-back-N pays for every stall with a burst of retransmissions.\n");
    let path = bench::results_dir().join("ext_tcp.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
