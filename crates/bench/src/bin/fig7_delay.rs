//! Figure 7: instantaneous end-to-end delay of delivered packets vs. time
//! around the failure, at node degrees 4, 5 and 6.
//!
//! Paper shape to reproduce: packets delivered during convergence traverse
//! longer-than-final paths, so the delay spikes just after the failure and
//! settles back; packets that escape a forwarding loop show much larger
//! spikes (visible at the loop-prone sparse degrees).

use bench::{sweep_args, sweep_series_observed, SweepArgs, SweepObserver};
use convergence::metrics::series::mean_delay_series;
use convergence::protocols::ProtocolKind;
use convergence::report::Table;
use topology::mesh::MeshDegree;

const FROM_S: i64 = -10;
const TO_S: i64 = 40;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("fig7_delay", args);
    println!("Figure 7 — instantaneous packet delay vs time, {runs} runs/point");
    println!("window: {FROM_S}..{TO_S} s relative to the failure\n");

    for degree in [MeshDegree::D4, MeshDegree::D5, MeshDegree::D6] {
        let mut table = Table::new(
            std::iter::once("t(s)".to_string())
                .chain(ProtocolKind::PAPER.iter().map(|p| p.label().to_string()))
                .collect(),
        );
        let mut columns = Vec::new();
        for protocol in ProtocolKind::PAPER {
            let series =
                sweep_series_observed(protocol, degree, runs, jobs, FROM_S, TO_S, &mut observer);
            let delays: Vec<Vec<(i64, Option<f64>)>> =
                series.into_iter().map(|s| s.delay).collect();
            columns.push(mean_delay_series(&delays));
            eprintln!("  degree {degree} {protocol} done");
        }
        for i in 0..columns[0].len() {
            let mut row = vec![columns[0][i].0.to_string()];
            for col in &columns {
                row.push(match col[i].1 {
                    Some(ms) => format!("{:.3}", ms * 1e3),
                    None => "-".to_string(),
                });
            }
            table.push_row(row);
        }
        println!("--- degree {degree} (mean delivered-packet delay, ms) ---");
        println!("{}", table.render());
        let path = bench::results_dir().join(format!("fig7_delay_d{degree}.csv"));
        table.write_csv(&path).expect("write CSV");
        println!("wrote {}\n", path.display());
    }
    println!("expected shape: flat baseline before the failure; a post-failure");
    println!("bump (longer transient paths); larger spikes where loops occur.");
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
