//! Extension E4: route-flap damping under a flapping link.
//!
//! The paper's introduction cites Bush/Griffin/Mao and Mao et al.: flap
//! damping suppresses noisy routes but also punishes the path exploration
//! that *normal* convergence produces, extending unavailability after the
//! network has physically stabilized. This experiment flaps one on-path
//! link several times and compares BGP-3 with damping off vs on.

use bench::{point_seed, sweep_args, SweepArgs, SweepObserver};
use bgp::{Bgp, BgpConfig, FlapConfig};
use convergence::experiment::ProtocolFactory;
use convergence::failure::FailurePlan;
use convergence::prelude::*;
use convergence::report::{fmt_f64, Table};
use netsim::time::SimDuration;
use topology::mesh::MeshDegree;

fn bgp3_with_damping() -> ProtocolFactory {
    ProtocolFactory::new(|| {
        Box::new(Bgp::with_config(BgpConfig {
            flap_damping: Some(FlapConfig::aggressive()),
            ..BgpConfig::bgp3()
        }).expect("valid config"))
    })
}

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ext_flap", args);
    println!("Extension E4 — route-flap damping vs a flapping link, {runs} runs/point");
    println!("(BGP-3; 3 flap cycles of 2 s down / 3 s up, then stable)\n");

    let flapping = FailurePlan::FlappingLink {
        cycles: 3,
        down: SimDuration::from_secs(2),
        up: SimDuration::from_secs(3),
    };
    let mut table = Table::new(
        ["degree", "damping", "delivery %", "no-route", "rtconv(s)", "msgs"]
            .map(String::from)
            .to_vec(),
    );
    for degree in [MeshDegree::D4, MeshDegree::D6] {
        for (label, factory) in [
            ("off", None),
            ("rfc2439 (10s half-life)", Some(bgp3_with_damping())),
        ] {
            let sweep_label = format!("BGP-3/d{degree}/damping-{label}");
            let meter = observer.meter(&sweep_label, runs);
            let per_run = par_map_indexed_with(
                runs,
                jobs,
                |i| {
                    let mut cfg =
                        ExperimentConfig::paper(ProtocolKind::Bgp3, degree, point_seed(degree, i));
                    cfg.failure = flapping.clone();
                    cfg.traffic.tail = SimDuration::from_secs(60);
                    cfg.protocol_override = factory.clone();
                    let result = run(&cfg).expect("run succeeds");
                    let telemetry =
                        run_telemetry(i as u64, cfg.seed, 1, ProtocolKind::Bgp3.label(), &result);
                    (summarize_streaming(&result).expect("summary"), telemetry)
                },
                &|i| meter.tick(i),
            );
            let (summaries, rows): (Vec<_>, Vec<_>) = per_run.into_iter().unzip();
            observer.push_rows(&sweep_label, rows);
            let point = convergence::aggregate::aggregate_point(&summaries).expect("nonempty sweep");
            table.push_row(vec![
                degree.to_string(),
                label.to_string(),
                format!("{:.2}", 100.0 * point.delivery_ratio.mean),
                fmt_f64(point.drops_no_route.mean),
                fmt_f64(point.routing_convergence_s.mean),
                fmt_f64(point.control_messages.mean),
            ]);
            eprintln!("  degree {degree} damping {label} done");
        }
    }
    println!("{}", table.render());
    println!("expected: damping cuts update churn but *extends* unavailability —");
    println!("suppressed routes stay unusable after the link stops flapping, so");
    println!("delivery is worse with damping on (the Mao et al. effect).\n");
    let path = bench::results_dir().join("ext_flap.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
