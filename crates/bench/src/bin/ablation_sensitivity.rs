//! Ablation A3 (paper §5 claim): "the exact values of these parameters
//! should have little impact on the results."
//!
//! Sweeps the failure-detection delay, data rate and queue capacity for
//! DBF at degree 4 and checks that the *ratios* (delivery ratio, loop
//! counts) move little while absolute drop counts scale with the rate.

use bench::{sweep_args, sweep_point_observed, SweepArgs, SweepObserver};
use convergence::protocols::ProtocolKind;
use convergence::report::{fmt_f64, Table};
use netsim::time::SimDuration;
use topology::mesh::MeshDegree;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ablation_sensitivity", args);
    println!("Ablation A3 — parameter sensitivity (DBF, degree 4), {runs} runs/point\n");

    let mut table = Table::new(
        ["variant", "delivery ratio", "no-route", "ttl", "rtconv(s)"]
            .map(String::from)
            .to_vec(),
    );
    let mut add = |label: &str, point: convergence::aggregate::PointSummary| {
        table.push_row(vec![
            label.to_string(),
            format!("{:.4}", point.delivery_ratio.mean),
            fmt_f64(point.drops_no_route.mean),
            fmt_f64(point.ttl_expirations.mean),
            fmt_f64(point.routing_convergence_s.mean),
        ]);
    };

    add(
        "baseline (50ms detect, 20pps, q20)",
        sweep_point_observed(ProtocolKind::Dbf, MeshDegree::D4, runs, jobs, &|_| {}, &mut observer),
    );
    for (label, detect_ms) in [("detect 5ms", 5u64), ("detect 500ms", 500)] {
        add(
            label,
            sweep_point_observed(
                ProtocolKind::Dbf,
                MeshDegree::D4,
                runs,
                jobs,
                &|cfg| {
                    cfg.link.detection_delay = SimDuration::from_millis(detect_ms);
                },
                &mut observer,
            ),
        );
    }
    for (label, rate) in [("rate 10pps", 10u64), ("rate 100pps", 100)] {
        add(
            label,
            sweep_point_observed(
                ProtocolKind::Dbf,
                MeshDegree::D4,
                runs,
                jobs,
                &|cfg| {
                    cfg.traffic.rate_pps = rate;
                },
                &mut observer,
            ),
        );
    }
    for (label, cap) in [("queue 5", 5usize), ("queue 100", 100)] {
        add(
            label,
            sweep_point_observed(
                ProtocolKind::Dbf,
                MeshDegree::D4,
                runs,
                jobs,
                &|cfg| {
                    cfg.link.queue_capacity = cap;
                },
                &mut observer,
            ),
        );
    }
    for (label, delay_ms) in [("prop 0.1ms", 1u64), ("prop 10ms", 100)] {
        add(
            label,
            sweep_point_observed(
                ProtocolKind::Dbf,
                MeshDegree::D4,
                runs,
                jobs,
                &|cfg| {
                    cfg.link.propagation_delay = SimDuration::from_micros(delay_ms * 100);
                },
                &mut observer,
            ),
        );
    }
    println!("{}", table.render());
    println!("expected: delivery ratio moves by at most a few percent across the");
    println!("whole sweep (the paper's robustness claim); absolute drops scale");
    println!("with the data rate.\n");
    let path = bench::results_dir().join("ablation_sensitivity.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
