//! Figure 3: packet drops due to no route vs. node degree, for RIP, DBF,
//! BGP and BGP-3, averaged over randomized runs.
//!
//! Paper shape to reproduce: drops fall as the degree rises; at degree ≥ 6
//! DBF/BGP/BGP-3 drop virtually nothing while RIP remains clearly worst.

use bench::{sweep_args, sweep_point_observed, SweepArgs, SweepObserver};
use convergence::protocols::ProtocolKind;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("fig3_drops", args);
    println!("Figure 3 — packet drops (no route) vs node degree, {runs} runs/point\n");

    let mut table = Table::new(
        std::iter::once("degree".to_string())
            .chain(ProtocolKind::PAPER.iter().map(|p| p.label().to_string()))
            .collect(),
    );
    for degree in MeshDegree::ALL {
        let mut row = vec![degree.to_string()];
        for protocol in ProtocolKind::PAPER {
            let point = sweep_point_observed(protocol, degree, runs, jobs, &|_| {}, &mut observer);
            row.push(fmt_f64(point.drops_no_route.mean));
        }
        table.push_row(row);
        eprintln!("  degree {degree} done");
    }
    println!("{}", table.render());
    println!("expected shape: every column falls with degree; RIP stays highest;");
    println!("DBF/BGP/BGP-3 reach ~0 at high degree.\n");

    let path = bench::results_dir().join("fig3_drops.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
