//! Ablation A1 (paper §5.2 note): per-neighbor vs per-(neighbor,
//! destination) MRAI granularity.
//!
//! The paper observes that vendor implementations keep the MRAI per
//! neighbor, which holds back updates about *other* destinations after the
//! first post-failure update, lengthening inconsistency windows — "the
//! results could have been different had the MRAI timer been implemented
//! on a per (neighbor, destination) basis". This binary measures that
//! difference.

use bench::{sweep_args, sweep_point_observed, SweepArgs, SweepObserver};
use bgp::{Bgp, BgpConfig, MraiScope};
use convergence::experiment::ExperimentConfig;
use convergence::protocols::ProtocolKind;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ablation_mrai", args);
    println!("Ablation A1 — MRAI scope (BGP, 30 s mean), {runs} runs/point\n");
    // We cannot switch the scope through ProtocolKind, so runs are driven
    // through a custom protocol hook: ExperimentConfig carries the kind,
    // and the per-pair variant is injected by replacing the experiment's
    // protocol with a custom build through the generic sweep.
    let mut table = Table::new(
        [
            "degree",
            "ttl/neighbor",
            "ttl/pair",
            "rtconv/neighbor(s)",
            "rtconv/pair(s)",
            "msgs/neighbor",
            "msgs/pair",
        ]
        .map(String::from)
        .to_vec(),
    );
    for degree in [MeshDegree::D3, MeshDegree::D4, MeshDegree::D5, MeshDegree::D6] {
        let vendor =
            sweep_point_observed(ProtocolKind::Bgp, degree, runs, jobs, &|_| {}, &mut observer);
        let pair = sweep_point_observed(
            ProtocolKind::Bgp,
            degree,
            runs,
            jobs,
            &|cfg: &mut ExperimentConfig| {
                cfg.protocol_override =
                    Some(convergence::experiment::ProtocolFactory::new(|| {
                        Box::new(Bgp::with_config(BgpConfig {
                            mrai_scope: MraiScope::PerNeighborDestination,
                            ..BgpConfig::standard()
                        }).expect("valid config"))
                    }));
            },
            &mut observer,
        );
        table.push_row(vec![
            degree.to_string(),
            fmt_f64(vendor.ttl_expirations.mean),
            fmt_f64(pair.ttl_expirations.mean),
            fmt_f64(vendor.routing_convergence_s.mean),
            fmt_f64(pair.routing_convergence_s.mean),
            fmt_f64(vendor.control_messages.mean),
            fmt_f64(pair.control_messages.mean),
        ]);
        eprintln!("  degree {degree} done");
    }
    println!("{}", table.render());
    println!("expected: per-pair MRAI shortens loops/convergence at the cost of");
    println!("more update messages.\n");
    let path = bench::results_dir().join("ablation_mrai.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
