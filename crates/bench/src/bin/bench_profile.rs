//! Per-phase time profile of the simulation engine, one row per paper
//! protocol.
//!
//! Runs seeded paper experiments with a *wall-clock* span recorder
//! attached (the same instrumentation the simulator drives with sim time
//! during normal runs) and reports where the time goes: event dispatch,
//! protocol processing, trace recording, and metric folding. Exclusive
//! attribution means the four phases partition the instrumented time —
//! a phase never counts its children.
//!
//! ```text
//! bench_profile [--smoke] [runs] [--jobs N]
//! ```
//!
//! `--smoke` profiles a single degree-4 run per protocol (the CI mode);
//! the default is 5 runs. `--jobs` is accepted for interface uniformity
//! and ignored — attributing wall time requires running alone. Writes
//! `results/bench_profile.json`.

use std::time::Instant;

use bench::point_seed;
use convergence::prelude::*;
use convergence::report::Table;
use obs::span::{
    Recorder, EVENT_DISPATCH, METRIC_FOLDING, PROTOCOL_PROCESSING, TRACE_RECORDING,
};
use topology::mesh::MeshDegree;

const PHASES: [&str; 4] = [
    EVENT_DISPATCH,
    PROTOCOL_PROCESSING,
    TRACE_RECORDING,
    METRIC_FOLDING,
];

struct Profile {
    protocol: &'static str,
    /// (calls, exclusive ns) per entry of [`PHASES`].
    phases: Vec<(u64, u64)>,
}

fn wall_recorder() -> Box<Recorder> {
    let start = Instant::now();
    Box::new(Recorder::external(Box::new(move || {
        u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    })))
}

fn profile_protocol(protocol: ProtocolKind, degree: MeshDegree, runs: usize) -> Profile {
    let mut recorder = wall_recorder();
    for i in 0..runs {
        let cfg = ExperimentConfig::paper(protocol, degree, point_seed(degree, i));
        let (result, returned) = run_observed(&cfg, Some(recorder))
            .unwrap_or_else(|e| panic!("{protocol} run {i} failed: {e}"));
        recorder = returned.expect("recorder returned on success");
        recorder.enter(METRIC_FOLDING);
        let summary = summarize_streaming(&result)
            .unwrap_or_else(|e| panic!("{protocol} run {i}: {e}"));
        recorder.exit();
        assert!(summary.injected > 0, "profiled run injected no packets");
    }
    Profile {
        protocol: protocol.label(),
        phases: PHASES
            .iter()
            .map(|name| (recorder.calls(name), recorder.exclusive_ns(name)))
            .collect(),
    }
}

fn main() {
    let mut runs: usize = 5;
    let mut smoke = false;
    let mut args = std::env::args().skip(1);
    let mut runs_seen = false;
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--progress" {
            // Accepted for uniformity with the sweep binaries; profiling
            // has no sweep to report on.
        } else if arg == "--jobs" {
            let _ = args.next();
        } else if arg.strip_prefix("--jobs=").is_some() {
            // Ignored: see the module docs.
        } else if !runs_seen {
            runs = arg
                .parse()
                .unwrap_or_else(|_| panic!("usage: bench_profile [--smoke] [runs] [--jobs N]"));
            runs_seen = true;
        } else {
            panic!("usage: bench_profile [--smoke] [runs] [--jobs N]");
        }
    }
    if smoke {
        runs = 1;
    }
    let degree = MeshDegree::D4;
    println!("bench_profile — per-phase wall time, {runs} run(s)/protocol at degree {degree}\n");

    let profiles: Vec<Profile> = ProtocolKind::PAPER
        .iter()
        .map(|&p| {
            let profile = profile_protocol(p, degree, runs);
            eprintln!("  {} done", profile.protocol);
            profile
        })
        .collect();

    let mut table = Table::new(
        std::iter::once("protocol".to_string())
            .chain(PHASES.iter().flat_map(|p| {
                [format!("{p} (ms)"), format!("{p} calls")]
            }))
            .collect(),
    );
    for profile in &profiles {
        let mut row = vec![profile.protocol.to_string()];
        for &(calls, ns) in &profile.phases {
            row.push(format!("{:.3}", ns as f64 / 1e6));
            row.push(calls.to_string());
        }
        table.push_row(row);
    }
    println!("{}", table.render());
    println!("phases are exclusive: each row's times partition the instrumented");
    println!("span time without double counting nested phases.\n");

    let entries: Vec<String> = profiles
        .iter()
        .map(|profile| {
            let phases: Vec<String> = PHASES
                .iter()
                .zip(&profile.phases)
                .map(|(name, &(calls, ns))| {
                    format!(
                        "      {{\"name\": \"{name}\", \"calls\": {calls}, \"exclusive_ns\": {ns}}}"
                    )
                })
                .collect();
            format!(
                "    {{\"protocol\": \"{}\", \"phases\": [\n{}\n    ]}}",
                profile.protocol,
                phases.join(",\n")
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"runs_per_protocol\": {runs},\n  \"degree\": \"{degree}\",\n  \"protocols\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::create_dir_all(bench::results_dir()).expect("results dir");
    let path = bench::results_dir().join("bench_profile.json");
    std::fs::write(&path, json).expect("write profile JSON");
    println!("wrote {}", path.display());
}
