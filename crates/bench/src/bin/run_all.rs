//! Regenerates every figure in sequence by invoking the sibling binaries'
//! logic via `cargo run` is unnecessary — this binary simply spawns the
//! same executables from the current target directory.

use std::process::Command;

const FIGURES: [&str; 6] = [
    "fig2_topologies",
    "fig3_drops",
    "fig4_ttl",
    "fig5_throughput",
    "fig6_convergence",
    "fig7_delay",
];

const EXTRAS: [&str; 12] = [
    "ablation_mrai",
    "ablation_split_horizon",
    "ablation_damping",
    "ablation_sensitivity",
    "ablation_holddown",
    "ext_spf",
    "ext_multi",
    "ext_tcp",
    "ext_flap",
    "ext_scale",
    "ext_dual",
    "ext_factors",
];

fn main() {
    let runs = std::env::args().nth(1).unwrap_or_else(|| "100".to_string());
    let everything = std::env::args().nth(2).as_deref() == Some("all");
    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("target dir");
    let mut targets: Vec<&str> = FIGURES.to_vec();
    if everything {
        targets.extend(EXTRAS);
        targets.push("ext_load");
    }
    for target in targets {
        println!("==================== {target} ====================");
        let status = Command::new(dir.join(target))
            .arg(&runs)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {target}: {e}"));
        assert!(status.success(), "{target} failed");
    }
}
