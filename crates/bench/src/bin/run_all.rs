//! Regenerates every figure by spawning the sibling binaries from the
//! current target directory, up to `--jobs N` of them at a time
//! (`JOBS` env var as fallback; default 1).
//!
//! Each child is passed an explicit `--jobs 1` so a `JOBS` environment
//! variable cannot multiply: parallelism is spent across figures here,
//! not again inside each sweep. Child output is buffered and printed
//! whole as each figure finishes, so tables never interleave.
//!
//! Writes `results/manifest.json` recording, per target, whether it
//! succeeded, how long it took, and the aggregate of its per-run
//! telemetry (`results/telemetry/<target>.jsonl`, written by the child).
//! The per-target telemetry streams are concatenated, in canonical
//! target order, into `results/telemetry.jsonl` — deterministic bytes
//! for a fixed seed and runs count, whatever `--jobs` was.

use obs::telemetry::{field_bool, field_u64};
use std::io::Write as _;
use std::process::Command;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

const FIGURES: [&str; 6] = [
    "fig2_topologies",
    "fig3_drops",
    "fig4_ttl",
    "fig5_throughput",
    "fig6_convergence",
    "fig7_delay",
];

const EXTRAS: [&str; 13] = [
    "ablation_mrai",
    "ablation_split_horizon",
    "ablation_damping",
    "ablation_sensitivity",
    "ablation_holddown",
    "ext_spf",
    "ext_multi",
    "ext_tcp",
    "ext_flap",
    "ext_scale",
    "ext_dual",
    "ext_factors",
    "ext_lossy",
];

struct Completed {
    name: &'static str,
    success: bool,
    duration_s: f64,
}

/// Sums a target's `results/telemetry/<name>.jsonl` into the manifest's
/// per-target aggregate, or `None` when the target wrote no telemetry.
fn telemetry_aggregate(name: &str) -> Option<String> {
    let path = bench::results_dir()
        .join("telemetry")
        .join(format!("{name}.jsonl"));
    let text = std::fs::read_to_string(path).ok()?;
    let mut runs = 0u64;
    let mut events = 0u64;
    let mut attempts = 0u64;
    let mut watchdog = 0u64;
    let mut failed = 0u64;
    for line in text.lines() {
        runs += 1;
        events += field_u64(line, "events_processed").unwrap_or(0);
        attempts += field_u64(line, "attempts").unwrap_or(0);
        watchdog += field_u64(line, "watchdog_trips").unwrap_or(0);
        if !field_bool(line, "ok").unwrap_or(true) {
            failed += 1;
        }
    }
    Some(format!(
        "{{\"runs\": {runs}, \"events_processed\": {events}, \
         \"attempts\": {attempts}, \"watchdog_trips\": {watchdog}, \
         \"failed_runs\": {failed}}}"
    ))
}

/// Concatenates the per-target telemetry streams, in canonical target
/// order, into `results/telemetry.jsonl`.
fn merge_telemetry(targets: &[&'static str]) -> std::io::Result<std::path::PathBuf> {
    let mut merged = String::new();
    for target in targets {
        let path = bench::results_dir()
            .join("telemetry")
            .join(format!("{target}.jsonl"));
        if let Ok(text) = std::fs::read_to_string(path) {
            merged.push_str(&text);
        }
    }
    let path = bench::results_dir().join("telemetry.jsonl");
    std::fs::write(&path, merged)?;
    Ok(path)
}

fn main() {
    let mut runs: usize = 100;
    let mut everything = false;
    let mut jobs: usize = std::env::var("JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let mut args = std::env::args().skip(1);
    let mut positionals = 0;
    while let Some(arg) = args.next() {
        if arg == "--jobs" {
            let value = args.next().expect("--jobs needs a value");
            jobs = value.parse().expect("--jobs value must be a number");
        } else if let Some(value) = arg.strip_prefix("--jobs=") {
            jobs = value.parse().expect("--jobs value must be a number");
        } else if arg == "all" {
            everything = true;
        } else if positionals == 0 {
            runs = arg.parse().expect("runs-per-point must be a number");
            positionals += 1;
        } else {
            panic!("usage: run_all [runs-per-point] [all] [--jobs N]");
        }
    }
    let workers = convergence::parallel::effective_jobs(jobs);

    let me = std::env::current_exe().expect("current exe");
    let dir = me.parent().expect("target dir").to_path_buf();
    let mut targets: Vec<&'static str> = FIGURES.to_vec();
    if everything {
        targets.extend(EXTRAS);
        targets.push("ext_load");
    }
    println!(
        "regenerating {} figures, {} runs/point, {} concurrent",
        targets.len(),
        runs,
        workers.min(targets.len())
    );

    let cursor = AtomicUsize::new(0);
    let completed: Mutex<Vec<Completed>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers.min(targets.len()) {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(target) = targets.get(i).copied() else {
                    break;
                };
                let start = Instant::now();
                let output = Command::new(dir.join(target))
                    .arg(runs.to_string())
                    .args(["--jobs", "1"])
                    .output()
                    .unwrap_or_else(|e| panic!("failed to launch {target}: {e}"));
                let duration_s = start.elapsed().as_secs_f64();
                let mut done = completed.lock().expect("results lock");
                println!("==================== {target} ====================");
                std::io::stdout().write_all(&output.stdout).expect("stdout");
                std::io::stderr().write_all(&output.stderr).expect("stderr");
                if !output.status.success() {
                    eprintln!("{target} FAILED ({})", output.status);
                }
                done.push(Completed {
                    name: target,
                    success: output.status.success(),
                    duration_s,
                });
            });
        }
    });

    let mut done = completed.into_inner().expect("results lock");
    // Manifest entries in the canonical target order, not completion order.
    done.sort_by_key(|c| targets.iter().position(|t| *t == c.name));
    let entries: Vec<String> = done
        .iter()
        .map(|c| {
            format!(
                "    {{\"name\": \"{}\", \"status\": \"{}\", \"duration_s\": {:.3}, \"telemetry\": {}}}",
                c.name,
                if c.success { "ok" } else { "failed" },
                c.duration_s,
                telemetry_aggregate(c.name).unwrap_or_else(|| "null".to_string())
            )
        })
        .collect();
    let manifest = format!(
        "{{\n  \"runs_per_point\": {runs},\n  \"jobs\": {workers},\n  \"targets\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = bench::results_dir().join("manifest.json");
    std::fs::create_dir_all(bench::results_dir()).expect("results dir");
    std::fs::write(&path, manifest).expect("write manifest");
    println!("wrote {}", path.display());
    let tpath = merge_telemetry(&targets).expect("write merged telemetry");
    println!("wrote {}", tpath.display());

    let failed: Vec<&str> = done.iter().filter(|c| !c.success).map(|c| c.name).collect();
    assert!(failed.is_empty(), "failed targets: {}", failed.join(", "));
}
