//! Extension E6: the loop-freedom vs availability trade-off.
//!
//! The paper's conclusion argues that loop-prevention schemes like
//! Garcia-Luna-Aceves' DUAL "eliminate routing loops by paying a high cost
//! of delaying routing updates and stopping packet delivery during
//! convergence", while in well-connected networks a plain distance vector
//! simply counts to the next-best path. This experiment puts numbers on
//! that claim: DUAL (zero loops by construction, diffusion freeze) against
//! DBF (instant switch-over, occasional loops) and BGP-3.

use bench::{sweep_args, sweep_point_observed, SweepArgs, SweepObserver};
use convergence::protocols::ProtocolKind;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ext_dual", args);
    println!("Extension E6 — DUAL vs the distance-vector family, {runs} runs/point\n");

    let protocols = [ProtocolKind::Dual, ProtocolKind::Dbf, ProtocolKind::Bgp3];
    let mut table = Table::new(
        ["degree", "protocol", "no-route", "ttl-expired", "looped", "fwdconv(s)", "rtconv(s)"]
            .map(String::from)
            .to_vec(),
    );
    for degree in MeshDegree::ALL {
        for protocol in protocols {
            let point = sweep_point_observed(protocol, degree, runs, jobs, &|_| {}, &mut observer);
            table.push_row(vec![
                degree.to_string(),
                protocol.label().to_string(),
                fmt_f64(point.drops_no_route.mean),
                fmt_f64(point.ttl_expirations.mean),
                fmt_f64(point.looped_packets.mean),
                fmt_f64(point.forwarding_convergence_s.mean),
                fmt_f64(point.routing_convergence_s.mean),
            ]);
        }
        eprintln!("  degree {degree} done");
    }
    println!("{}", table.render());
    println!("expected: DUAL's looped column is exactly zero at every degree,");
    println!("but its no-route drops exceed DBF's in sparse meshes — the");
    println!("diffusion freeze blackholes traffic that DBF would have delivered");
    println!("over a transient (sometimes looping) alternate path.\n");
    let path = bench::results_dir().join("ext_dual.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
