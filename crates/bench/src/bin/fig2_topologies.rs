//! Figure 2: the regular mesh construction at degrees 4, 5 and 6 (plus the
//! rest of the family), rendered as ASCII and summarized structurally.

use convergence::report::Table;
use topology::analysis::{degree_stats, mean_path_length};
use topology::mesh::{Mesh, MeshDegree};
use topology::shortest_path::diameter;

fn main() {
    println!("Figure 2 — link failures in networks with node degree 4, 5 and 6");
    println!("(paper shows 4/5/6; the full family 3..8 is summarized below)\n");

    for degree in [MeshDegree::D4, MeshDegree::D5, MeshDegree::D6] {
        let mesh = Mesh::regular(7, 7, degree);
        println!("--- degree {degree} ({} links) ---", mesh.graph().num_edges());
        println!("{}", mesh.render_ascii());
    }

    let mut table = Table::new(
        ["degree", "links", "interior deg", "mean deg", "diameter", "mean path len"]
            .map(String::from)
            .to_vec(),
    );
    for degree in MeshDegree::ALL {
        let mesh = Mesh::regular(7, 7, degree);
        let stats = degree_stats(mesh.graph()).expect("mesh is nonempty");
        table.push_row(vec![
            degree.to_string(),
            mesh.graph().num_edges().to_string(),
            degree.as_u32().to_string(),
            format!("{:.2}", stats.mean),
            diameter(mesh.graph()).unwrap().to_string(),
            format!("{:.2}", mean_path_length(mesh.graph()).unwrap()),
        ]);
    }
    println!("{}", table.render());
    let path = bench::results_dir().join("fig2_topologies.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
}
