//! Performance harness: times one fixed sweep three ways and records the
//! numbers in `BENCH_sweep.json` at the repository root.
//!
//! The workload is the paper's DBF degree-4 point (DBF produces the
//! richest event traces — transient loops, TTL drops, update storms).
//! Three legs run the identical seeded work:
//!
//! 1. sequential, trace-based metrics (the pre-optimization baseline),
//! 2. parallel (`--jobs`, default 4), trace-based metrics,
//! 3. parallel, streaming metrics (traces folded and discarded).
//!
//! The harness asserts that all three legs agree — byte-identical CSV
//! for 1 vs 2, identical `RunSummary` values for 1 vs 3 — so every
//! recorded speedup is for *verified-equivalent* output. Events/sec
//! comes from the simulator's own processed-event counter; peak RSS is
//! the `VmHWM` line of `/proc/self/status` (a whole-process high-water
//! mark, so leg order matters: the trace legs run first, and streaming
//! memory wins show up as the absence of further growth).

use std::time::Instant;

use bench::{point_seed, sweep_args};
use convergence::aggregate::aggregate_point;
use convergence::metrics::streaming::summarize_streaming;
use convergence::metrics::summary::{summarize, RunSummary};
use convergence::parallel::par_map_indexed;
use convergence::prelude::*;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

const PROTOCOL: ProtocolKind = ProtocolKind::Dbf;
const DEGREE: MeshDegree = MeshDegree::D4;

fn run_one(i: usize) -> RunResult {
    let cfg = ExperimentConfig::paper(PROTOCOL, DEGREE, point_seed(DEGREE, i));
    run(&cfg).unwrap_or_else(|e| panic!("run {i} failed: {e}"))
}

/// Renders the sweep's aggregate exactly the way a figure binary would,
/// so CSV comparison exercises the full float-formatting path.
fn point_csv(summaries: &[RunSummary]) -> String {
    let point = aggregate_point(summaries).expect("nonempty sweep");
    let mut table = Table::new(
        ["protocol", "degree", "delivery %", "no-route", "ttl", "fwdconv(s)", "rtconv(s)"]
            .map(String::from)
            .to_vec(),
    );
    table.push_row(vec![
        PROTOCOL.to_string(),
        DEGREE.to_string(),
        format!("{:.4}", 100.0 * point.delivery_ratio.mean),
        fmt_f64(point.drops_no_route.mean),
        fmt_f64(point.ttl_expirations.mean),
        fmt_f64(point.forwarding_convergence_s.mean),
        fmt_f64(point.routing_convergence_s.mean),
    ]);
    table.to_csv()
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`), or
/// `None` off Linux.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args = sweep_args();
    let runs = args.runs;
    // The point of the harness is to measure parallelism, so `--jobs`
    // below 2 still benchmarks a multi-worker leg.
    let jobs = convergence::parallel::effective_jobs(args.jobs).max(4);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    // Honesty: more workers than cores cannot speed anything up, so the
    // recorded speedups are judged against the parallelism the machine can
    // actually deliver.
    let jobs_effective = jobs.min(cores);
    println!(
        "bench_sweep: {PROTOCOL} {DEGREE}, {runs} runs, {jobs} jobs \
         ({cores} cores, {jobs_effective} effective)"
    );

    // Leg 1: sequential, trace-based (the baseline all else must match).
    let t0 = Instant::now();
    let mut events_total = 0u64;
    let mut seq_summaries = Vec::with_capacity(runs);
    for i in 0..runs {
        let result = run_one(i);
        events_total += result.stats.events_processed;
        seq_summaries.push(summarize(&result).expect("summary"));
    }
    let sequential_s = t0.elapsed().as_secs_f64();
    let seq_csv = point_csv(&seq_summaries);
    println!("  sequential/trace   {sequential_s:.3}s");

    // Leg 2: parallel, trace-based. Must reproduce the CSV byte for byte.
    let t0 = Instant::now();
    let par_summaries = par_map_indexed(runs, jobs, |i| summarize(&run_one(i)).expect("summary"));
    let parallel_s = t0.elapsed().as_secs_f64();
    let par_csv = point_csv(&par_summaries);
    assert_eq!(seq_csv, par_csv, "parallel sweep changed the CSV bytes");
    println!("  parallel/trace     {parallel_s:.3}s");

    // Leg 3: parallel, streaming fold. Must reproduce every RunSummary.
    let t0 = Instant::now();
    let stream_summaries = par_map_indexed(runs, jobs, |i| summarize_streaming(&run_one(i)).expect("summary"));
    let streaming_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        seq_summaries, stream_summaries,
        "streaming fold changed a RunSummary"
    );
    println!("  parallel/streaming {streaming_s:.3}s");

    let rss = peak_rss_kb();
    let par_speedup = sequential_s / parallel_s;
    let str_speedup = sequential_s / streaming_s;
    // A "parallel" leg slower than the sequential baseline is a red flag
    // (oversubscription, tiny workload, or a scheduling regression); make
    // it impossible to miss in the recorded JSON.
    let regressed = par_speedup < 1.0 || str_speedup < 1.0;
    if regressed {
        eprintln!(
            "warning: parallel speedup below 1.0 \
             (trace {par_speedup:.3}, streaming {str_speedup:.3})"
        );
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": {{\"protocol\": \"{protocol}\", \"degree\": \"{degree}\", \"runs\": {runs}}},\n",
            "  \"jobs\": {jobs},\n",
            "  \"available_cores\": {cores},\n",
            "  \"jobs_effective\": {jobs_effective},\n",
            "  \"speedup_below_one\": {regressed},\n",
            "  \"events_processed_total\": {events},\n",
            "  \"sequential_trace\": {{\"seconds\": {seq}, \"events_per_sec\": {seq_eps}, \"runs_per_sec\": {seq_rps}}},\n",
            "  \"parallel_trace\": {{\"seconds\": {par}, \"events_per_sec\": {par_eps}, \"runs_per_sec\": {par_rps}, \"speedup\": {par_speedup}}},\n",
            "  \"parallel_streaming\": {{\"seconds\": {str}, \"events_per_sec\": {str_eps}, \"runs_per_sec\": {str_rps}, \"speedup\": {str_speedup}}},\n",
            "  \"csv_bytes_identical\": true,\n",
            "  \"streaming_summaries_identical\": true,\n",
            "  \"peak_rss_kb\": {rss}\n",
            "}}\n"
        ),
        protocol = PROTOCOL,
        degree = DEGREE,
        runs = runs,
        jobs = jobs,
        cores = cores,
        jobs_effective = jobs_effective,
        regressed = regressed,
        events = events_total,
        seq = json_f64(sequential_s),
        seq_eps = json_f64(events_total as f64 / sequential_s),
        seq_rps = json_f64(runs as f64 / sequential_s),
        par = json_f64(parallel_s),
        par_eps = json_f64(events_total as f64 / parallel_s),
        par_rps = json_f64(runs as f64 / parallel_s),
        par_speedup = json_f64(par_speedup),
        str = json_f64(streaming_s),
        str_eps = json_f64(events_total as f64 / streaming_s),
        str_rps = json_f64(runs as f64 / streaming_s),
        str_speedup = json_f64(str_speedup),
        rss = rss.map_or("null".to_string(), |kb| kb.to_string()),
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("wrote BENCH_sweep.json");
    print!("{json}");
}
