//! Ablation A4: triggered-update damping semantics.
//!
//! RFC 2453 sends the first triggered update immediately
//! (`FirstImmediate`, the study default, matching the paper's §5.2
//! "failure information can propagate along the path in a few
//! milliseconds" and RIP's zero TTL expirations). `DelayedFlush` delays
//! every update by a fresh 1–5 s draw; this ablation shows that doing so
//! slows the poison wave enough to give even RIP transient loops —
//! contradicting the paper's Observation 2 and thereby justifying the
//! default.

use bench::{sweep_args, sweep_point_observed, SweepArgs, SweepObserver};
use convergence::experiment::ProtocolFactory;
use convergence::protocols::ProtocolKind;
use convergence::report::{fmt_f64, Table};
use routing_core::damping::DampingMode;
use topology::mesh::MeshDegree;

fn with_mode(kind: ProtocolKind, mode: DampingMode) -> ProtocolFactory {
    match kind {
        ProtocolKind::Rip => ProtocolFactory::new(move || {
            Box::new(rip::Rip::with_config(rip::RipConfig {
                damping_mode: mode,
                ..rip::RipConfig::default()
            }).expect("valid config"))
        }),
        ProtocolKind::Dbf => ProtocolFactory::new(move || {
            Box::new(dbf::Dbf::with_config(dbf::DbfConfig {
                damping_mode: mode,
                ..dbf::DbfConfig::default()
            }).expect("valid config"))
        }),
        other => panic!("damping ablation only applies to RIP/DBF, not {other}"),
    }
}

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ablation_damping", args);
    println!("Ablation A4 — triggered-update damping semantics, {runs} runs/point\n");

    let mut table = Table::new(
        ["protocol", "degree", "mode", "no-route", "ttl-expired", "fwdconv(s)"]
            .map(String::from)
            .to_vec(),
    );
    for kind in [ProtocolKind::Rip, ProtocolKind::Dbf] {
        for degree in [MeshDegree::D3, MeshDegree::D4, MeshDegree::D5] {
            for (label, mode) in [
                ("first-immediate", DampingMode::FirstImmediate),
                ("delayed-flush", DampingMode::DelayedFlush),
            ] {
                let point = sweep_point_observed(
                    kind,
                    degree,
                    runs,
                    jobs,
                    &|cfg| {
                        cfg.protocol_override = Some(with_mode(kind, mode));
                    },
                    &mut observer,
                );
                table.push_row(vec![
                    kind.label().to_string(),
                    degree.to_string(),
                    label.to_string(),
                    fmt_f64(point.drops_no_route.mean),
                    fmt_f64(point.ttl_expirations.mean),
                    fmt_f64(point.forwarding_convergence_s.mean),
                ]);
            }
            eprintln!("  {kind} degree {degree} done");
        }
    }
    println!("{}", table.render());
    println!("expected: delayed-flush inflates drops AND gives RIP nonzero TTL");
    println!("expirations — the paper observed zero, supporting first-immediate.\n");
    let path = bench::results_dir().join("ablation_damping.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
