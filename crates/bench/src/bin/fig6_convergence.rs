//! Figure 6: (a) forwarding-path convergence time and (b) network routing
//! convergence time vs. node degree.
//!
//! Paper shape to reproduce: BGP-3 converges far faster than BGP at every
//! degree (the MRAI dominates); forwarding-path convergence is much
//! shorter than network-wide routing convergence; yet at degree ≥ 6 the
//! packet-drop difference between BGP and BGP-3 is negligible — fast
//! convergence is not the same thing as good packet delivery.

use bench::{sweep_args, sweep_point_observed, SweepArgs, SweepObserver};
use convergence::protocols::ProtocolKind;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("fig6_convergence", args);
    println!("Figure 6 — convergence times vs node degree, {runs} runs/point\n");

    let headers: Vec<String> = std::iter::once("degree".to_string())
        .chain(ProtocolKind::PAPER.iter().map(|p| p.label().to_string()))
        .collect();
    let mut fwd = Table::new(headers.clone());
    let mut rt = Table::new(headers);
    for degree in MeshDegree::ALL {
        let mut fwd_row = vec![degree.to_string()];
        let mut rt_row = vec![degree.to_string()];
        for protocol in ProtocolKind::PAPER {
            let point = sweep_point_observed(protocol, degree, runs, jobs, &|_| {}, &mut observer);
            fwd_row.push(fmt_f64(point.forwarding_convergence_s.mean));
            rt_row.push(fmt_f64(point.routing_convergence_s.mean));
        }
        fwd.push_row(fwd_row);
        rt.push_row(rt_row);
        eprintln!("  degree {degree} done");
    }
    println!("(a) forwarding-path convergence time (s):");
    println!("{}", fwd.render());
    println!("(b) network routing convergence time (s):");
    println!("{}", rt.render());
    println!("expected shape: BGP >> BGP-3 in both; (a) falls to ~0 faster than (b);");
    println!("RIP's (b) stays on the periodic-update timescale.\n");

    fwd.write_csv(bench::results_dir().join("fig6a_forwarding_convergence.csv"))
        .expect("write CSV");
    rt.write_csv(bench::results_dir().join("fig6b_routing_convergence.csv"))
        .expect("write CSV");
    println!(
        "wrote {} and {}",
        bench::results_dir()
            .join("fig6a_forwarding_convergence.csv")
            .display(),
        bench::results_dir()
            .join("fig6b_routing_convergence.csv")
            .display()
    );
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
