//! Extension E5 (paper §6 future work): larger network sizes.
//!
//! Repeats the single-failure experiment on meshes from the paper's 7×7
//! up to 15×15, checking whether the delivery conclusions survive scale
//! (longer paths, more destinations per update, longer convergence
//! chains).
//!
//! Degree 8 keeps every pair inside the distance-vector metric horizon:
//! RIP/DBF saturate at 16 hops (RFC 2453's design diameter), so a
//! degree-4 13×13 grid — diameter 24 — would leave far corners
//! legitimately unreachable. With both diagonals the 15×15 diameter is
//! 14 hops.

use bench::{sweep_args, SweepArgs, SweepObserver, BASE_SEED};
use convergence::experiment::TopologySpec;
use convergence::prelude::*;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ext_scale", args);
    let runs = runs.min(30);
    println!("Extension E5 — mesh size scaling (degree 8), {runs} runs/point\n");

    let mut table = Table::new(
        ["mesh", "nodes", "protocol", "delivery %", "no-route", "fwdconv(s)", "rtconv(s)"]
            .map(String::from)
            .to_vec(),
    );
    for size in [7usize, 10, 13, 15] {
        for protocol in [ProtocolKind::Rip, ProtocolKind::Dbf, ProtocolKind::Bgp3] {
            let sweep_label = format!("{}/mesh-{size}x{size}", protocol.label());
            let meter = observer.meter(&sweep_label, runs);
            let per_run = par_map_indexed_with(
                runs,
                jobs,
                |i| {
                    let mut cfg = ExperimentConfig::paper(
                        protocol,
                        MeshDegree::D8,
                        BASE_SEED + size as u64 * 1000 + i as u64,
                    );
                    cfg.topology = TopologySpec::Mesh {
                        rows: size,
                        cols: size,
                        degree: MeshDegree::D8,
                    };
                    let result = run(&cfg).expect("run succeeds");
                    let telemetry =
                        run_telemetry(i as u64, cfg.seed, 1, protocol.label(), &result);
                    (summarize_streaming(&result).expect("summary"), telemetry)
                },
                &|i| meter.tick(i),
            );
            let (summaries, rows): (Vec<_>, Vec<_>) = per_run.into_iter().unzip();
            observer.push_rows(&sweep_label, rows);
            let point = convergence::aggregate::aggregate_point(&summaries).expect("nonempty sweep");
            table.push_row(vec![
                format!("{size}x{size}"),
                (size * size).to_string(),
                protocol.label().to_string(),
                format!("{:.2}", 100.0 * point.delivery_ratio.mean),
                fmt_f64(point.drops_no_route.mean),
                fmt_f64(point.forwarding_convergence_s.mean),
                fmt_f64(point.routing_convergence_s.mean),
            ]);
            eprintln!("  {size}x{size} {protocol} done");
        }
    }
    println!("{}", table.render());
    println!("expected: the protocol ordering (RIP worst, DBF/BGP-3 near-full");
    println!("delivery) is scale-invariant; absolute convergence times grow");
    println!("with the path lengths.\n");
    let path = bench::results_dir().join("ext_scale.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
