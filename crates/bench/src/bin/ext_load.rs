//! Extension E8: convergence under data-plane congestion.
//!
//! The paper's 20 pkt/s flow leaves link queues empty, so routing messages
//! never wait behind data. Real networks converge *while loaded*: control
//! and data share the same drop-tail queues, so congestion can delay — or
//! drop — the very updates that would end the congestion. This experiment
//! raises the offered load toward link capacity and watches what happens
//! to convergence, separately for a datagram-signaled protocol (DBF, whose
//! updates can be lost) and a reliably-signaled one (BGP-3, immune to
//! queue drops by its TCP-like session).

use bench::{point_seed, sweep_args, SweepArgs, SweepObserver};
use convergence::prelude::*;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ext_load", args);
    let runs = runs.min(30);
    println!("Extension E8 — convergence under load (degree 4), {runs} runs/point");
    println!("(10 Mb/s links carry ~1250 x 1000B pkt/s; 5 flows share the mesh)\n");

    let mut table = Table::new(
        [
            "rate/flow (pps)",
            "protocol",
            "delivery %",
            "no-route",
            "queue drops",
            "ctrl lost",
            "rtconv(s)",
        ]
        .map(String::from)
        .to_vec(),
    );
    for rate in [20u64, 200, 400] {
        for protocol in [ProtocolKind::Dbf, ProtocolKind::Bgp3] {
            let sweep_label = format!("{}/d4/rate-{rate}", protocol.label());
            let meter = observer.meter(&sweep_label, runs);
            let per_run = par_map_indexed_with(
                runs,
                jobs,
                |i| {
                    let mut cfg = ExperimentConfig::paper(
                        protocol,
                        MeshDegree::D4,
                        point_seed(MeshDegree::D4, i),
                    );
                    cfg.traffic.rate_pps = rate;
                    cfg.traffic.flows = 5;
                    let result = run(&cfg).expect("run succeeds");
                    let telemetry =
                        run_telemetry(i as u64, cfg.seed, 1, protocol.label(), &result);
                    let lost = result.stats.control_messages_lost;
                    (summarize_streaming(&result).expect("summary"), lost, telemetry)
                },
                &|i| meter.tick(i),
            );
            let ctrl_lost: u64 = per_run.iter().map(|(_, lost, _)| lost).sum();
            let mut summaries = Vec::with_capacity(per_run.len());
            let mut rows = Vec::with_capacity(per_run.len());
            for (summary, _, telemetry) in per_run {
                summaries.push(summary);
                rows.push(telemetry);
            }
            observer.push_rows(&sweep_label, rows);
            let point = convergence::aggregate::aggregate_point(&summaries).expect("nonempty sweep");
            let queue_drops: f64 = summaries
                .iter()
                .map(|s| s.drops.queue_overflow as f64)
                .sum::<f64>()
                / summaries.len() as f64;
            table.push_row(vec![
                rate.to_string(),
                protocol.label().to_string(),
                format!("{:.2}", 100.0 * point.delivery_ratio.mean),
                fmt_f64(point.drops_no_route.mean),
                fmt_f64(queue_drops),
                fmt_f64(ctrl_lost as f64 / runs as f64),
                fmt_f64(point.routing_convergence_s.mean),
            ]);
            eprintln!("  rate {rate} {protocol} done");
        }
    }
    println!("{}", table.render());
    println!("expected: as shared queues fill, datagram-signaled DBF starts losing");
    println!("updates (ctrl lost > 0) and its convergence/drops degrade, while");
    println!("BGP-3's reliable session keeps signaling intact at the same load.\n");
    let path = bench::results_dir().join("ext_load.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
