//! Extension E1 (paper §6 future work): add a link-state protocol to the
//! comparison.
//!
//! SPF floods the topology change and recomputes Dijkstra everywhere, so
//! its convergence is bounded by flooding + SPF hold-down rather than by
//! distance-vector exploration — the hypothesis the paper's future-work
//! section wants tested.

use bench::{sweep_args, sweep_point_observed, SweepArgs, SweepObserver};
use convergence::protocols::ProtocolKind;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ext_spf", args);
    println!("Extension E1 — SPF and DUAL vs the paper's family, {runs} runs/point\n");

    let mut table = Table::new(
        ["degree", "metric", "RIP", "DBF", "BGP", "BGP-3", "SPF", "DUAL"]
            .map(String::from)
            .to_vec(),
    );
    for degree in [MeshDegree::D3, MeshDegree::D4, MeshDegree::D6] {
        let points: Vec<_> = ProtocolKind::ALL
            .iter()
            .map(|&p| sweep_point_observed(p, degree, runs, jobs, &|_| {}, &mut observer))
            .collect();
        let mut row = |metric: &str, f: &dyn Fn(&convergence::aggregate::PointSummary) -> f64| {
            table.push_row(
                std::iter::once(degree.to_string())
                    .chain(std::iter::once(metric.to_string()))
                    .chain(points.iter().map(|p| fmt_f64(f(p))))
                    .collect(),
            );
        };
        row("no-route drops", &|p| p.drops_no_route.mean);
        row("ttl expirations", &|p| p.ttl_expirations.mean);
        row("rt convergence (s)", &|p| p.routing_convergence_s.mean);
        row("control msgs", &|p| p.control_messages.mean);
        eprintln!("  degree {degree} done");
    }
    println!("{}", table.render());
    println!("expected: SPF converges in well under a second at every degree and");
    println!("drops only the packets in flight during the detection window.\n");
    let path = bench::results_dir().join("ext_spf.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
