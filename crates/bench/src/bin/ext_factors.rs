//! Extension E7: the paper's §4 design factors, measured directly.
//!
//! §4 identifies three factors governing delivery during convergence:
//! (1) the *path switch-over period* — how long a router has no next hop;
//! (2) the probability the chosen alternate is *valid*; (3) the failure-
//! information propagation time. Figures 3–7 observe their consequences;
//! this table measures the factors themselves: the longest no-route window
//! anywhere for the flow's destination, and the mean path stretch of
//! delivered packets (valid-but-suboptimal alternates show up as stretch
//! just above 1).

use bench::{sweep_args, sweep_point_observed, SweepArgs, SweepObserver};
use convergence::protocols::ProtocolKind;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ext_factors", args);
    println!("Extension E7 — §4 factors: switch-over windows and path stretch, {runs} runs/point\n");

    let mut table = Table::new(
        ["degree", "protocol", "max switch-over (s)", "mean stretch", "transient paths"]
            .map(String::from)
            .to_vec(),
    );
    for degree in [MeshDegree::D3, MeshDegree::D4, MeshDegree::D6] {
        for protocol in ProtocolKind::PAPER {
            let point = sweep_point_observed(protocol, degree, runs, jobs, &|_| {}, &mut observer);
            table.push_row(vec![
                degree.to_string(),
                protocol.label().to_string(),
                fmt_f64(point.max_switchover_s.mean),
                format!("{:.4}", point.mean_stretch.mean),
                fmt_f64(point.transient_paths.mean),
            ]);
        }
        eprintln!("  degree {degree} done");
    }
    println!("{}", table.render());
    println!("expected (§4.1): RIP's switch-over window dwarfs the others at every");
    println!("degree — it keeps no alternate-path state; DBF/BGP windows shrink to");
    println!("~0 as connectivity supplies instantly-valid alternates. Stretch just");
    println!("above 1 marks valid-but-suboptimal transient paths (§4.2).\n");
    let path = bench::results_dir().join("ext_factors.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
