//! Extension E2 (paper §6 future work): multiple sender/receiver pairs,
//! multiple simultaneous link failures, and whole-router failures.

use bench::{sweep_args, sweep_point_observed, SweepArgs, SweepObserver};
use convergence::failure::FailurePlan;
use convergence::protocols::ProtocolKind;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

type Customizer = Box<dyn Fn(&mut convergence::experiment::ExperimentConfig) + Sync>;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ext_multi", args);
    println!("Extension E2 — multiple flows / failures, {runs} runs/point\n");

    let protocols = [ProtocolKind::Dbf, ProtocolKind::Bgp3];
    let mut table = Table::new(
        ["scenario", "degree", "protocol", "delivery", "no-route", "ttl", "rtconv(s)"]
            .map(String::from)
            .to_vec(),
    );
    for degree in [MeshDegree::D4, MeshDegree::D6] {
        for protocol in protocols {
            let scenarios: [(&str, Customizer); 4] = [
                ("baseline", Box::new(|_| {})),
                (
                    "5 flows",
                    Box::new(|cfg| {
                        cfg.traffic.flows = 5;
                    }),
                ),
                (
                    "2 link failures",
                    Box::new(|cfg| {
                        cfg.failure = FailurePlan::MultipleLinks { count: 2 };
                    }),
                ),
                (
                    "router failure",
                    Box::new(|cfg| {
                        cfg.failure = FailurePlan::NodeOnPath;
                    }),
                ),
            ];
            for (label, customize) in &scenarios {
                let point = sweep_point_observed(
                    protocol,
                    degree,
                    runs,
                    jobs,
                    customize.as_ref(),
                    &mut observer,
                );
                table.push_row(vec![
                    (*label).to_string(),
                    degree.to_string(),
                    protocol.label().to_string(),
                    format!("{:.4}", point.delivery_ratio.mean),
                    fmt_f64(point.drops_no_route.mean),
                    fmt_f64(point.ttl_expirations.mean),
                    fmt_f64(point.routing_convergence_s.mean),
                ]);
            }
            eprintln!("  degree {degree} {protocol} done");
        }
    }
    println!("{}", table.render());
    println!("expected: richer connectivity keeps delivery high even under");
    println!("compound failures; a router failure hurts more than any one link.\n");
    let path = bench::results_dir().join("ext_multi.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
