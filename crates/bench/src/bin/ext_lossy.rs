//! Extension E9: routing convergence when links are *lossy* instead of
//! merely cut.
//!
//! The paper's failure model is binary: a link is up or down. Real
//! outages often start as degradation — a flapping optical or congested
//! interface that drops a fraction of frames long before (or without
//! ever) going down. This experiment repeats the paper's single-link
//! failure while every link additionally drops a fixed fraction of all
//! frames, and asks how each protocol's convergence machinery copes:
//! RIP/DBF updates ride datagrams and simply vanish, while BGP's
//! TCP-style sessions turn loss into retransmission delay.
//!
//! Runs execute through the hardened sweep harness: a seed whose random
//! draw yields no usable scenario is retried with a derived reseed, and
//! anything unsalvageable is reported, not panicked over.

use bench::{point_seed, sweep_args, SweepArgs, SweepObserver};
use convergence::aggregate::{aggregate_point, RetryPolicy, SweepMode, SweepOptions};
use convergence::prelude::*;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ext_lossy", args);
    println!("Extension E9 — convergence under lossy links, {runs} runs/point");
    println!("(paper single-link failure at degree 4, plus uniform frame loss)\n");

    let mut table = Table::new(
        [
            "loss %",
            "protocol",
            "delivery %",
            "impaired",
            "no-route",
            "rtconv(s)",
            "ctl-rexmit",
            "failed runs",
        ]
        .map(String::from)
        .to_vec(),
    );
    let degree = MeshDegree::D4;
    for loss in [0.0, 0.05, 0.10, 0.20] {
        for protocol in [ProtocolKind::Rip, ProtocolKind::Dbf, ProtocolKind::Bgp3] {
            let mut cfg = ExperimentConfig::paper(protocol, degree, 0);
            if loss > 0.0 {
                cfg.link.impairment = Impairment::lossy(loss);
            }
            let options = SweepOptions {
                jobs,
                retry: RetryPolicy::default(),
                mode: SweepMode::Trace,
            };
            let mut outcome = run_sweep_with(&cfg, runs, point_seed(degree, 0), options);
            for failure in &outcome.failed {
                eprintln!(
                    "  seed {} failed after {} attempts: {}",
                    failure.seed, failure.attempts, failure.error
                );
            }
            let retransmits = outcome
                .completed
                .iter()
                .filter_map(|c| c.result.as_ref())
                .map(|r| r.stats.control_retransmits)
                .sum::<u64>() as f64
                / outcome.completed.len().max(1) as f64;
            let point = aggregate_point(&outcome.summaries()).expect("nonempty sweep");
            table.push_row(vec![
                format!("{:.0}", loss * 100.0),
                protocol.to_string(),
                format!("{:.2}", 100.0 * point.delivery_ratio.mean),
                fmt_f64(
                    outcome
                        .summaries()
                        .iter()
                        .map(|s| s.drops.impaired as f64)
                        .sum::<f64>()
                        / outcome.completed.len().max(1) as f64,
                ),
                fmt_f64(point.drops_no_route.mean),
                fmt_f64(point.routing_convergence_s.mean),
                fmt_f64(retransmits),
                outcome.failed.len().to_string(),
            ]);
            let sweep_label = format!("{}/d{degree}/loss-{:.0}", protocol.label(), loss * 100.0);
            observer.push_rows(&sweep_label, std::mem::take(&mut outcome.telemetry));
            eprintln!("  loss {:.0}% {protocol} done", loss * 100.0);
        }
    }
    println!("{}", table.render());
    println!("expected: delivery falls with per-hop loss for every protocol, but");
    println!("convergence degrades unevenly — RIP/DBF lose updates outright and");
    println!("lean on periodic refresh, while BGP-3 converges at nearly the clean");
    println!("pace at the cost of control retransmissions.\n");
    let path = bench::results_dir().join("ext_lossy.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
