//! Ablation A5: the classic hold-down timer (paper §2's family of
//! "achieve loop-free routing through delaying routing update
//! propagation").
//!
//! With hold-down, a router that loses a route refuses all news about the
//! destination for a fixed window — trading availability for stability.
//! RIP is already nearly loop-free via fast poison; hold-down's remaining
//! effect should be almost purely additional packet loss.

use bench::{sweep_args, sweep_point_observed, SweepArgs, SweepObserver};
use convergence::experiment::ProtocolFactory;
use convergence::protocols::ProtocolKind;
use convergence::report::{fmt_f64, Table};
use netsim::time::SimDuration;
use rip::{Rip, RipConfig};
use topology::mesh::MeshDegree;

fn rip_with_holddown(secs: u64) -> ProtocolFactory {
    ProtocolFactory::new(move || {
        Box::new(Rip::with_config(RipConfig {
            hold_down: Some(SimDuration::from_secs(secs)),
            ..RipConfig::default()
        }).expect("valid config"))
    })
}

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ablation_holddown", args);
    println!("Ablation A5 — RIP hold-down timer, {runs} runs/point\n");

    let mut table = Table::new(
        ["degree", "hold-down", "no-route", "ttl-expired", "fwdconv(s)", "rtconv(s)"]
            .map(String::from)
            .to_vec(),
    );
    for degree in [MeshDegree::D3, MeshDegree::D4, MeshDegree::D6] {
        for (label, factory) in [
            ("off", None),
            ("15 s", Some(rip_with_holddown(15))),
            ("60 s", Some(rip_with_holddown(60))),
        ] {
            let point = sweep_point_observed(
                ProtocolKind::Rip,
                degree,
                runs,
                jobs,
                &|cfg| {
                    cfg.protocol_override = factory.clone();
                },
                &mut observer,
            );
            table.push_row(vec![
                degree.to_string(),
                label.to_string(),
                fmt_f64(point.drops_no_route.mean),
                fmt_f64(point.ttl_expirations.mean),
                fmt_f64(point.forwarding_convergence_s.mean),
                fmt_f64(point.routing_convergence_s.mean),
            ]);
        }
        eprintln!("  degree {degree} done");
    }
    println!("{}", table.render());
    println!("expected: hold-down adds its full window to the outage (drops grow");
    println!("roughly by window x rate) while buying nothing — RIP's poison wave");
    println!("already prevents the loops hold-down was invented for.\n");
    let path = bench::results_dir().join("ablation_holddown.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
