//! Hot-path micro-harness: events/sec plus the allocation-sharing
//! counters introduced by the memory overhaul, recorded in
//! `BENCH_hotpath.json` at the repository root.
//!
//! Two legs, both fully seeded and deterministic in everything but the
//! wall clock:
//!
//! 1. **DBF timing leg** — the paper's DBF degree-4 point (the richest
//!    event mix: update storms, transient loops, TTL drops), timed one
//!    run at a time. Reports per-run events/sec (median/min/max), total
//!    events, and how many control sends shared an already-queued
//!    payload allocation (`Arc` fan-out instead of a per-link clone).
//! 2. **Fan-out leg** — one seeded paper run each for the protocols
//!    whose control traffic is neighbor-independent (SPF flooding, DUAL
//!    queries/replies, RIP requests), reporting how many sends shared a
//!    payload. DBF and BGP are structurally absent here: split horizon
//!    and per-peer update filtering make every one of their payloads
//!    neighbor-specific, so their share count is legitimately zero.
//! 3. **BGP interner leg** — a hand-built degree-4 mesh running plain
//!    BGP through convergence, a link failure, and reconvergence; the
//!    per-node [`PathInterner`](routing_core::PathInterner) hit/miss
//!    counters are read back through the simulator's protocol
//!    inspection hook and summed.
//!
//! ```text
//! bench_hotpath [--smoke] [runs] [--jobs N]
//! ```
//!
//! `--smoke` is the CI mode (3 timing runs); the default is 30.
//! `--jobs` is accepted for interface uniformity and ignored — timing
//! runs alone. When `results/bench_hotpath_baseline.json` exists, the
//! measured median is compared against its `events_per_sec_median`
//! and the process exits nonzero on a >20% regression.

use std::time::Instant;

use bench::point_seed;
use bgp::Bgp;
use convergence::prelude::*;
use netsim::ident::NodeId;
use netsim::time::SimTime;
use topology::instantiate::to_simulator_builder;
use topology::mesh::MeshDegree;

const DEGREE: MeshDegree = MeshDegree::D4;

/// How far past a 20%-slower-than-baseline median the harness tolerates
/// before failing (the CI regression gate).
const REGRESSION_FLOOR: f64 = 0.8;

struct TimingLeg {
    events_total: u64,
    elapsed_ns_total: u64,
    events_per_sec: Vec<f64>,
    payloads_shared: u64,
    messages_sent: u64,
}

/// Times `runs` seeded DBF degree-4 paper experiments one at a time.
fn dbf_timing_leg(runs: usize) -> TimingLeg {
    let mut leg = TimingLeg {
        events_total: 0,
        elapsed_ns_total: 0,
        events_per_sec: Vec::with_capacity(runs),
        payloads_shared: 0,
        messages_sent: 0,
    };
    for i in 0..runs {
        let cfg = ExperimentConfig::paper(ProtocolKind::Dbf, DEGREE, point_seed(DEGREE, i));
        let start = Instant::now();
        let result = run(&cfg).unwrap_or_else(|e| panic!("DBF run {i} failed: {e}"));
        let elapsed_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let events = result.stats.events_processed;
        leg.events_total += events;
        leg.elapsed_ns_total += elapsed_ns;
        leg.events_per_sec
            .push(events as f64 / (elapsed_ns.max(1) as f64 / 1e9));
        leg.payloads_shared += result.stats.control_payloads_shared;
        leg.messages_sent += result.stats.control_messages_sent;
    }
    leg
}

struct FanoutLeg {
    protocol: &'static str,
    payloads_shared: u64,
    messages_sent: u64,
}

/// One seeded paper run for `protocol`, reporting the engine's
/// payload-sharing counters (deterministic — no wall clock involved).
fn fanout_leg(protocol: ProtocolKind) -> FanoutLeg {
    let cfg = ExperimentConfig::paper(protocol, DEGREE, point_seed(DEGREE, 0));
    let result = run(&cfg).unwrap_or_else(|e| panic!("{protocol} fan-out run failed: {e}"));
    FanoutLeg {
        protocol: protocol.label(),
        payloads_shared: result.stats.control_payloads_shared,
        messages_sent: result.stats.control_messages_sent,
    }
}

struct InternerLeg {
    hits: u64,
    misses: u64,
    payloads_shared: u64,
    messages_sent: u64,
}

/// Runs plain BGP on a hand-built degree-4 mesh through convergence, a
/// link failure and reconvergence, then reads back the per-node path
/// interner counters.
fn bgp_interner_leg(seed: u64) -> InternerLeg {
    let cfg = ExperimentConfig::paper(ProtocolKind::Bgp, DEGREE, seed);
    let realized = cfg.topology.realize();
    let (mut builder, links) =
        to_simulator_builder(&realized.graph, cfg.link).expect("paper mesh instantiates");
    builder.seed(seed);
    let mut sim = builder.build().expect("paper mesh builds");
    let num_nodes = sim.num_nodes();
    for i in 0..num_nodes {
        sim.install_protocol(NodeId::new(i as u32), Box::new(Bgp::new()))
            .expect("node exists");
    }
    // Flap the lowest link after the mesh converges. Interning pays off
    // exactly here: every re-convergence walks routes back through
    // previously seen paths, so prepending hits the interner instead of
    // allocating a fresh hop sequence per flap cycle.
    let flapped = *links.values().next().expect("mesh has links");
    sim.start();
    for cycle in 0..3_u64 {
        sim.schedule_link_failure(SimTime::from_secs(120 + cycle * 120), flapped)
            .expect("link exists");
        sim.schedule_link_recovery(SimTime::from_secs(180 + cycle * 120), flapped)
            .expect("link exists");
    }
    sim.run_until(SimTime::from_secs(540));

    let mut leg = InternerLeg {
        hits: 0,
        misses: 0,
        payloads_shared: sim.stats().control_payloads_shared,
        messages_sent: sim.stats().control_messages_sent,
    };
    for i in 0..num_nodes {
        let node = NodeId::new(i as u32);
        let protocol = sim.protocol(node).expect("protocol installed");
        let bgp = protocol
            .as_any()
            .downcast_ref::<Bgp>()
            .expect("BGP installed on every node");
        let (hits, misses) = bgp.interner_stats();
        leg.hits += hits;
        leg.misses += misses;
    }
    leg
}

/// Median of an unsorted sample (mean of the middle pair when even).
fn median(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n == 0 {
        return 0.0;
    }
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Reads `events_per_sec_median` from the committed baseline, if any.
/// Unlike telemetry JSONL, the committed file is pretty-printed, so the
/// parser here tolerates whitespace between the colon and the number.
fn baseline_median(path: &str) -> Option<u64> {
    let text = std::fs::read_to_string(path).ok()?;
    let start = text.find("\"events_per_sec_median\"")? + "\"events_per_sec_median\"".len();
    let rest = text[start..].trim_start_matches(|c: char| c == ':' || c.is_whitespace());
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

fn main() {
    let mut runs: usize = 30;
    let mut smoke = false;
    let mut runs_seen = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--progress" {
            // Accepted for uniformity with the sweep binaries.
        } else if arg == "--jobs" {
            let _ = args.next();
        } else if arg.strip_prefix("--jobs=").is_some() {
            // Ignored: timing runs alone.
        } else if !runs_seen {
            runs = arg
                .parse()
                .unwrap_or_else(|_| panic!("usage: bench_hotpath [--smoke] [runs] [--jobs N]"));
            runs_seen = true;
        } else {
            panic!("usage: bench_hotpath [--smoke] [runs] [--jobs N]");
        }
    }
    if smoke {
        runs = 3;
    }
    println!("bench_hotpath — DBF d{DEGREE} timing ({runs} runs) + BGP interner leg\n");

    let timing = dbf_timing_leg(runs);
    let eps_median = median(&timing.events_per_sec);
    let eps_min = timing.events_per_sec.iter().copied().fold(f64::MAX, f64::min);
    let eps_max = timing.events_per_sec.iter().copied().fold(0.0_f64, f64::max);
    let shared_pct = 100.0 * timing.payloads_shared as f64 / timing.messages_sent.max(1) as f64;
    println!("DBF timing leg:");
    println!("  events processed   {:>12}", timing.events_total);
    println!("  wall time          {:>12.3} s", timing.elapsed_ns_total as f64 / 1e9);
    println!("  events/sec median  {eps_median:>12.0}  (min {eps_min:.0}, max {eps_max:.0})");
    println!(
        "  payload fan-out    {:>12} of {} control sends shared an allocation ({shared_pct:.1}%)",
        timing.payloads_shared, timing.messages_sent
    );

    let fanout: Vec<FanoutLeg> = [ProtocolKind::Spf, ProtocolKind::Dual, ProtocolKind::Rip]
        .into_iter()
        .map(fanout_leg)
        .collect();
    println!("\nFan-out leg (payload sharing, one seeded run each):");
    for leg in &fanout {
        println!(
            "  {:<5} {:>8} of {:>8} control sends shared an allocation ({:.1}%)",
            leg.protocol,
            leg.payloads_shared,
            leg.messages_sent,
            100.0 * leg.payloads_shared as f64 / leg.messages_sent.max(1) as f64
        );
    }

    let interner = bgp_interner_leg(point_seed(DEGREE, 0));
    let total = interner.hits + interner.misses;
    let hit_pct = 100.0 * interner.hits as f64 / total.max(1) as f64;
    println!("\nBGP interner leg (convergence + link failure + reconvergence):");
    println!("  paths interned     {:>12}  ({} hits, {} misses, {hit_pct:.1}% hit rate)",
        total, interner.hits, interner.misses);
    println!(
        "  payload fan-out    {:>12} of {} control sends shared an allocation",
        interner.payloads_shared, interner.messages_sent
    );

    let baseline = baseline_median("results/bench_hotpath_baseline.json");
    let regressed = baseline
        .is_some_and(|b| eps_median < REGRESSION_FLOOR * b as f64);
    if let Some(b) = baseline {
        println!("\nbaseline events/sec median: {b} (gate: fail below {:.0})",
            REGRESSION_FLOOR * b as f64);
    }

    let fanout_json: Vec<String> = fanout
        .iter()
        .map(|leg| {
            format!(
                "    {{\"protocol\": \"{}\", \"control_messages_sent\": {}, \
                 \"control_payloads_shared\": {}}}",
                leg.protocol, leg.messages_sent, leg.payloads_shared
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"runs\": {runs},\n  \"smoke\": {smoke},\n  \"degree\": \"{DEGREE}\",\n  \
         \"dbf\": {{\n    \"events_total\": {},\n    \"elapsed_ns_total\": {},\n    \
         \"events_per_sec_median\": {:.0},\n    \"events_per_sec_min\": {:.0},\n    \
         \"events_per_sec_max\": {:.0},\n    \"control_messages_sent\": {},\n    \
         \"control_payloads_shared\": {}\n  }},\n  \
         \"fanout\": [\n{}\n  ],\n  \
         \"bgp_interner\": {{\n    \"hits\": {},\n    \"misses\": {},\n    \
         \"hit_rate_pct\": {:.2},\n    \"control_messages_sent\": {},\n    \
         \"control_payloads_shared\": {}\n  }},\n  \
         \"baseline_events_per_sec_median\": {},\n  \"regressed\": {regressed}\n}}\n",
        timing.events_total,
        timing.elapsed_ns_total,
        eps_median,
        eps_min,
        eps_max,
        timing.messages_sent,
        timing.payloads_shared,
        fanout_json.join(",\n"),
        interner.hits,
        interner.misses,
        hit_pct,
        interner.messages_sent,
        interner.payloads_shared,
        baseline.map_or_else(|| "null".to_string(), |b| b.to_string()),
    );
    std::fs::write("BENCH_hotpath.json", &json).expect("write BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json");

    if regressed {
        eprintln!(
            "REGRESSION: events/sec median {eps_median:.0} is more than 20% below the \
             committed baseline {}",
            baseline.unwrap_or(0)
        );
        std::process::exit(1);
    }
}
