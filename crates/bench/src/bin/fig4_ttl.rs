//! Figure 4: packet drops due to TTL expiration (transient forwarding
//! loops) vs. node degree.
//!
//! Paper shape to reproduce: RIP has none (it drops instead of looping);
//! BGP has the most, roughly the MRAI ratio (~10×) above BGP-3; loops
//! disappear in densely connected meshes.

use bench::{sweep_args, sweep_point_observed, SweepArgs, SweepObserver};
use convergence::protocols::ProtocolKind;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("fig4_ttl", args);
    println!("Figure 4 — TTL expirations during convergence, {runs} runs/point\n");

    let mut ttl = Table::new(
        std::iter::once("degree".to_string())
            .chain(ProtocolKind::PAPER.iter().map(|p| p.label().to_string()))
            .collect(),
    );
    let mut looped = Table::new(
        std::iter::once("degree".to_string())
            .chain(ProtocolKind::PAPER.iter().map(|p| p.label().to_string()))
            .collect(),
    );
    for degree in MeshDegree::ALL {
        let mut ttl_row = vec![degree.to_string()];
        let mut loop_row = vec![degree.to_string()];
        for protocol in ProtocolKind::PAPER {
            let point = sweep_point_observed(protocol, degree, runs, jobs, &|_| {}, &mut observer);
            ttl_row.push(fmt_f64(point.ttl_expirations.mean));
            loop_row.push(fmt_f64(point.looped_packets.mean));
        }
        ttl.push_row(ttl_row);
        looped.push_row(loop_row);
        eprintln!("  degree {degree} done");
    }
    println!("TTL expirations (the figure's y-axis):");
    println!("{}", ttl.render());
    println!("packets that entered any forwarding loop (supporting metric):");
    println!("{}", looped.render());
    println!("expected shape: RIP column all zeros; BGP >> BGP-3 (≈ MRAI ratio);");
    println!("all columns ~0 once the mesh is dense.\n");

    let path = bench::results_dir().join("fig4_ttl.csv");
    ttl.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
