//! Figure 5: instantaneous throughput (delivered packets per second) vs.
//! time around the failure, at node degrees 3, 4 and 6.
//!
//! Paper shape to reproduce: in sparse meshes every protocol dips at the
//! failure; RIP climbs back on the 30 s periodic-update timescale, BGP on
//! the ~30 s MRAI, DBF and BGP-3 within seconds. At degree 6 only RIP
//! still shows a visible dip.

use bench::{sweep_args, sparkline, sweep_series_observed, SweepArgs, SweepObserver};
use convergence::metrics::series::mean_u64_series;
use convergence::protocols::ProtocolKind;
use convergence::report::Table;
use topology::mesh::MeshDegree;

const FROM_S: i64 = -10;
const TO_S: i64 = 40;

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("fig5_throughput", args);
    println!("Figure 5 — instantaneous throughput vs time, {runs} runs/point");
    println!("window: {FROM_S}..{TO_S} s relative to the failure; rate = 20 pkt/s\n");

    for degree in [MeshDegree::D3, MeshDegree::D4, MeshDegree::D6] {
        let mut table = Table::new(
            std::iter::once("t(s)".to_string())
                .chain(ProtocolKind::PAPER.iter().map(|p| p.label().to_string()))
                .collect(),
        );
        let mut columns = Vec::new();
        for protocol in ProtocolKind::PAPER {
            let series =
                sweep_series_observed(protocol, degree, runs, jobs, FROM_S, TO_S, &mut observer);
            let through: Vec<Vec<(i64, u64)>> =
                series.into_iter().map(|s| s.throughput).collect();
            columns.push(mean_u64_series(&through));
            eprintln!("  degree {degree} {protocol} done");
        }
        for i in 0..columns[0].len() {
            let mut row = vec![columns[0][i].0.to_string()];
            for col in &columns {
                row.push(format!("{:.1}", col[i].1));
            }
            table.push_row(row);
        }
        println!("--- degree {degree} ---");
        for (protocol, col) in ProtocolKind::PAPER.iter().zip(&columns) {
            let values: Vec<f64> = col.iter().map(|&(_, v)| v).collect();
            println!("{:>5} {}", protocol.label(), sparkline(&values, Some(20.0)));
        }
        println!();
        let path = bench::results_dir().join(format!("fig5_throughput_d{degree}.csv"));
        table.write_csv(&path).expect("write CSV");
        println!("wrote {}\n", path.display());
    }
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
