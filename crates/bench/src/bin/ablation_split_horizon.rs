//! Ablation A2 (paper §4.2): how much of the valid-alternate-path
//! probability comes from split horizon with poisoned reverse?
//!
//! Runs DBF with poisoned reverse (default), simple split horizon, and no
//! split horizon at the loop-prone sparse degrees.

use bench::{sweep_args, sweep_point_observed, SweepArgs, SweepObserver};
use convergence::experiment::ProtocolFactory;
use convergence::protocols::ProtocolKind;
use convergence::report::{fmt_f64, Table};
use dbf::{Dbf, DbfConfig};
use rip::SplitHorizon;
use topology::mesh::MeshDegree;

fn dbf_with(mode: SplitHorizon) -> ProtocolFactory {
    ProtocolFactory::new(move || {
        Box::new(Dbf::with_config(DbfConfig {
            split_horizon: mode,
            ..DbfConfig::default()
        }).expect("valid config"))
    })
}

fn main() {
    let args = sweep_args();
    let SweepArgs { runs, jobs, .. } = args;
    let mut observer = SweepObserver::new("ablation_split_horizon", args);
    println!("Ablation A2 — split-horizon modes (DBF), {runs} runs/point\n");

    let modes = [
        ("poison-reverse", SplitHorizon::PoisonReverse),
        ("simple", SplitHorizon::Simple),
        ("disabled", SplitHorizon::Disabled),
    ];
    let mut table = Table::new(
        ["degree", "mode", "no-route", "ttl-expired", "looped", "rtconv(s)"]
            .map(String::from)
            .to_vec(),
    );
    for degree in [MeshDegree::D3, MeshDegree::D4, MeshDegree::D5] {
        for (label, mode) in modes {
            let point = sweep_point_observed(
                ProtocolKind::Dbf,
                degree,
                runs,
                jobs,
                &|cfg| {
                    cfg.protocol_override = Some(dbf_with(mode));
                },
                &mut observer,
            );
            table.push_row(vec![
                degree.to_string(),
                label.to_string(),
                fmt_f64(point.drops_no_route.mean),
                fmt_f64(point.ttl_expirations.mean),
                fmt_f64(point.looped_packets.mean),
                fmt_f64(point.routing_convergence_s.mean),
            ]);
        }
        eprintln!("  degree {degree} done");
    }
    println!("{}", table.render());
    println!("expected: disabling poisoned reverse admits two-hop loops, raising");
    println!("TTL expirations and convergence time in sparse meshes.\n");
    let path = bench::results_dir().join("ablation_split_horizon.csv");
    table.write_csv(&path).expect("write CSV");
    println!("wrote {}", path.display());
    let tpath = observer.finish().expect("write telemetry");
    println!("wrote {}", tpath.display());
}
