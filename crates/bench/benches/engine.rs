//! Criterion benchmarks of the simulation substrate itself.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use netsim::ident::NodeId;
use netsim::link::LinkConfig;
use netsim::protocol::RoutingProtocol;
use netsim::simulator::{ProtocolContext, Simulator, SimulatorBuilder};
use netsim::time::SimTime;
use netsim::trace::TraceConfig;

/// Static shortest-path routes toward the last node of a line.
struct LineRoutes {
    next: Option<NodeId>,
    last: NodeId,
}

impl RoutingProtocol for LineRoutes {
    fn name(&self) -> &'static str {
        "line"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        if let Some(next) = self.next {
            ctx.install_route(self.last, next);
        }
    }
}

fn build_line(n: usize, record_hops: bool) -> (Simulator, Vec<NodeId>) {
    let mut b = SimulatorBuilder::new();
    let nodes = b.add_nodes(n);
    for w in nodes.windows(2) {
        b.add_link(w[0], w[1], LinkConfig::default()).unwrap();
    }
    b.trace_config(TraceConfig {
        record_hops,
        record_control: false,
    });
    let mut sim = b.build().unwrap();
    let last = *nodes.last().unwrap();
    for (i, &node) in nodes.iter().enumerate() {
        let next = nodes.get(i + 1).copied();
        sim.install_protocol(node, Box::new(LineRoutes { next, last }))
            .unwrap();
    }
    sim.start();
    (sim, nodes)
}

fn bench_forwarding(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    for &hops in &[8usize, 32] {
        group.bench_function(format!("forward_1k_packets_{hops}_hops"), |b| {
            b.iter_batched(
                || {
                    let (mut sim, nodes) = build_line(hops + 1, false);
                    // 1000 pkt/s stays under the 1250 pkt/s service rate of
                    // a 10 Mb/s link, so nothing overflows.
                    for i in 0..1000u64 {
                        sim.schedule_default_packet(
                            SimTime::from_micros_helper(i * 1000),
                            nodes[0],
                            *nodes.last().unwrap(),
                        );
                    }
                    sim
                },
                |mut sim| {
                    sim.run_to_completion();
                    assert_eq!(sim.stats().packets_delivered, 1000);
                    sim
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.bench_function("forward_1k_packets_traced", |b| {
        b.iter_batched(
            || {
                let (mut sim, nodes) = build_line(9, true);
                for i in 0..1000u64 {
                    sim.schedule_default_packet(
                        SimTime::from_micros_helper(i * 1000),
                        nodes[0],
                        *nodes.last().unwrap(),
                    );
                }
                sim
            },
            |mut sim| {
                sim.run_to_completion();
                sim
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

/// Small helper because SimTime has no from_micros constructor.
trait Micros {
    fn from_micros_helper(us: u64) -> SimTime;
}
impl Micros for SimTime {
    fn from_micros_helper(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }
}

criterion_group!(benches, bench_forwarding);
criterion_main!(benches);
