//! Criterion benchmarks of topology construction and analysis.

use criterion::{criterion_group, criterion_main, Criterion};
use netsim::ident::NodeId;
use topology::mesh::{Mesh, MeshDegree};
use topology::shortest_path::{all_pairs_distances, bfs};

fn bench_topology(c: &mut Criterion) {
    let mut group = c.benchmark_group("topology");
    group.bench_function("mesh_7x7_d6", |b| {
        b.iter(|| criterion::black_box(Mesh::regular(7, 7, MeshDegree::D6)));
    });
    group.bench_function("mesh_20x20_d8", |b| {
        b.iter(|| criterion::black_box(Mesh::regular(20, 20, MeshDegree::D8)));
    });

    let mesh = Mesh::regular(7, 7, MeshDegree::D6);
    group.bench_function("bfs_7x7_d6", |b| {
        b.iter(|| criterion::black_box(bfs(mesh.graph(), NodeId::new(0))));
    });
    group.bench_function("all_pairs_7x7_d6", |b| {
        b.iter(|| criterion::black_box(all_pairs_distances(mesh.graph())));
    });

    let big = Mesh::regular(20, 20, MeshDegree::D4);
    group.bench_function("bfs_20x20_d4", |b| {
        b.iter(|| criterion::black_box(bfs(big.graph(), NodeId::new(0))));
    });
    group.finish();
}

criterion_group!(benches, bench_topology);
criterion_main!(benches);
