//! Criterion macro-benchmarks: one full paper experiment per protocol
//! (warm-up, traffic, failure, drain) and the figure workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use convergence::experiment::ExperimentConfig;
use convergence::metrics::summary::summarize;
use convergence::protocols::ProtocolKind;
use convergence::runner::run;
use topology::mesh::MeshDegree;

fn bench_single_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_run");
    group.sample_size(20);
    for protocol in ProtocolKind::ALL {
        for degree in [MeshDegree::D3, MeshDegree::D6] {
            group.bench_function(format!("{}_d{}", protocol.label(), degree), |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    let cfg = ExperimentConfig::paper(protocol, degree, seed);
                    let result = run(&cfg).expect("run succeeds");
                    criterion::black_box(summarize(&result))
                });
            });
        }
    }
    group.finish();
}

fn bench_metrics(c: &mut Criterion) {
    // Analysis cost over one fixed (loop-heavy) trace.
    let cfg = ExperimentConfig::paper(ProtocolKind::Bgp, MeshDegree::D3, 7);
    let result = run(&cfg).expect("run succeeds");
    let mut group = c.benchmark_group("metrics");
    group.bench_function("summarize_bgp_d3", |b| {
        b.iter(|| criterion::black_box(summarize(&result)));
    });
    group.bench_function("loop_forensics_bgp_d3", |b| {
        b.iter(|| {
            criterion::black_box(convergence::metrics::analyze_loops(&result.trace))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_single_runs, bench_metrics);
criterion_main!(benches);
