//! Property-based tests over the experiment harness and metrics.

use convergence::metrics::convergence::{FibReplay, PathOutcome};
use convergence::metrics::drops::{count_delivered, count_drops};
use convergence::metrics::loops::analyze_loops;
use convergence::metrics::series::throughput_series;
use convergence::prelude::*;
use netsim::simulator::ForwardingPath;
use proptest::prelude::*;
use topology::mesh::MeshDegree;

fn degree_strategy() -> impl Strategy<Value = MeshDegree> {
    prop::sample::select(vec![MeshDegree::D3, MeshDegree::D4, MeshDegree::D6])
}

fn protocol_strategy() -> impl Strategy<Value = ProtocolKind> {
    prop::sample::select(vec![
        ProtocolKind::Dbf,
        ProtocolKind::Spf,
        ProtocolKind::Bgp3,
        ProtocolKind::Dual,
    ])
}

proptest! {
    // Each case is a full simulation; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Packet conservation holds for every protocol/degree/seed, and the
    /// trace agrees with the engine counters.
    #[test]
    fn conservation_and_trace_consistency(
        protocol in protocol_strategy(),
        degree in degree_strategy(),
        seed in 0u64..10_000,
    ) {
        let cfg = ExperimentConfig::paper(protocol, degree, seed);
        let result = run(&cfg).expect("run succeeds");
        let drops = count_drops(&result.trace);
        let delivered = count_delivered(&result.trace);
        prop_assert_eq!(result.stats.packets_injected, delivered + drops.total());
        prop_assert_eq!(result.stats.packets_delivered, delivered);
        prop_assert_eq!(result.stats.packets_dropped, drops.total());
    }

    /// Replaying the RouteChanged trace reconstructs exactly the live
    /// FIB state for every (src, dst) pair at the end of the run.
    #[test]
    fn fib_replay_matches_live_simulator(
        degree in degree_strategy(),
        seed in 0u64..1_000,
    ) {
        use netsim::link::LinkConfig;
        use netsim::time::SimTime;
        use topology::instantiate::to_simulator_builder;
        use topology::mesh::Mesh;

        let mesh = Mesh::regular(5, 5, degree);
        let (mut builder, links) =
            to_simulator_builder(mesh.graph(), LinkConfig::default()).unwrap();
        builder.seed(seed);
        let mut sim = builder.build().unwrap();
        for node in mesh.graph().nodes() {
            sim.install_protocol(node, Box::new(dbf::Dbf::new())).unwrap();
        }
        sim.start();
        sim.run_until(SimTime::from_secs(70));
        // Perturb: fail an arbitrary link, keep running.
        let pick = (seed as usize) % mesh.graph().num_edges();
        let edge = mesh.graph().edges().nth(pick).unwrap();
        sim.schedule_link_failure(SimTime::from_secs(80), links[&edge]).unwrap();
        sim.run_until(SimTime::from_secs(130));

        let mut replay = FibReplay::new(mesh.graph().num_nodes());
        for event in sim.trace() {
            replay.apply(event);
        }
        for src in mesh.graph().nodes() {
            for dst in mesh.graph().nodes() {
                if src == dst {
                    continue;
                }
                prop_assert_eq!(
                    replay.next_hop(src, dst),
                    sim.fib(src).next_hop(dst),
                    "replay mismatch at {} -> {}", src, dst
                );
                let live = sim.forwarding_path(src, dst);
                let replayed = replay.walk(src, dst);
                let agree = matches!(
                    (&live, &replayed),
                    (ForwardingPath::Complete(_), PathOutcome::Complete(_))
                        | (ForwardingPath::Loop(_), PathOutcome::Loop(_))
                        | (ForwardingPath::Broken(_), PathOutcome::Broken(_))
                );
                prop_assert!(agree, "walk outcome mismatch at {} -> {}", src, dst);
            }
        }
    }

    /// The throughput series sums to the delivered-in-window count, and
    /// the window fully covers the traffic when the tail is inside it.
    #[test]
    fn throughput_series_sums_to_deliveries(seed in 0u64..10_000) {
        let cfg = ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D5, seed);
        let result = run(&cfg).expect("run succeeds");
        let series = throughput_series(&result.trace, result.t_fail, -10, 41);
        let sum: u64 = series.iter().map(|&(_, v)| v).sum();
        prop_assert_eq!(sum, count_delivered(&result.trace));
    }

    /// Loop forensics and TTL drops agree: every TTL-expired packet
    /// appears in the loop report as TTL-killed.
    #[test]
    fn loop_report_covers_every_ttl_drop(
        degree in degree_strategy(),
        seed in 0u64..10_000,
    ) {
        let cfg = ExperimentConfig::paper(ProtocolKind::Bgp, degree, seed);
        let result = run(&cfg).expect("run succeeds");
        let report = analyze_loops(&result.trace);
        let ttl_drops = count_drops(&result.trace).ttl_expired;
        prop_assert_eq!(report.ttl_killed() as u64, ttl_drops);
    }

    /// Summaries are invariant under recomputation (pure functions of the
    /// trace).
    #[test]
    fn summarize_is_pure(seed in 0u64..10_000) {
        let cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D4, seed);
        let result = run(&cfg).expect("run succeeds");
        prop_assert_eq!(summarize(&result), summarize(&result));
    }

    /// The single-pass streaming fold produces the exact `RunSummary` the
    /// trace-based path does, for every protocol/degree/seed.
    #[test]
    fn streaming_summary_equals_trace_summary(
        protocol in protocol_strategy(),
        degree in degree_strategy(),
        seed in 0u64..10_000,
    ) {
        let cfg = ExperimentConfig::paper(protocol, degree, seed);
        let result = run(&cfg).expect("run succeeds");
        prop_assert_eq!(
            summarize_streaming(&result).expect("streaming summary"),
            summarize(&result).expect("trace summary")
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Welford's one-pass aggregate agrees with the naive two-pass
    /// mean/variance formulas to within floating-point noise.
    #[test]
    fn aggregate_matches_two_pass(
        raw in prop::collection::vec((0u64..2_000_000, 1u64..1_000), 1..40),
    ) {
        let values: Vec<f64> = raw
            .iter()
            .map(|&(num, den)| num as f64 / den as f64)
            .collect();
        let agg = Aggregate::of(&values).expect("nonempty sample");

        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        let std_dev = var.sqrt();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        let scale = mean.abs().max(1.0);
        prop_assert!((agg.mean - mean).abs() <= 1e-9 * scale,
            "mean {} vs two-pass {}", agg.mean, mean);
        prop_assert!((agg.std_dev - std_dev).abs() <= 1e-9 * scale,
            "std_dev {} vs two-pass {}", agg.std_dev, std_dev);
        prop_assert_eq!(agg.min, min);
        prop_assert_eq!(agg.max, max);
        prop_assert_eq!(agg.n, values.len());
    }
}
