//! Per-packet loop forensics (§5.2).
//!
//! The paper identifies transient-loop causes by reading the forwarding and
//! routing trace files; this module automates that analysis: for every
//! packet, the recorded hop sequence is checked for node revisits, and each
//! looping packet is classified by its fate (escaped and delivered, or
//! killed by TTL expiry).

use std::collections::BTreeMap;

use netsim::ident::{NodeId, PacketId};
use netsim::packet::DropReason;
use netsim::trace::{Trace, TraceEvent};
use serde::{Deserialize, Serialize};

/// The fate of a packet that entered a forwarding loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopFate {
    /// Escaped the loop and reached the destination (with extra delay).
    Escaped,
    /// Dropped when its TTL expired.
    TtlKilled,
    /// Dropped for another reason while looping (queue, link).
    OtherDrop,
    /// Still in flight when the run ended.
    Unresolved,
}

/// One packet's loop encounter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopEncounter {
    /// The packet.
    pub packet: PacketId,
    /// The first revisited router.
    pub pivot: NodeId,
    /// Hops taken before the first revisit.
    pub hops_before_revisit: u32,
    /// Total forwarding hops recorded for the packet.
    pub total_hops: u32,
    /// How the story ended.
    pub fate: LoopFate,
}

/// Aggregate loop statistics for a run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoopReport {
    /// Every packet that revisited a router.
    pub encounters: Vec<LoopEncounter>,
}

impl LoopReport {
    /// Number of looping packets.
    #[must_use]
    pub fn looped_packets(&self) -> usize {
        self.encounters.len()
    }

    /// Number of looping packets that still reached the destination.
    #[must_use]
    pub fn escaped(&self) -> usize {
        self.encounters
            .iter()
            .filter(|e| e.fate == LoopFate::Escaped)
            .count()
    }

    /// Number of looping packets killed by TTL expiry.
    #[must_use]
    pub fn ttl_killed(&self) -> usize {
        self.encounters
            .iter()
            .filter(|e| e.fate == LoopFate::TtlKilled)
            .count()
    }
}

/// Scans hop-level trace records for forwarding loops.
///
/// Requires the trace to have been recorded with
/// [`TraceConfig::record_hops`](netsim::trace::TraceConfig) enabled.
#[must_use]
pub fn analyze_loops(trace: &Trace) -> LoopReport {
    #[derive(Default)]
    struct PacketLog {
        visited: Vec<NodeId>,
        pivot: Option<(NodeId, u32)>,
        fate: Option<LoopFate>,
    }
    let mut logs: BTreeMap<PacketId, PacketLog> = BTreeMap::new();
    for event in trace {
        match event {
            TraceEvent::PacketInjected { id, src, .. } => {
                logs.entry(*id).or_default().visited.push(*src);
            }
            TraceEvent::PacketForwarded { id, next_hop, .. } => {
                let log = logs.entry(*id).or_default();
                if log.pivot.is_none() && log.visited.contains(next_hop) {
                    // visited = [source, hop1, ..., hopK]; the revisiting
                    // hop is K+1, so K hops preceded it.
                    log.pivot = Some((*next_hop, log.visited.len() as u32 - 1));
                }
                log.visited.push(*next_hop);
            }
            TraceEvent::PacketDelivered { id, .. } => {
                if let Some(log) = logs.get_mut(id) {
                    log.fate = Some(LoopFate::Escaped);
                }
            }
            TraceEvent::PacketDropped { id, reason, .. } => {
                if let Some(log) = logs.get_mut(id) {
                    log.fate = Some(match reason {
                        DropReason::TtlExpired => LoopFate::TtlKilled,
                        _ => LoopFate::OtherDrop,
                    });
                }
            }
            _ => {}
        }
    }
    let encounters = logs
        .into_iter()
        .filter_map(|(packet, log)| {
            let (pivot, hops_before_revisit) = log.pivot?;
            Some(LoopEncounter {
                packet,
                pivot,
                hops_before_revisit,
                total_hops: (log.visited.len() as u32).saturating_sub(1),
                fate: log.fate.unwrap_or(LoopFate::Unresolved),
            })
        })
        .collect();
    LoopReport { encounters }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimTime;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn inject(ms: u64, id: u64, src: u32, dst: u32) -> TraceEvent {
        TraceEvent::PacketInjected {
            time: SimTime::from_millis(ms),
            id: PacketId::new(id),
            src: n(src),
            dst: n(dst),
        }
    }

    fn hop(ms: u64, id: u64, node: u32, next: u32) -> TraceEvent {
        TraceEvent::PacketForwarded {
            time: SimTime::from_millis(ms),
            id: PacketId::new(id),
            node: n(node),
            next_hop: n(next),
        }
    }

    #[test]
    fn straight_paths_report_no_loops() {
        let trace = Trace::from_events(vec![
            inject(0, 1, 0, 3),
            hop(1, 1, 0, 1),
            hop(2, 1, 1, 2),
            hop(3, 1, 2, 3),
            TraceEvent::PacketDelivered {
                time: SimTime::from_millis(4),
                id: PacketId::new(1),
                node: n(3),
                hops: 3,
                sent_at: SimTime::ZERO,
            },
        ]);
        assert_eq!(analyze_loops(&trace).looped_packets(), 0);
    }

    #[test]
    fn revisit_is_detected_with_pivot() {
        let trace = Trace::from_events(vec![
            inject(0, 7, 0, 9),
            hop(1, 7, 0, 1),
            hop(2, 7, 1, 2),
            hop(3, 7, 2, 1), // back to 1: loop!
            hop(4, 7, 1, 2),
            TraceEvent::PacketDropped {
                time: SimTime::from_millis(5),
                id: PacketId::new(7),
                node: n(2),
                reason: DropReason::TtlExpired,
                sent_at: SimTime::ZERO,
            },
        ]);
        let report = analyze_loops(&trace);
        assert_eq!(report.looped_packets(), 1);
        assert_eq!(report.ttl_killed(), 1);
        let enc = &report.encounters[0];
        assert_eq!(enc.pivot, n(1));
        assert_eq!(enc.hops_before_revisit, 2);
        assert_eq!(enc.total_hops, 4);
    }

    #[test]
    fn escaped_loopers_are_classified() {
        let trace = Trace::from_events(vec![
            inject(0, 3, 0, 4),
            hop(1, 3, 0, 1),
            hop(2, 3, 1, 0), // bounce back
            hop(3, 3, 0, 2), // escape via 2
            hop(4, 3, 2, 4),
            TraceEvent::PacketDelivered {
                time: SimTime::from_millis(5),
                id: PacketId::new(3),
                node: n(4),
                hops: 4,
                sent_at: SimTime::ZERO,
            },
        ]);
        let report = analyze_loops(&trace);
        assert_eq!(report.looped_packets(), 1);
        assert_eq!(report.escaped(), 1);
        assert_eq!(report.ttl_killed(), 0);
    }

    #[test]
    fn unresolved_packets_are_flagged() {
        let trace = Trace::from_events(vec![
            inject(0, 5, 0, 9),
            hop(1, 5, 0, 1),
            hop(2, 5, 1, 0),
        ]);
        let report = analyze_loops(&trace);
        assert_eq!(report.encounters[0].fate, LoopFate::Unresolved);
    }
}
