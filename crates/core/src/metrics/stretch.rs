//! Path stretch: how many extra hops convergence-era packets travel.
//!
//! §5.5 observes that packets delivered during convergence "might traverse
//! more hops than the new best path"; delay (Figure 7) measures that in
//! time. Stretch measures it directly in hops: delivered hops divided by
//! the shortest-path distance at delivery time (pre-failure topology
//! before the failure, post-failure topology after).

use netsim::ident::NodeId;
use netsim::time::SimTime;
use netsim::trace::{Trace, TraceEvent};

use crate::metrics::MetricsError;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use topology::graph::{Edge, Graph};
use topology::shortest_path::bfs;

/// One delivered packet's stretch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PacketStretch {
    /// Delivery time.
    pub time: SimTime,
    /// Hops actually traversed.
    pub hops: u32,
    /// Shortest possible hops at that time.
    pub optimal: u32,
}

impl PacketStretch {
    /// Multiplicative stretch (1.0 = optimal).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        f64::from(self.hops) / f64::from(self.optimal.max(1))
    }
}

/// Computes the stretch of every delivered packet of the `src → dst` flow.
///
/// `failed` are the edges that go down at `t_fail` (the post-failure
/// optimum removes them). If the failure disconnects the pair (a bridge on
/// an irregular topology, or a flapping link that later recovers), the
/// pre-failure optimum is used as the baseline for post-failure packets.
///
/// # Errors
///
/// [`MetricsError::UnreachableDestination`] if `dst` is unreachable even
/// before the failure — there is no baseline to measure stretch against.
pub fn flow_stretch(
    trace: &Trace,
    graph: &Graph,
    failed: &[Edge],
    src: NodeId,
    dst: NodeId,
    t_fail: SimTime,
) -> Result<Vec<PacketStretch>, MetricsError> {
    let before = bfs(graph, src)
        .distance(dst)
        .ok_or(MetricsError::UnreachableDestination { src, dst })?;
    let mut degraded = graph.clone();
    for edge in failed {
        degraded = degraded.without_edge(*edge);
    }
    let after = bfs(&degraded, src).distance(dst).unwrap_or(before);

    // Identify the flow's packets by their injection records.
    let mut flow_packets: BTreeMap<netsim::ident::PacketId, ()> = BTreeMap::new();
    let mut out = Vec::new();
    for event in trace {
        match event {
            TraceEvent::PacketInjected { id, src: s, dst: d, .. }
                if *s == src && *d == dst =>
            {
                flow_packets.insert(*id, ());
            }
            TraceEvent::PacketDelivered { time, id, hops, .. }
                if flow_packets.contains_key(id) =>
            {
                let optimal = if *time < t_fail { before } else { after };
                out.push(PacketStretch {
                    time: *time,
                    hops: *hops,
                    optimal,
                });
            }
            _ => {}
        }
    }
    Ok(out)
}

/// Mean stretch ratio over a slice (1.0 if empty).
#[must_use]
pub fn mean_stretch(packets: &[PacketStretch]) -> f64 {
    if packets.is_empty() {
        return 1.0;
    }
    packets.iter().map(PacketStretch::ratio).sum::<f64>() / packets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::ident::PacketId;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// Square: 0-1, 1-3, 0-2, 2-3 — two 2-hop paths 0→3.
    fn square() -> Graph {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(3));
        g.add_edge(n(0), n(2));
        g.add_edge(n(2), n(3));
        g
    }

    fn inject(ms: u64, id: u64) -> TraceEvent {
        TraceEvent::PacketInjected {
            time: SimTime::from_millis(ms),
            id: PacketId::new(id),
            src: n(0),
            dst: n(3),
        }
    }

    fn deliver(ms: u64, id: u64, hops: u32) -> TraceEvent {
        TraceEvent::PacketDelivered {
            time: SimTime::from_millis(ms),
            id: PacketId::new(id),
            node: n(3),
            hops,
            sent_at: SimTime::from_millis(ms.saturating_sub(10)),
        }
    }

    #[test]
    fn stretch_uses_the_right_epoch() {
        let g = square();
        let failed = [Edge::new(n(1), n(3))];
        let trace = Trace::from_events(vec![
            inject(1_000, 1),
            deliver(1_010, 1, 2), // optimal before (2 hops)
            inject(6_000, 2),
            deliver(6_010, 2, 4), // after failure: optimal still 2 (via 2)
        ]);
        let s = flow_stretch(&trace, &g, &failed, n(0), n(3), SimTime::from_secs(5)).unwrap();
        assert_eq!(s.len(), 2);
        assert!((s[0].ratio() - 1.0).abs() < 1e-9);
        assert!((s[1].ratio() - 2.0).abs() < 1e-9);
        assert!((mean_stretch(&s) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn foreign_flows_are_ignored() {
        let g = square();
        let trace = Trace::from_events(vec![
            TraceEvent::PacketInjected {
                time: SimTime::from_millis(1),
                id: PacketId::new(9),
                src: n(1),
                dst: n(2),
            },
            TraceEvent::PacketDelivered {
                time: SimTime::from_millis(5),
                id: PacketId::new(9),
                node: n(2),
                hops: 2,
                sent_at: SimTime::from_millis(1),
            },
        ]);
        let s = flow_stretch(&trace, &g, &[], n(0), n(3), SimTime::from_secs(5)).unwrap();
        assert!(s.is_empty());
        assert_eq!(mean_stretch(&s), 1.0);
    }
}
