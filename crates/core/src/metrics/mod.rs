//! Post-hoc trace analysis: every quantity the paper's evaluation plots.
//!
//! Two equivalent computation paths exist: the multi-pass trace analyzers
//! in the per-metric modules (the oracle), and the single-pass
//! [`streaming`] observer used by memory-bounded sweeps.

use std::fmt;

use netsim::ident::NodeId;

pub mod convergence;
pub mod drops;
pub mod loops;
pub mod series;
pub mod streaming;
pub mod stretch;
pub mod summary;
pub mod switchover;

pub use convergence::{path_history, routing_convergence_time, FibReplay, PathHistory, PathOutcome};
pub use drops::{count_delivered, count_drops, DropCounts};
pub use loops::{analyze_loops, LoopEncounter, LoopFate, LoopReport};
pub use series::{delay_series, mean_delay, mean_delay_series, mean_u64_series, throughput_series};
pub use streaming::{summarize_streaming, SummaryObserver};
pub use stretch::{flow_stretch, mean_stretch, PacketStretch};
pub use summary::{summarize, RunSummary};
pub use switchover::{stats_for_dest, switch_overs, SwitchOver, SwitchOverStats};

/// Why a metric could not be computed from a run's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsError {
    /// The flow's receiver was unreachable even before the failure, so no
    /// shortest-path baseline (and hence no stretch) exists. Runs produced
    /// by [`run`](crate::runner::run) never hit this — the warm-up check
    /// rejects disconnected flows — but hand-built traces can.
    UnreachableDestination {
        /// The flow's sender.
        src: NodeId,
        /// The unreachable receiver.
        dst: NodeId,
    },
    /// An aggregation was asked to fold zero run summaries.
    EmptySweep,
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::UnreachableDestination { src, dst } => {
                write!(f, "receiver {dst} unreachable from {src} before the failure")
            }
            MetricsError::EmptySweep => write!(f, "cannot aggregate zero run summaries"),
        }
    }
}

impl std::error::Error for MetricsError {}
