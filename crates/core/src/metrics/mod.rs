//! Post-hoc trace analysis: every quantity the paper's evaluation plots.
//!
//! Two equivalent computation paths exist: the multi-pass trace analyzers
//! in the per-metric modules (the oracle), and the single-pass
//! [`streaming`] observer used by memory-bounded sweeps.

pub mod convergence;
pub mod drops;
pub mod loops;
pub mod series;
pub mod streaming;
pub mod stretch;
pub mod summary;
pub mod switchover;

pub use convergence::{path_history, routing_convergence_time, FibReplay, PathHistory, PathOutcome};
pub use drops::{count_delivered, count_drops, DropCounts};
pub use loops::{analyze_loops, LoopEncounter, LoopFate, LoopReport};
pub use series::{delay_series, mean_delay, mean_delay_series, mean_u64_series, throughput_series};
pub use streaming::{summarize_streaming, SummaryObserver};
pub use stretch::{flow_stretch, mean_stretch, PacketStretch};
pub use summary::{summarize, RunSummary};
pub use switchover::{stats_for_dest, switch_overs, SwitchOver, SwitchOverStats};
