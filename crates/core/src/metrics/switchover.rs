//! Path switch-over periods (§4.1).
//!
//! "We say a path switch-over period starts when a router discovers its
//! current next hop can no longer reach a given destination and ends when
//! the router finds a new next hop for the same destination. Because the
//! router cannot forward any packets for that destination during the path
//! switch-over period, an ideal network routing protocol should have a
//! minimal path switch-over period." — this module measures exactly those
//! windows from the FIB-change trace: every interval during which a
//! (router, destination) pair had no forwarding entry.

use netsim::ident::NodeId;
use netsim::time::SimTime;
use netsim::trace::{Trace, TraceEvent};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One no-route window at one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchOver {
    /// The router that lost its next hop.
    pub node: NodeId,
    /// The destination affected.
    pub dest: NodeId,
    /// When the FIB entry was removed.
    pub began: SimTime,
    /// When a replacement was installed (`None` = never, within the run).
    pub ended: Option<SimTime>,
}

impl SwitchOver {
    /// The window length in seconds (up to `run_end` for unresolved ones).
    #[must_use]
    pub fn duration_s(&self, run_end: SimTime) -> f64 {
        self.ended
            .unwrap_or(run_end)
            .saturating_since(self.began)
            .as_secs_f64()
    }
}

/// Extracts every switch-over window that *started at or after* `from`
/// (pass the failure time to skip warm-up churn).
#[must_use]
pub fn switch_overs(trace: &Trace, from: SimTime) -> Vec<SwitchOver> {
    let mut open: BTreeMap<(NodeId, NodeId), SimTime> = BTreeMap::new();
    let mut windows = Vec::new();
    for event in trace {
        let TraceEvent::RouteChanged {
            time, node, dest, new, ..
        } = event
        else {
            continue;
        };
        match new {
            None => {
                if *time >= from {
                    open.entry((*node, *dest)).or_insert(*time);
                }
            }
            Some(_) => {
                if let Some(began) = open.remove(&(*node, *dest)) {
                    windows.push(SwitchOver {
                        node: *node,
                        dest: *dest,
                        began,
                        ended: Some(*time),
                    });
                }
            }
        }
    }
    windows.extend(open.into_iter().map(|((node, dest), began)| SwitchOver {
        node,
        dest,
        began,
        ended: None,
    }));
    windows.sort_by_key(|w| (w.began, w.node, w.dest));
    windows
}

/// Summary statistics over a run's switch-over windows for one
/// destination (the flow's receiver, in the paper's scenario).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchOverStats {
    /// Number of (router, dest) windows.
    pub count: usize,
    /// Longest window (s).
    pub max_s: f64,
    /// Mean window (s).
    pub mean_s: f64,
}

/// Aggregates the windows affecting `dest`.
#[must_use]
pub fn stats_for_dest(
    windows: &[SwitchOver],
    dest: NodeId,
    run_end: SimTime,
) -> SwitchOverStats {
    let durations: Vec<f64> = windows
        .iter()
        .filter(|w| w.dest == dest)
        .map(|w| w.duration_s(run_end))
        .collect();
    if durations.is_empty() {
        return SwitchOverStats {
            count: 0,
            max_s: 0.0,
            mean_s: 0.0,
        };
    }
    SwitchOverStats {
        count: durations.len(),
        max_s: durations.iter().copied().fold(0.0, f64::max),
        mean_s: durations.iter().sum::<f64>() / durations.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn change(ms: u64, node: u32, dest: u32, new: Option<u32>) -> TraceEvent {
        TraceEvent::RouteChanged {
            time: SimTime::from_millis(ms),
            node: n(node),
            dest: n(dest),
            old: None,
            new: new.map(n),
        }
    }

    #[test]
    fn windows_are_paired_removal_to_install() {
        let trace = Trace::from_events(vec![
            change(1_000, 0, 9, Some(1)), // warm-up install
            change(5_000, 0, 9, None),    // switch-over starts
            change(7_500, 0, 9, Some(2)), // ends
        ]);
        let w = switch_overs(&trace, SimTime::from_secs(4));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].node, n(0));
        assert!((w[0].duration_s(SimTime::from_secs(100)) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn warm_up_churn_is_excluded() {
        let trace = Trace::from_events(vec![
            change(1_000, 0, 9, None),
            change(2_000, 0, 9, Some(1)),
            change(5_000, 1, 9, None),
            change(6_000, 1, 9, Some(2)),
        ]);
        let w = switch_overs(&trace, SimTime::from_secs(4));
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].node, n(1));
    }

    #[test]
    fn unresolved_windows_run_to_end() {
        let trace = Trace::from_events(vec![change(5_000, 0, 9, None)]);
        let w = switch_overs(&trace, SimTime::from_secs(4));
        assert_eq!(w[0].ended, None);
        assert!((w[0].duration_s(SimTime::from_secs(15)) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn stats_filter_by_destination() {
        let trace = Trace::from_events(vec![
            change(5_000, 0, 9, None),
            change(5_000, 0, 8, None),
            change(6_000, 0, 9, Some(1)),
            change(9_000, 0, 8, Some(1)),
        ]);
        let w = switch_overs(&trace, SimTime::from_secs(4));
        let end = SimTime::from_secs(20);
        let s9 = stats_for_dest(&w, n(9), end);
        assert_eq!(s9.count, 1);
        assert!((s9.max_s - 1.0).abs() < 1e-9);
        let s8 = stats_for_dest(&w, n(8), end);
        assert!((s8.max_s - 4.0).abs() < 1e-9);
        let none = stats_for_dest(&w, n(7), end);
        assert_eq!(none.count, 0);
    }
}
