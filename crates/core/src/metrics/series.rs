//! Time-bucketed series: instantaneous throughput (Figure 5) and
//! instantaneous packet delay (Figure 7).
//!
//! Buckets are one second wide and indexed relative to the failure instant
//! (bucket `k` covers `[t_fail + k, t_fail + k + 1)` seconds), matching the
//! paper's normalized time axis.

use netsim::time::SimTime;
use netsim::trace::{Trace, TraceEvent};

/// Computes the bucket index of `time` relative to `t_fail`, if it falls
/// inside `[from_s, to_s)`.
fn bucket_of(time: SimTime, t_fail: SimTime, from_s: i64, to_s: i64) -> Option<i64> {
    let rel_nanos = time.as_nanos() as i64 - t_fail.as_nanos() as i64;
    let bucket = rel_nanos.div_euclid(1_000_000_000);
    (from_s..to_s).contains(&bucket).then_some(bucket)
}

/// Delivered packets per second, relative to the failure.
///
/// Returns one `(second, packets)` entry per bucket in `[from_s, to_s)`.
///
/// # Examples
///
/// ```
/// use convergence::metrics::series::throughput_series;
/// use netsim::trace::Trace;
/// use netsim::time::SimTime;
///
/// let series = throughput_series(&Trace::new(), SimTime::from_secs(50), -10, 40);
/// assert_eq!(series.len(), 50);
/// assert!(series.iter().all(|&(_, count)| count == 0));
/// ```
#[must_use]
pub fn throughput_series(
    trace: &Trace,
    t_fail: SimTime,
    from_s: i64,
    to_s: i64,
) -> Vec<(i64, u64)> {
    assert!(from_s < to_s, "empty bucket range");
    let mut counts = vec![0u64; (to_s - from_s) as usize];
    for event in trace {
        if let TraceEvent::PacketDelivered { time, .. } = event {
            if let Some(bucket) = bucket_of(*time, t_fail, from_s, to_s) {
                counts[(bucket - from_s) as usize] += 1;
            }
        }
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (from_s + i as i64, c))
        .collect()
}

/// Mean end-to-end delay (seconds) of packets *delivered* in each bucket;
/// `None` for buckets with no deliveries.
#[must_use]
pub fn delay_series(
    trace: &Trace,
    t_fail: SimTime,
    from_s: i64,
    to_s: i64,
) -> Vec<(i64, Option<f64>)> {
    assert!(from_s < to_s, "empty bucket range");
    let buckets = (to_s - from_s) as usize;
    let mut sum = vec![0.0f64; buckets];
    let mut count = vec![0u64; buckets];
    for event in trace {
        if let TraceEvent::PacketDelivered { time, sent_at, .. } = event {
            if let Some(bucket) = bucket_of(*time, t_fail, from_s, to_s) {
                let ix = (bucket - from_s) as usize;
                sum[ix] += time.saturating_since(*sent_at).as_secs_f64();
                count[ix] += 1;
            }
        }
    }
    (0..buckets)
        .map(|i| {
            let mean = (count[i] > 0).then(|| sum[i] / count[i] as f64);
            (from_s + i as i64, mean)
        })
        .collect()
}

/// Overall mean delay across all delivered packets, or `None` if nothing
/// was delivered.
#[must_use]
pub fn mean_delay(trace: &Trace) -> Option<f64> {
    let mut sum = 0.0;
    let mut count = 0u64;
    for event in trace {
        if let TraceEvent::PacketDelivered { time, sent_at, .. } = event {
            sum += time.saturating_since(*sent_at).as_secs_f64();
            count += 1;
        }
    }
    (count > 0).then(|| sum / count as f64)
}

/// Averages several runs' series bucket-by-bucket.
///
/// # Panics
///
/// Panics if the runs have differently shaped series.
#[must_use]
pub fn mean_u64_series(series: &[Vec<(i64, u64)>]) -> Vec<(i64, f64)> {
    assert!(!series.is_empty(), "no series to average");
    let len = series[0].len();
    assert!(
        series.iter().all(|s| s.len() == len),
        "series length mismatch"
    );
    (0..len)
        .map(|i| {
            let second = series[0][i].0;
            let total: u64 = series
                .iter()
                .map(|s| {
                    assert_eq!(s[i].0, second, "bucket misalignment");
                    s[i].1
                })
                .sum();
            (second, total as f64 / series.len() as f64)
        })
        .collect()
}

/// Averages delay series bucket-by-bucket, ignoring empty buckets.
#[must_use]
pub fn mean_delay_series(series: &[Vec<(i64, Option<f64>)>]) -> Vec<(i64, Option<f64>)> {
    assert!(!series.is_empty(), "no series to average");
    let len = series[0].len();
    (0..len)
        .map(|i| {
            let second = series[0][i].0;
            let values: Vec<f64> = series.iter().filter_map(|s| s[i].1).collect();
            let mean = (!values.is_empty())
                .then(|| values.iter().sum::<f64>() / values.len() as f64);
            (second, mean)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::ident::{NodeId, PacketId};

    fn delivered(at_ms: u64, sent_ms: u64, id: u64) -> TraceEvent {
        TraceEvent::PacketDelivered {
            time: SimTime::from_millis(at_ms),
            id: PacketId::new(id),
            node: NodeId::new(1),
            hops: 3,
            sent_at: SimTime::from_millis(sent_ms),
        }
    }

    #[test]
    fn throughput_buckets_relative_to_failure() {
        let t_fail = SimTime::from_secs(10);
        let trace = Trace::from_events(vec![
            delivered(8_500, 8_400, 1),  // bucket -2
            delivered(9_999, 9_900, 2),  // bucket -1
            delivered(10_000, 9_950, 3), // bucket 0 (inclusive start)
            delivered(10_999, 10_900, 4),
            delivered(12_000, 11_900, 5), // bucket 2
        ]);
        let series = throughput_series(&trace, t_fail, -2, 3);
        assert_eq!(
            series,
            vec![(-2, 1), (-1, 1), (0, 2), (1, 0), (2, 1)]
        );
    }

    #[test]
    fn out_of_window_deliveries_are_ignored() {
        let t_fail = SimTime::from_secs(10);
        let trace = Trace::from_events(vec![delivered(100_000, 99_000, 1)]);
        let series = throughput_series(&trace, t_fail, -10, 40);
        assert!(series.iter().all(|&(_, c)| c == 0));
    }

    #[test]
    fn delay_series_averages_within_buckets() {
        let t_fail = SimTime::from_secs(1);
        let trace = Trace::from_events(vec![
            delivered(1_100, 1_000, 1), // 0.1 s delay, bucket 0
            delivered(1_900, 1_600, 2), // 0.3 s delay, bucket 0
            delivered(2_500, 2_450, 3), // 0.05 s delay, bucket 1
        ]);
        let series = delay_series(&trace, t_fail, 0, 3);
        assert!((series[0].1.unwrap() - 0.2).abs() < 1e-9);
        assert!((series[1].1.unwrap() - 0.05).abs() < 1e-9);
        assert_eq!(series[2].1, None);
    }

    #[test]
    fn mean_delay_covers_whole_trace() {
        let trace = Trace::from_events(vec![
            delivered(1_100, 1_000, 1),
            delivered(2_300, 2_000, 2),
        ]);
        assert!((mean_delay(&trace).unwrap() - 0.2).abs() < 1e-9);
        assert_eq!(mean_delay(&Trace::new()), None);
    }

    #[test]
    fn series_averaging() {
        let a = vec![(0i64, 2u64), (1, 4)];
        let b = vec![(0i64, 4u64), (1, 0)];
        assert_eq!(mean_u64_series(&[a, b]), vec![(0, 3.0), (1, 2.0)]);

        let d1 = vec![(0i64, Some(0.2)), (1, None)];
        let d2 = vec![(0i64, Some(0.4)), (1, None)];
        let merged = mean_delay_series(&[d1, d2]);
        assert!((merged[0].1.unwrap() - 0.3).abs() < 1e-9);
        assert_eq!(merged[1].1, None);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_series_panic() {
        let _ = mean_u64_series(&[vec![(0, 1)], vec![(0, 1), (1, 2)]]);
    }
}
