//! One-line-per-run scalar summaries.

use serde::{Deserialize, Serialize};

use crate::metrics::convergence::{path_history, routing_convergence_time};
use crate::metrics::drops::{count_delivered, count_drops, DropCounts};
use crate::metrics::loops::analyze_loops;
use crate::metrics::series::mean_delay;
use crate::metrics::stretch::{flow_stretch, mean_stretch};
use crate::metrics::switchover::{stats_for_dest, switch_overs};
use crate::metrics::MetricsError;
use crate::runner::RunResult;

/// Every scalar metric the paper reports, for one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Packets the sources injected.
    pub injected: u64,
    /// Packets delivered to their receivers.
    pub delivered: u64,
    /// Drops by cause.
    pub drops: DropCounts,
    /// Fig. 6b: network routing convergence time (s, from detection).
    pub routing_convergence_s: f64,
    /// Fig. 6a: forwarding-path convergence delay (s, from detection) for
    /// the first flow.
    pub forwarding_convergence_s: f64,
    /// Distinct transient forwarding paths for the first flow.
    pub transient_paths: usize,
    /// Packets that entered a forwarding loop.
    pub looped_packets: u64,
    /// Looping packets that still got delivered.
    pub loop_escapes: u64,
    /// Mean end-to-end delay over all delivered packets (s).
    pub mean_delay_s: Option<f64>,
    /// §4.1 path switch-over: longest no-route window for the flow's
    /// destination at any router (s).
    pub max_switchover_s: f64,
    /// Mean multiplicative path stretch of the flow's delivered packets
    /// (1.0 = every packet took a shortest path).
    pub mean_stretch: f64,
    /// Routing-protocol messages offered to links.
    pub control_messages: u64,
    /// Routing-protocol bytes offered to links.
    pub control_bytes: u64,
}

impl RunSummary {
    /// Fraction of injected packets that arrived.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.injected as f64
    }
}

/// Computes the full summary of a finished run.
///
/// # Errors
///
/// [`MetricsError::UnreachableDestination`] if the first flow's receiver
/// was unreachable even before the failure; never for results produced by
/// [`run`](crate::runner::run), whose warm-up check rejects such flows.
///
/// # Examples
///
/// ```
/// use convergence::experiment::ExperimentConfig;
/// use convergence::metrics::summary::summarize;
/// use convergence::protocols::ProtocolKind;
/// use convergence::runner::run;
/// use topology::mesh::MeshDegree;
///
/// let result = run(&ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D6, 2))?;
/// let summary = summarize(&result)?;
/// assert!(summary.delivery_ratio() > 0.9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn summarize(result: &RunResult) -> Result<RunSummary, MetricsError> {
    let drops = count_drops(&result.trace);
    let loops = analyze_loops(&result.trace);
    let flow = result.flows[0];
    let history = path_history(
        &result.trace,
        result.graph.num_nodes(),
        flow.sender,
        flow.receiver,
        result.t_fail,
    );
    let windows = switch_overs(&result.trace, result.t_fail);
    let run_end = result
        .trace
        .events()
        .last()
        .map_or(result.t_fail, netsim::trace::TraceEvent::time);
    let switchover = stats_for_dest(&windows, flow.receiver, run_end);
    let stretch = flow_stretch(
        &result.trace,
        &result.graph,
        &result.failure.edges,
        flow.sender,
        flow.receiver,
        result.t_fail,
    )?;
    Ok(RunSummary {
        injected: result.stats.packets_injected,
        delivered: count_delivered(&result.trace),
        drops,
        routing_convergence_s: routing_convergence_time(
            &result.trace,
            result.t_fail,
            result.detection,
        ),
        forwarding_convergence_s: history.convergence_delay(result.t_fail, result.detection),
        transient_paths: history.transient_path_count(),
        looped_packets: loops.looped_packets() as u64,
        loop_escapes: loops.escaped() as u64,
        mean_delay_s: mean_delay(&result.trace),
        max_switchover_s: switchover.max_s,
        mean_stretch: mean_stretch(&stretch),
        control_messages: result.stats.control_messages_sent,
        control_bytes: result.stats.control_bytes_sent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_ratio_handles_zero_injection() {
        let summary = RunSummary {
            injected: 0,
            delivered: 0,
            drops: DropCounts::default(),
            routing_convergence_s: 0.0,
            forwarding_convergence_s: 0.0,
            transient_paths: 0,
            looped_packets: 0,
            loop_escapes: 0,
            mean_delay_s: None,
            max_switchover_s: 0.0,
            mean_stretch: 1.0,
            control_messages: 0,
            control_bytes: 0,
        };
        assert_eq!(summary.delivery_ratio(), 1.0);
    }
}
