//! Single-pass streaming computation of [`RunSummary`].
//!
//! [`summarize`](crate::metrics::summary::summarize) makes seven
//! independent passes over a run's trace and needs the whole
//! [`Trace`](netsim::trace::Trace) alive while it works. For sweeps that
//! only need per-run scalars (every figure's aggregation path) that is
//! wasteful twice over: CPU, because the trace is scanned repeatedly, and
//! memory, because a 100-run sweep keeps 100 full traces alive until
//! aggregation. [`SummaryObserver`] recomputes every metric as an online
//! fold — one `observe` call per [`TraceEvent`], in trace order — so a
//! sweep worker can fold a finished run and immediately discard it.
//!
//! The observer is **not** an approximation: for every trace produced by
//! [`run`](crate::runner::run) it yields a [`RunSummary`] exactly equal
//! (including float bit-patterns — summation orders are preserved) to the
//! trace-based oracle. `summarize` remains the reference implementation;
//! the equality is enforced by tests over every protocol family.

use std::collections::{BTreeMap, BTreeSet};

use netsim::dense::DenseMap;
use netsim::ident::{NodeId, PacketId};
use netsim::packet::DropReason;
use netsim::simulator::SimStats;
use netsim::time::{SimDuration, SimTime};
use netsim::trace::TraceEvent;
use topology::graph::{Edge, Graph};
use topology::shortest_path::bfs;

use crate::metrics::convergence::{FibReplay, PathOutcome};
use crate::metrics::MetricsError;
use crate::metrics::drops::DropCounts;
use crate::metrics::summary::RunSummary;
use crate::runner::{Flow, RunResult};

/// In-flight per-packet loop-forensics state (dropped as soon as the
/// packet resolves, unlike the post-hoc analyzer which retains every
/// packet's full hop log until the end).
#[derive(Default)]
struct PacketLog {
    visited: Vec<NodeId>,
    looped: bool,
}

/// Incrementally folds a run's [`TraceEvent`]s into a [`RunSummary`].
///
/// Feed events in trace (time) order via [`observe`](Self::observe), then
/// call [`finish`](Self::finish) with the run's engine counters.
pub struct SummaryObserver {
    flow: Flow,
    t_fail: SimTime,
    detection: SimDuration,
    // Shortest-path baselines for stretch (pre-/post-failure epochs).
    dist_before: u32,
    dist_after: u32,
    // Drops and delivery.
    drops: DropCounts,
    delivered: u64,
    // Mean end-to-end delay.
    delay_sum: f64,
    delay_count: u64,
    // Routing convergence: the last post-failure FIB change anywhere.
    last_route_change: Option<SimTime>,
    // Forwarding-path history of the first flow.
    replay: FibReplay,
    baseline_done: bool,
    last_outcome: Option<PathOutcome>,
    transient_paths: usize,
    last_path_change: SimTime,
    // Loop forensics (in-flight packets only).
    packet_logs: BTreeMap<PacketId, PacketLog>,
    looped_packets: u64,
    loop_escapes: u64,
    // Switch-over windows for the flow's destination, keyed by node.
    open_windows: DenseMap<SimTime>,
    max_switchover_s: f64,
    // Stretch of the flow's delivered packets.
    flow_packets: BTreeSet<PacketId>,
    stretch_sum: f64,
    stretch_count: u64,
    // End of the run = timestamp of the last event seen.
    last_event_time: Option<SimTime>,
}

impl SummaryObserver {
    /// Creates an observer for one run's context: the topology, the edges
    /// that fail at `t_fail`, the (first) flow being measured and the
    /// configured failure-detection latency.
    ///
    /// # Errors
    ///
    /// [`MetricsError::UnreachableDestination`] if the flow's receiver is
    /// unreachable even before the failure (mirroring the trace-based
    /// stretch oracle).
    pub fn new(
        graph: &Graph,
        failed: &[Edge],
        flow: Flow,
        t_fail: SimTime,
        detection: SimDuration,
    ) -> Result<Self, MetricsError> {
        let dist_before = bfs(graph, flow.sender)
            .distance(flow.receiver)
            .ok_or(MetricsError::UnreachableDestination {
                src: flow.sender,
                dst: flow.receiver,
            })?;
        let mut degraded = graph.clone();
        for edge in failed {
            degraded = degraded.without_edge(*edge);
        }
        let dist_after = bfs(&degraded, flow.sender)
            .distance(flow.receiver)
            .unwrap_or(dist_before);
        Ok(SummaryObserver {
            flow,
            t_fail,
            detection,
            dist_before,
            dist_after,
            drops: DropCounts::default(),
            delivered: 0,
            delay_sum: 0.0,
            delay_count: 0,
            last_route_change: None,
            replay: FibReplay::new(graph.num_nodes()),
            baseline_done: false,
            last_outcome: None,
            transient_paths: 0,
            last_path_change: t_fail,
            packet_logs: BTreeMap::new(),
            looped_packets: 0,
            loop_escapes: 0,
            open_windows: DenseMap::new(),
            max_switchover_s: 0.0,
            flow_packets: BTreeSet::new(),
            stretch_sum: 0.0,
            stretch_count: 0,
            last_event_time: None,
        })
    }

    /// Folds one trace event. Must be called in trace (time) order.
    pub fn observe(&mut self, event: &TraceEvent) {
        let time = event.time();
        self.last_event_time = Some(time);

        // Forwarding-path history: pre-failure events only build FIB
        // state; the steady pre-failure path is walked once, the first
        // time the clock reaches `t_fail`.
        if !self.baseline_done && time >= self.t_fail {
            self.last_outcome = Some(self.replay.walk(self.flow.sender, self.flow.receiver));
            self.baseline_done = true;
        }
        if let TraceEvent::RouteChanged { .. } = event {
            self.replay.apply(event);
            if self.baseline_done {
                let outcome = self.replay.walk(self.flow.sender, self.flow.receiver);
                if self.last_outcome.as_ref() != Some(&outcome) {
                    self.transient_paths += 1;
                    self.last_outcome = Some(outcome);
                    self.last_path_change = time;
                }
            }
        }

        match event {
            TraceEvent::PacketInjected { id, src, dst, .. } => {
                self.packet_logs.entry(*id).or_default().visited.push(*src);
                if *src == self.flow.sender && *dst == self.flow.receiver {
                    self.flow_packets.insert(*id);
                }
            }
            TraceEvent::PacketForwarded { id, next_hop, .. } => {
                let log = self.packet_logs.entry(*id).or_default();
                if !log.looped && log.visited.contains(next_hop) {
                    log.looped = true;
                    self.looped_packets += 1;
                }
                log.visited.push(*next_hop);
            }
            TraceEvent::PacketDelivered {
                time,
                id,
                hops,
                sent_at,
                ..
            } => {
                self.delivered += 1;
                self.delay_sum += time.saturating_since(*sent_at).as_secs_f64();
                self.delay_count += 1;
                if let Some(log) = self.packet_logs.remove(id) {
                    if log.looped {
                        self.loop_escapes += 1;
                    }
                }
                if self.flow_packets.contains(id) {
                    let optimal = if *time < self.t_fail {
                        self.dist_before
                    } else {
                        self.dist_after
                    };
                    self.stretch_sum += f64::from(*hops) / f64::from(optimal.max(1));
                    self.stretch_count += 1;
                }
            }
            TraceEvent::PacketDropped { id, reason, .. } => {
                match reason {
                    DropReason::NoRoute => self.drops.no_route += 1,
                    DropReason::TtlExpired => self.drops.ttl_expired += 1,
                    DropReason::LinkDown => self.drops.link_down += 1,
                    DropReason::QueueOverflow => self.drops.queue_overflow += 1,
                    DropReason::Impaired => self.drops.impaired += 1,
                }
                self.packet_logs.remove(id);
            }
            TraceEvent::RouteChanged {
                time,
                node,
                dest,
                new,
                ..
            } => {
                if *time >= self.t_fail {
                    self.last_route_change = Some(*time);
                }
                if *dest == self.flow.receiver {
                    match new {
                        None => {
                            if *time >= self.t_fail {
                                self.open_windows.get_or_insert_with(*node, || *time);
                            }
                        }
                        Some(_) => {
                            if let Some(began) = self.open_windows.remove(*node) {
                                let dur = time.saturating_since(began).as_secs_f64();
                                self.max_switchover_s = self.max_switchover_s.max(dur);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    /// Closes every open fold and produces the summary.
    #[must_use]
    pub fn finish(self, stats: &SimStats) -> RunSummary {
        let detect_at = self.t_fail + self.detection;
        let run_end = self.last_event_time.unwrap_or(self.t_fail);
        // Windows never closed by a re-install run to the end of the run.
        let mut max_switchover_s = self.max_switchover_s;
        for (_, began) in self.open_windows.iter() {
            max_switchover_s = max_switchover_s.max(run_end.saturating_since(*began).as_secs_f64());
        }
        RunSummary {
            injected: stats.packets_injected,
            delivered: self.delivered,
            drops: self.drops,
            routing_convergence_s: self
                .last_route_change
                .map_or(0.0, |t| t.saturating_since(detect_at).as_secs_f64()),
            forwarding_convergence_s: if self.last_path_change > self.t_fail {
                self.last_path_change.saturating_since(detect_at).as_secs_f64()
            } else {
                0.0
            },
            transient_paths: self.transient_paths,
            looped_packets: self.looped_packets,
            loop_escapes: self.loop_escapes,
            mean_delay_s: (self.delay_count > 0).then(|| self.delay_sum / self.delay_count as f64),
            max_switchover_s,
            mean_stretch: if self.stretch_count == 0 {
                1.0
            } else {
                self.stretch_sum / self.stretch_count as f64
            },
            control_messages: stats.control_messages_sent,
            control_bytes: stats.control_bytes_sent,
        }
    }
}

/// Computes a finished run's summary through the streaming observer.
///
/// Produces a value equal to
/// [`summarize`](crate::metrics::summary::summarize) in a single pass
/// over the trace; used by the streaming sweep mode, where the
/// [`RunResult`] (and its trace) is dropped right after this call.
///
/// # Errors
///
/// See [`SummaryObserver::new`].
pub fn summarize_streaming(result: &RunResult) -> Result<RunSummary, MetricsError> {
    let mut observer = SummaryObserver::new(
        &result.graph,
        &result.failure.edges,
        result.flows[0],
        result.t_fail,
        result.detection,
    )?;
    for event in &result.trace {
        observer.observe(event);
    }
    Ok(observer.finish(&result.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::metrics::summary::summarize;
    use crate::protocols::ProtocolKind;
    use crate::runner::run;
    use topology::mesh::MeshDegree;

    #[test]
    fn streaming_equals_trace_oracle_on_a_paper_run() {
        let result = run(&ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 3)).unwrap();
        assert_eq!(
            summarize_streaming(&result).unwrap(),
            summarize(&result).unwrap()
        );
    }

    #[test]
    fn streaming_matches_on_a_low_degree_run() {
        let result = run(&ExperimentConfig::paper(ProtocolKind::Rip, MeshDegree::D3, 5)).unwrap();
        let stream = summarize_streaming(&result).unwrap();
        let oracle = summarize(&result).unwrap();
        assert_eq!(stream, oracle);
        // The fold must keep only in-flight packet state, never the trace.
        assert!(stream.injected > 0);
    }
}
