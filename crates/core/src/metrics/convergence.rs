//! Convergence timing (Figure 6) and transient-path enumeration.
//!
//! *Network routing convergence time* (Fig. 6b) ends when the last FIB
//! anywhere stops changing. *Forwarding-path convergence delay* (Fig. 6a)
//! ends earlier: when the specific sender→receiver path stabilizes, even if
//! remote routers are still churning — the distinction §5.4 draws.

use netsim::ident::NodeId;
use netsim::time::{SimDuration, SimTime};
use netsim::trace::{Trace, TraceEvent};

/// A snapshot-walk outcome (mirrors the simulator's live walker, but over
/// replayed FIB state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathOutcome {
    /// A complete loop-free path.
    Complete(Vec<NodeId>),
    /// The walk revisited a node.
    Loop(Vec<NodeId>),
    /// A router had no entry.
    Broken(Vec<NodeId>),
}

/// Replays `RouteChanged` events to reconstruct any node's FIB at any
/// instant.
#[derive(Debug)]
pub struct FibReplay {
    fibs: Vec<Vec<Option<NodeId>>>,
}

impl FibReplay {
    /// An all-empty FIB state for `num_nodes` routers.
    #[must_use]
    pub fn new(num_nodes: usize) -> Self {
        FibReplay {
            fibs: vec![vec![None; num_nodes]; num_nodes],
        }
    }

    /// Applies one trace event (non-route events are ignored).
    pub fn apply(&mut self, event: &TraceEvent) {
        if let TraceEvent::RouteChanged { node, dest, new, .. } = event {
            self.fibs[node.index()][dest.index()] = *new;
        }
    }

    /// The replayed next hop at `node` toward `dest`.
    #[must_use]
    pub fn next_hop(&self, node: NodeId, dest: NodeId) -> Option<NodeId> {
        self.fibs[node.index()][dest.index()]
    }

    /// Walks the replayed FIBs from `src` toward `dst`.
    #[must_use]
    pub fn walk(&self, src: NodeId, dst: NodeId) -> PathOutcome {
        let mut path = vec![src];
        let mut visited = vec![false; self.fibs.len()];
        visited[src.index()] = true;
        let mut at = src;
        while at != dst {
            match self.next_hop(at, dst) {
                None => return PathOutcome::Broken(path),
                Some(next) => {
                    path.push(next);
                    if visited[next.index()] {
                        return PathOutcome::Loop(path);
                    }
                    visited[next.index()] = true;
                    at = next;
                }
            }
        }
        PathOutcome::Complete(path)
    }
}

/// Network routing convergence time (Fig. 6b): seconds from failure
/// detection to the last FIB change anywhere. Zero if nothing changed
/// after the failure.
#[must_use]
pub fn routing_convergence_time(trace: &Trace, t_fail: SimTime, detection: SimDuration) -> f64 {
    let detect_at = t_fail + detection;
    let last = trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RouteChanged { time, .. } if *time >= t_fail => Some(*time),
            _ => None,
        })
        .next_back();
    match last {
        Some(t) => t.saturating_since(detect_at).as_secs_f64(),
        None => 0.0,
    }
}

/// The forwarding-path history of one flow.
#[derive(Debug, Clone)]
pub struct PathHistory {
    /// `(when, outcome)` — the path after each change, starting with the
    /// pre-failure steady path at `t_fail`.
    pub timeline: Vec<(SimTime, PathOutcome)>,
}

impl PathHistory {
    /// Forwarding-path convergence delay (Fig. 6a): seconds from failure
    /// detection until the path last changed. Zero if it never changed.
    #[must_use]
    pub fn convergence_delay(&self, t_fail: SimTime, detection: SimDuration) -> f64 {
        let detect_at = t_fail + detection;
        self.timeline
            .last()
            .filter(|(t, _)| *t > t_fail)
            .map_or(0.0, |(t, _)| t.saturating_since(detect_at).as_secs_f64())
    }

    /// Number of distinct transient paths between failure and convergence
    /// (excluding the pre-failure path).
    #[must_use]
    pub fn transient_path_count(&self) -> usize {
        self.timeline.len().saturating_sub(1)
    }

    /// The final outcome, or `None` for an empty (hand-built) timeline —
    /// [`path_history`] always seeds the initial path.
    #[must_use]
    pub fn final_outcome(&self) -> Option<&PathOutcome> {
        self.timeline.last().map(|(_, outcome)| outcome)
    }
}

/// Reconstructs the forwarding-path history of `src → dst` from a trace.
///
/// The first timeline entry is the steady pre-failure path (stamped
/// `t_fail`); each subsequent entry is appended whenever a FIB change
/// anywhere alters the walked path.
#[must_use]
pub fn path_history(
    trace: &Trace,
    num_nodes: usize,
    src: NodeId,
    dst: NodeId,
    t_fail: SimTime,
) -> PathHistory {
    let mut replay = FibReplay::new(num_nodes);
    let mut events = trace.iter().peekable();
    // Build the pre-failure state.
    while let Some(e) = events.next_if(|e| e.time() < t_fail) {
        replay.apply(e);
    }
    let mut last_outcome = replay.walk(src, dst);
    let mut timeline = vec![(t_fail, last_outcome.clone())];
    for event in events {
        if !matches!(event, TraceEvent::RouteChanged { .. }) {
            continue;
        }
        replay.apply(event);
        let outcome = replay.walk(src, dst);
        if outcome != last_outcome {
            timeline.push((event.time(), outcome.clone()));
            last_outcome = outcome;
        }
    }
    PathHistory { timeline }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn route(at_ms: u64, node: u32, dest: u32, new: Option<u32>) -> TraceEvent {
        TraceEvent::RouteChanged {
            time: SimTime::from_millis(at_ms),
            node: n(node),
            dest: n(dest),
            old: None,
            new: new.map(n),
        }
    }

    /// Line 0-1-2 with dest 2; at 10 s node 0 loses its route, at 12 s it
    /// regains a (suboptimal then final) path.
    fn sample_trace() -> Trace {
        Trace::from_events(vec![
            route(1_000, 0, 2, Some(1)),
            route(1_000, 1, 2, Some(2)),
            route(10_050, 1, 2, None),    // after failure detection
            route(10_050, 0, 2, None),    // upstream loses too
            route(12_000, 1, 2, Some(2)), // repair
            route(12_500, 0, 2, Some(1)),
        ])
    }

    #[test]
    fn replay_walks_paths() {
        let mut replay = FibReplay::new(3);
        replay.apply(&route(1, 0, 2, Some(1)));
        replay.apply(&route(2, 1, 2, Some(2)));
        assert_eq!(
            replay.walk(n(0), n(2)),
            PathOutcome::Complete(vec![n(0), n(1), n(2)])
        );
        replay.apply(&route(3, 1, 2, None));
        assert_eq!(replay.walk(n(0), n(2)), PathOutcome::Broken(vec![n(0), n(1)]));
        replay.apply(&route(4, 1, 2, Some(0)));
        assert_eq!(
            replay.walk(n(0), n(2)),
            PathOutcome::Loop(vec![n(0), n(1), n(0)])
        );
    }

    #[test]
    fn routing_convergence_measures_to_last_change() {
        let trace = sample_trace();
        let t_fail = SimTime::from_secs(10);
        let detect = SimDuration::from_millis(50);
        let secs = routing_convergence_time(&trace, t_fail, detect);
        // Last change at 12.5 s, detection at 10.05 s.
        assert!((secs - 2.45).abs() < 1e-9);
    }

    #[test]
    fn routing_convergence_zero_without_changes() {
        let trace = Trace::from_events(vec![route(1_000, 0, 2, Some(1))]);
        let secs = routing_convergence_time(
            &trace,
            SimTime::from_secs(10),
            SimDuration::from_millis(50),
        );
        assert_eq!(secs, 0.0);
    }

    #[test]
    fn path_history_tracks_break_and_repair() {
        let trace = sample_trace();
        let history = path_history(&trace, 3, n(0), n(2), SimTime::from_secs(10));
        // Steady, broken-at-1, broken-at-0, repaired-via-1... the walk from
        // node 0: after 10.05 both lose routes; walking from 0 breaks at 0
        // immediately, so two distinct outcomes then repair steps.
        assert!(matches!(history.timeline[0].1, PathOutcome::Complete(_)));
        assert!(history.transient_path_count() >= 2);
        assert!(matches!(history.final_outcome(), Some(PathOutcome::Complete(_))));
        let delay = history.convergence_delay(
            SimTime::from_secs(10),
            SimDuration::from_millis(50),
        );
        assert!((delay - 2.45).abs() < 1e-9);
    }

    #[test]
    fn unchanged_path_has_zero_delay() {
        let trace = Trace::from_events(vec![
            route(1_000, 0, 2, Some(1)),
            route(1_000, 1, 2, Some(2)),
        ]);
        let history = path_history(&trace, 3, n(0), n(2), SimTime::from_secs(10));
        assert_eq!(history.transient_path_count(), 0);
        assert_eq!(
            history.convergence_delay(SimTime::from_secs(10), SimDuration::from_millis(50)),
            0.0
        );
    }
}
