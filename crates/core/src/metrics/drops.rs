//! Packet-drop accounting (Figures 3 and 4).

use netsim::packet::DropReason;
use netsim::trace::{Trace, TraceEvent};
use serde::{Deserialize, Serialize};

/// Packet drops by cause over a whole run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropCounts {
    /// Router had no FIB entry (§5.1, Figure 3).
    pub no_route: u64,
    /// TTL ran out in a transient loop (§5.2, Figure 4).
    pub ttl_expired: u64,
    /// Transmitted onto a failed-but-undetected link.
    pub link_down: u64,
    /// Drop-tail queue overflow.
    pub queue_overflow: u64,
    /// Random loss injected by a link impairment (fault-injection runs;
    /// always zero in the paper-reproduction presets).
    pub impaired: u64,
}

impl DropCounts {
    /// Total drops of all causes.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.no_route + self.ttl_expired + self.link_down + self.queue_overflow + self.impaired
    }
}

/// Tallies drops in a trace.
///
/// # Examples
///
/// ```
/// use convergence::metrics::drops::count_drops;
/// use netsim::trace::Trace;
///
/// let counts = count_drops(&Trace::new());
/// assert_eq!(counts.total(), 0);
/// ```
#[must_use]
pub fn count_drops(trace: &Trace) -> DropCounts {
    let mut counts = DropCounts::default();
    for event in trace {
        if let TraceEvent::PacketDropped { reason, .. } = event {
            match reason {
                DropReason::NoRoute => counts.no_route += 1,
                DropReason::TtlExpired => counts.ttl_expired += 1,
                DropReason::LinkDown => counts.link_down += 1,
                DropReason::QueueOverflow => counts.queue_overflow += 1,
                DropReason::Impaired => counts.impaired += 1,
            }
        }
    }
    counts
}

/// Counts delivered packets in a trace.
#[must_use]
pub fn count_delivered(trace: &Trace) -> u64 {
    trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::PacketDelivered { .. }))
        .count() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::ident::{NodeId, PacketId};
    use netsim::time::SimTime;

    fn drop_event(reason: DropReason, at_ms: u64) -> TraceEvent {
        TraceEvent::PacketDropped {
            time: SimTime::from_millis(at_ms),
            id: PacketId::new(at_ms),
            node: NodeId::new(0),
            reason,
            sent_at: SimTime::ZERO,
        }
    }

    #[test]
    fn counts_split_by_reason() {
        let trace = Trace::from_events(vec![
            drop_event(DropReason::NoRoute, 1),
            drop_event(DropReason::NoRoute, 2),
            drop_event(DropReason::TtlExpired, 3),
            drop_event(DropReason::LinkDown, 4),
            drop_event(DropReason::QueueOverflow, 5),
            drop_event(DropReason::Impaired, 6),
            TraceEvent::PacketDelivered {
                time: SimTime::from_millis(7),
                id: PacketId::new(99),
                node: NodeId::new(1),
                hops: 4,
                sent_at: SimTime::ZERO,
            },
        ]);
        let counts = count_drops(&trace);
        assert_eq!(counts.no_route, 2);
        assert_eq!(counts.ttl_expired, 1);
        assert_eq!(counts.link_down, 1);
        assert_eq!(counts.queue_overflow, 1);
        assert_eq!(counts.impaired, 1);
        assert_eq!(counts.total(), 6);
        assert_eq!(count_delivered(&trace), 1);
    }

    #[test]
    fn empty_trace_counts_zero() {
        let trace = Trace::new();
        assert_eq!(count_drops(&trace), DropCounts::default());
        assert_eq!(count_delivered(&trace), 0);
    }
}
