//! # convergence — the study's experiment harness
//!
//! This crate is the paper's primary contribution, reimplemented as a
//! library: configure a topology, a protocol and a failure; run the
//! deterministic simulation (warm-up → steady-state verification → CBR
//! traffic → failure injection → drain); then compute every metric the
//! evaluation section plots — drop counts by cause, TTL expirations,
//! instantaneous throughput and delay, forwarding-path and routing
//! convergence times, and per-packet loop forensics.
//!
//! ```no_run
//! use convergence::prelude::*;
//! use topology::mesh::MeshDegree;
//!
//! let cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D5, 42);
//! let result = run(&cfg)?;
//! let summary = summarize(&result)?;
//! println!("delivered {}/{} packets", summary.delivered, summary.injected);
//! # Ok::<(), convergence::runner::RunError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod experiment;
pub mod failure;
pub mod metrics;
pub mod parallel;
pub mod protocols;
pub mod report;
pub mod runner;
pub mod transport;

/// The most commonly used items in one import.
pub mod prelude {
    pub use crate::aggregate::{
        aggregate_point, failed_telemetry, protocol_label, run_many, run_many_jobs,
        run_many_jobs_observed, run_sweep, run_sweep_with, run_telemetry, Aggregate,
        CompletedRun, FailedRun, PointSummary, RetryPolicy, SweepMode, SweepOptions,
        SweepOutcome,
    };
    pub use crate::experiment::{
        ExperimentConfig, TopologySpec, TrafficConfig, TrafficMode, WarmupPolicy, WatchdogPolicy,
    };
    pub use crate::failure::{
        FailurePlan, FailureSelection, ImpairmentAction, RestartAction, SelectionError,
    };
    pub use netsim::impairment::Impairment;
    pub use crate::metrics::streaming::{summarize_streaming, SummaryObserver};
    pub use crate::metrics::summary::{summarize, RunSummary};
    pub use crate::metrics::MetricsError;
    pub use crate::parallel::{par_map_indexed, par_map_indexed_with};
    pub use crate::protocols::ProtocolKind;
    pub use crate::report::Table;
    pub use crate::runner::{run, run_observed, Flow, RunError, RunResult};
    pub use obs::telemetry::{render_jsonl, RunTelemetry};
    pub use crate::transport::{GoBackNConfig, WindowFlowReport};
}
