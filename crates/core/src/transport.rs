//! A window-limited ARQ transport (go-back-N), for the paper's §6
//! "end-to-end TCP performance during routing convergence" future work.
//!
//! The design follows the transport used by the prior study the paper
//! cites (\[25\] Shankar et al.): "a simple flow control with a maximal
//! window size and retransmission after timeout" — a fixed window,
//! cumulative ACKs, and go-back-N retransmission on a fixed RTO. That is
//! deliberately simpler than full TCP (no slow start, no RTT estimation),
//! isolating the interaction between *reliability mechanisms* and
//! *routing convergence*.

use netsim::app::AppAgent;
use netsim::ident::NodeId;
use netsim::packet::Packet;
use netsim::protocol::{TimerId, TimerToken};
use netsim::simulator::AppContext;
use netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Go-back-N parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoBackNConfig {
    /// Maximum unacknowledged packets in flight.
    pub window: usize,
    /// Initial retransmission timeout.
    pub rto: SimDuration,
    /// Ceiling for the exponentially backed-off timeout. Consecutive
    /// timeouts without ACK progress double the effective RTO up to this
    /// cap; any cumulative-ACK advance resets it to [`GoBackNConfig::rto`].
    /// Set equal to `rto` to recover the original fixed-RTO transport.
    pub rto_cap: SimDuration,
    /// Total data packets to transfer.
    pub total_packets: u64,
    /// Data packet payload size.
    pub packet_bytes: u32,
    /// ACK packet size.
    pub ack_bytes: u32,
    /// TTL for both directions.
    pub ttl: u8,
}

impl Default for GoBackNConfig {
    fn default() -> Self {
        GoBackNConfig {
            window: 8,
            rto: SimDuration::from_secs(1),
            rto_cap: SimDuration::from_secs(32),
            total_packets: 1000,
            packet_bytes: 1000,
            ack_bytes: 40,
            ttl: netsim::packet::DEFAULT_TTL,
        }
    }
}

/// Tag encoding: `flow << 48 | is_ack << 40 | seq`.
mod tag {
    pub fn data(flow: u16, seq: u64) -> u64 {
        assert!(seq < (1 << 40), "sequence number overflow");
        (u64::from(flow) << 48) | seq
    }

    pub fn ack(flow: u16, cumulative: u64) -> u64 {
        assert!(cumulative < (1 << 40), "ack number overflow");
        (u64::from(flow) << 48) | (1 << 40) | cumulative
    }

    pub fn decode(tag: u64) -> (u16, bool, u64) {
        (
            (tag >> 48) as u16,
            (tag >> 40) & 1 == 1,
            tag & ((1 << 40) - 1),
        )
    }
}

/// What a finished source agent reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowFlowReport {
    /// Cumulative in-order acknowledged packets over time.
    pub progress: Vec<(SimTime, u64)>,
    /// Data packets retransmitted.
    pub retransmissions: u64,
    /// When the transfer finished, if it did.
    pub completed_at: Option<SimTime>,
    /// The configured transfer size.
    pub total: u64,
}

impl WindowFlowReport {
    /// Cumulative acked packets at time `t` (step interpolation).
    #[must_use]
    pub fn acked_at(&self, t: SimTime) -> u64 {
        self.progress
            .iter()
            .rev()
            .find(|&&(when, _)| when <= t)
            .map_or(0, |&(_, n)| n)
    }

    /// Goodput (packets/s) in the window `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    #[must_use]
    pub fn goodput(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(from < to, "empty goodput window");
        let span = to.saturating_since(from).as_secs_f64();
        (self.acked_at(to) - self.acked_at(from)) as f64 / span
    }
}

const TIMER_RTO: u64 = 1;

/// The sending endpoint of a go-back-N flow.
#[derive(Debug)]
pub struct GoBackNSource {
    config: GoBackNConfig,
    peer: NodeId,
    flow: u16,
    base: u64,
    next_seq: u64,
    current_rto: SimDuration,
    rto_timer: Option<TimerId>,
    progress: Vec<(SimTime, u64)>,
    retransmissions: u64,
    completed_at: Option<SimTime>,
}

impl GoBackNSource {
    /// Creates a source that will push `config.total_packets` to `peer`.
    #[must_use]
    pub fn new(config: GoBackNConfig, peer: NodeId, flow: u16) -> Self {
        GoBackNSource {
            config,
            peer,
            flow,
            base: 0,
            next_seq: 0,
            current_rto: config.rto,
            rto_timer: None,
            progress: Vec::new(),
            retransmissions: 0,
            completed_at: None,
        }
    }

    /// The report of everything that happened (read after the run via
    /// [`netsim::Simulator::take_app`] + downcast).
    #[must_use]
    pub fn report(&self) -> WindowFlowReport {
        WindowFlowReport {
            progress: self.progress.clone(),
            retransmissions: self.retransmissions,
            completed_at: self.completed_at,
            total: self.config.total_packets,
        }
    }

    fn send_window(&mut self, ctx: &mut AppContext<'_>) {
        while self.next_seq < self.base + self.config.window as u64
            && self.next_seq < self.config.total_packets
        {
            ctx.send_data(
                self.peer,
                self.config.packet_bytes,
                self.config.ttl,
                tag::data(self.flow, self.next_seq),
            );
            self.next_seq += 1;
        }
        self.arm_rto(ctx);
    }

    fn arm_rto(&mut self, ctx: &mut AppContext<'_>) {
        if let Some(old) = self.rto_timer.take() {
            ctx.cancel_timer(old);
        }
        if self.base < self.config.total_packets {
            self.rto_timer =
                Some(ctx.set_timer(self.current_rto, TimerToken::compose(TIMER_RTO, 0)));
        }
    }
}

impl AppAgent for GoBackNSource {
    fn name(&self) -> &'static str {
        "gbn-source"
    }

    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        self.progress.push((ctx.now(), 0));
        self.send_window(ctx);
    }

    fn on_packet(&mut self, ctx: &mut AppContext<'_>, packet: &Packet) {
        let (flow, is_ack, cumulative) = tag::decode(packet.tag);
        if flow != self.flow || !is_ack || cumulative <= self.base {
            return;
        }
        self.base = cumulative;
        self.current_rto = self.config.rto;
        self.progress.push((ctx.now(), self.base));
        if self.base >= self.config.total_packets {
            self.completed_at = Some(ctx.now());
            if let Some(t) = self.rto_timer.take() {
                ctx.cancel_timer(t);
            }
            return;
        }
        self.send_window(ctx);
    }

    fn on_timer(&mut self, ctx: &mut AppContext<'_>, token: TimerToken) {
        debug_assert_eq!(token.kind(), TIMER_RTO);
        self.rto_timer = None;
        // Go-back-N: resend the whole outstanding window.
        for seq in self.base..self.next_seq {
            ctx.send_data(
                self.peer,
                self.config.packet_bytes,
                self.config.ttl,
                tag::data(self.flow, seq),
            );
            self.retransmissions += 1;
        }
        // A lost window means the path is likely down; back off so the
        // retransmit storm does not feed any transient forwarding loop.
        self.current_rto = (self.current_rto * 2).min(self.config.rto_cap);
        self.arm_rto(ctx);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// The receiving endpoint: accepts in-order data, sends cumulative ACKs.
#[derive(Debug)]
pub struct GoBackNSink {
    config: GoBackNConfig,
    peer: NodeId,
    flow: u16,
    expected: u64,
}

impl GoBackNSink {
    /// Creates the sink for a flow from `peer`.
    #[must_use]
    pub fn new(config: GoBackNConfig, peer: NodeId, flow: u16) -> Self {
        GoBackNSink {
            config,
            peer,
            flow,
            expected: 0,
        }
    }

    /// In-order packets received so far.
    #[must_use]
    pub fn received_in_order(&self) -> u64 {
        self.expected
    }
}

impl AppAgent for GoBackNSink {
    fn name(&self) -> &'static str {
        "gbn-sink"
    }

    fn on_packet(&mut self, ctx: &mut AppContext<'_>, packet: &Packet) {
        let (flow, is_ack, seq) = tag::decode(packet.tag);
        if flow != self.flow || is_ack {
            return;
        }
        if seq == self.expected {
            self.expected += 1;
        }
        // Always (re-)acknowledge the cumulative in-order prefix; duplicate
        // ACKs are harmless and out-of-order arrivals elicit them.
        ctx.send_data(
            self.peer,
            self.config.ack_bytes,
            self.config.ttl,
            tag::ack(self.flow, self.expected),
        );
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_round_trips() {
        let t = tag::data(7, 123_456);
        assert_eq!(tag::decode(t), (7, false, 123_456));
        let t = tag::ack(65535, (1 << 40) - 1);
        assert_eq!(tag::decode(t), (65535, true, (1 << 40) - 1));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn oversized_sequence_is_rejected() {
        tag::data(0, 1 << 40);
    }

    #[test]
    fn report_interpolation() {
        let report = WindowFlowReport {
            progress: vec![
                (SimTime::from_secs(1), 0),
                (SimTime::from_secs(2), 10),
                (SimTime::from_secs(4), 30),
            ],
            retransmissions: 0,
            completed_at: None,
            total: 100,
        };
        assert_eq!(report.acked_at(SimTime::from_millis(500)), 0);
        assert_eq!(report.acked_at(SimTime::from_secs(2)), 10);
        assert_eq!(report.acked_at(SimTime::from_secs(3)), 10);
        assert_eq!(report.acked_at(SimTime::from_secs(9)), 30);
        let g = report.goodput(SimTime::from_secs(2), SimTime::from_secs(4));
        assert!((g - 10.0).abs() < 1e-9);
    }

    #[test]
    fn default_config_is_simple_flow_control() {
        let cfg = GoBackNConfig::default();
        assert_eq!(cfg.window, 8);
        assert_eq!(cfg.rto, SimDuration::from_secs(1));
        assert_eq!(cfg.rto_cap, SimDuration::from_secs(32));
    }

    #[test]
    fn backoff_doubles_to_cap_and_resets() {
        let cfg = GoBackNConfig::default();
        let mut rto = cfg.rto;
        for _ in 0..10 {
            rto = (rto * 2).min(cfg.rto_cap);
        }
        assert_eq!(rto, cfg.rto_cap, "backoff must saturate at the cap");
        // An ACK advance resets to the initial timeout (mirrors
        // `GoBackNSource::on_packet`).
        rto = cfg.rto;
        assert_eq!(rto, SimDuration::from_secs(1));
    }
}
