//! A dependency-free scoped worker pool for embarrassingly parallel
//! sweeps.
//!
//! Every paper figure averages ~100 independent seeded runs per sweep
//! point; the runs share nothing but their configuration, so they can be
//! executed on any number of worker threads *without changing the
//! output*: each run slot is a pure function of its index, and results
//! are always returned in slot order. `par_map_indexed(n, jobs, f)` is
//! therefore bit-identical to `(0..n).map(f).collect()` for every `jobs`
//! value — parallelism is purely a wall-clock optimization.
//!
//! Built on [`std::thread::scope`] (no external thread-pool crate; the
//! workspace builds offline against `vendor/`). Work distribution is a
//! shared atomic cursor, so a slow slot never stalls the others beyond
//! its own duration.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Resolves a requested job count: `0` means "use the available
/// parallelism" (what `--jobs 0` and `JOBS=0` mean on the command line).
#[must_use]
pub fn effective_jobs(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `0..count` on up to `jobs` worker threads, returning the
/// results in index order.
///
/// Guarantees, for any `jobs`:
/// - `f` is invoked exactly once per index;
/// - the returned vector equals the sequential `(0..count).map(f)`;
/// - a panic inside `f` propagates (wrap `f`'s body in
///   [`std::panic::catch_unwind`] first if slots must be isolated, as the
///   sweep harness does).
///
/// With `jobs <= 1` (or fewer than two slots) no threads are spawned and
/// `f` runs on the caller's thread — the sequential path stays the
/// baseline the parallel one is compared against.
pub fn par_map_indexed<T, F>(count: usize, jobs: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_indexed_with(count, jobs, f, &|_| {})
}

/// [`par_map_indexed`] with a completion callback: `on_done(i)` fires on
/// the worker thread right after slot `i`'s result is produced, in
/// whatever order slots actually finish. The callback is for side-band
/// reporting (progress meters) only — results are still reassembled in
/// slot order, so it cannot affect the output.
pub fn par_map_indexed_with<T, F>(
    count: usize,
    jobs: usize,
    f: F,
    on_done: &(dyn Fn(usize) + Sync),
) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = effective_jobs(jobs).min(count);
    if jobs <= 1 || count <= 1 {
        return (0..count)
            .map(|i| {
                let out = f(i);
                on_done(i);
                out
            })
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        mine.push((i, f(i)));
                        on_done(i);
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(slots) => slots,
                // Re-raise the worker's panic on the calling thread with
                // its original payload instead of a generic expect.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    tagged.sort_unstable_by_key(|(i, _)| *i);
    debug_assert_eq!(tagged.len(), count);
    tagged.into_iter().map(|(_, t)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_index_order_for_any_job_count() {
        for jobs in [1, 2, 3, 8, 64] {
            let out = par_map_indexed(17, jobs, |i| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert!(effective_jobs(0) >= 1);
        assert_eq!(effective_jobs(5), 5);
        let out = par_map_indexed(4, 0, |i| i);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn each_index_runs_exactly_once() {
        use std::sync::atomic::AtomicU32;
        let calls: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        par_map_indexed(50, 4, |i| calls[i].fetch_add(1, Ordering::Relaxed));
        assert!(calls.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map_indexed(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(1, 4, |i| i), vec![0]);
    }

    #[test]
    fn completion_callback_fires_once_per_slot() {
        use std::sync::atomic::AtomicU32;
        for jobs in [1, 4] {
            let fired: Vec<AtomicU32> = (0..20).map(|_| AtomicU32::new(0)).collect();
            let out = par_map_indexed_with(
                20,
                jobs,
                |i| i * 2,
                &|i| {
                    fired[i].fetch_add(1, Ordering::Relaxed);
                },
            );
            assert_eq!(out, (0..20).map(|i| i * 2).collect::<Vec<_>>());
            assert!(fired.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        }
    }
}
