//! Rendering results as aligned text tables and CSV files — the rows and
//! series the paper's figures plot.

use std::fs;
use std::io;
use std::path::Path;

/// A rectangular table of strings.
///
/// # Examples
///
/// ```
/// use convergence::report::Table;
///
/// let mut t = Table::new(vec!["degree".into(), "RIP".into()]);
/// t.push_row(vec!["3".into(), "251.2".into()]);
/// assert!(t.render().contains("degree"));
/// assert!(t.to_csv().starts_with("degree,RIP"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the headers.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned, human-readable table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Renders a GitHub-flavored markdown table (used to paste results
    /// into EXPERIMENTS.md).
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let row = |cells: &[String]| format!("| {} |\n", cells.join(" | "));
        out.push_str(&row(&self.headers));
        out.push_str(&format!(
            "|{}\n",
            "---|".repeat(self.headers.len())
        ));
        for r in &self.rows {
            out.push_str(&row(r));
        }
        out
    }

    /// Renders RFC-4180-style CSV (quoting cells containing separators).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Writes the CSV rendering to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, self.to_csv())
    }
}

/// Formats a float with sensible figure precision.
#[must_use]
pub fn fmt_f64(value: f64) -> String {
    if value == 0.0 {
        "0".to_string()
    } else if value.abs() >= 100.0 {
        format!("{value:.0}")
    } else if value.abs() >= 1.0 {
        format!("{value:.2}")
    } else {
        format!("{value:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(vec!["a".into(), "label".into()]);
        t.push_row(vec!["100".into(), "x".into()]);
        let rendered = t.render();
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn markdown_renders_header_separator_and_rows() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | 2 |");
    }

    #[test]
    fn csv_escapes_special_cells() {
        let mut t = Table::new(vec!["x".into()]);
        t.push_row(vec!["a,b".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn write_csv_creates_directories() {
        let dir = std::env::temp_dir().join("convergence-report-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested/out.csv");
        let mut t = Table::new(vec!["v".into()]);
        t.push_row(vec!["1".into()]);
        t.write_csv(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "v\n1\n");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_are_rejected() {
        let mut t = Table::new(vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting_scales() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.12345), "0.1235");
        assert_eq!(fmt_f64(4.5678), "4.57");
        assert_eq!(fmt_f64(251.4), "251");
    }
}
