//! The single-run engine: warm up, verify steady state, start traffic,
//! break something, record everything.

use std::error::Error;
use std::fmt;

use netsim::error::{BuildError, EventBudgetExceeded};
use netsim::ident::NodeId;
use netsim::rng::SimRng;
use netsim::simulator::SimStats;
use netsim::time::{SimDuration, SimTime};
use netsim::trace::{Trace, TraceEvent};
use topology::graph::Graph;
use topology::instantiate::to_simulator_builder;

use crate::experiment::{ExperimentConfig, TrafficMode};
use crate::failure::{choose_failure, FailureSelection, SelectionError};
use crate::metrics::MetricsError;
use crate::transport::{GoBackNSink, GoBackNSource, WindowFlowReport};

/// One sender/receiver pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Traffic source router.
    pub sender: NodeId,
    /// Traffic sink router.
    pub receiver: NodeId,
}

/// Everything a finished run produced.
#[derive(Debug)]
pub struct RunResult {
    /// The full event trace.
    pub trace: Trace,
    /// The topology the run used.
    pub graph: Graph,
    /// The traffic flows (one in the paper's setup).
    pub flows: Vec<Flow>,
    /// What failed.
    pub failure: FailureSelection,
    /// When the physical failure was injected.
    pub t_fail: SimTime,
    /// The configured failure-detection latency.
    pub detection: SimDuration,
    /// Traffic active window `[start, end)`.
    pub traffic_window: (SimTime, SimTime),
    /// When warm-up ended (routing quiescent).
    pub warmup_end: SimTime,
    /// Engine counters.
    pub stats: SimStats,
    /// Per-flow transfer reports (go-back-N mode only; empty for CBR).
    pub flow_reports: Vec<WindowFlowReport>,
}

/// Why a run could not be executed.
#[derive(Debug)]
pub enum RunError {
    /// The configuration failed validation.
    Invalid(String),
    /// The network could not be assembled.
    Build(BuildError),
    /// Routing did not become quiescent within the warm-up deadline.
    NotQuiescent {
        /// The deadline that was exceeded.
        deadline: SimTime,
    },
    /// The warmed-up FIBs did not yield a complete sender→receiver path.
    NoPath(Flow),
    /// The failure plan could not be realized on this run's topology and
    /// flow (e.g. more simultaneous link failures than the mesh affords).
    Selection(SelectionError),
    /// The event-budget watchdog aborted a livelocked run.
    Watchdog {
        /// Events processed when the watchdog fired.
        events: u64,
        /// Simulated time at which it fired.
        at: SimTime,
    },
    /// The go-back-N source agent expected on `node` was missing or of
    /// the wrong type when the run tried to collect its report.
    MissingSourceAgent {
        /// The sender node that should host the source.
        node: NodeId,
    },
    /// The run panicked; the payload is the rendered panic message.
    /// Produced only by sweep-level isolation
    /// ([`crate::aggregate::run_sweep`]), never by [`run`] itself.
    Panicked(String),
    /// The run finished but its trace could not be summarized. Produced
    /// by the sweep drivers that fold metrics, never by [`run`] itself.
    Metrics(MetricsError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Invalid(why) => write!(f, "invalid experiment: {why}"),
            RunError::Build(e) => write!(f, "network assembly failed: {e}"),
            RunError::NotQuiescent { deadline } => {
                write!(f, "routing not quiescent by {deadline}")
            }
            RunError::NoPath(flow) => write!(
                f,
                "no complete path from {} to {} after warm-up",
                flow.sender, flow.receiver
            ),
            RunError::Selection(e) => write!(f, "failure selection failed: {e}"),
            RunError::Watchdog { events, at } => write!(
                f,
                "watchdog aborted run after {events} events at t={at}"
            ),
            RunError::MissingSourceAgent { node } => {
                write!(f, "no go-back-N source agent on {node} after the run")
            }
            RunError::Panicked(msg) => write!(f, "run panicked: {msg}"),
            RunError::Metrics(e) => write!(f, "summarizing the run failed: {e}"),
        }
    }
}

impl Error for RunError {}

impl From<BuildError> for RunError {
    fn from(e: BuildError) -> Self {
        RunError::Build(e)
    }
}

impl From<SelectionError> for RunError {
    fn from(e: SelectionError) -> Self {
        RunError::Selection(e)
    }
}

impl From<MetricsError> for RunError {
    fn from(e: MetricsError) -> Self {
        RunError::Metrics(e)
    }
}

impl From<EventBudgetExceeded> for RunError {
    fn from(e: EventBudgetExceeded) -> Self {
        RunError::Watchdog {
            events: e.events,
            at: e.at,
        }
    }
}

impl RunError {
    /// Whether retrying the same scenario under a different seed could
    /// plausibly succeed. Selection and path problems are properties of
    /// the random flow/failure draw, and a caught panic may be a
    /// draw-dependent corner of an adversarial configuration; validation
    /// and build problems are properties of the configuration.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            RunError::NoPath(_) | RunError::Selection(_) | RunError::Panicked(_)
        )
    }
}

/// Executes one run.
///
/// The run is a pure function of `config` (including its seed): the same
/// configuration always produces the identical trace.
///
/// # Errors
///
/// See [`RunError`].
///
/// # Examples
///
/// ```
/// use convergence::experiment::ExperimentConfig;
/// use convergence::protocols::ProtocolKind;
/// use convergence::runner::run;
/// use topology::mesh::MeshDegree;
///
/// let result = run(&ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D6, 1))?;
/// assert_eq!(result.flows.len(), 1);
/// assert_eq!(result.failure.edges.len(), 1);
/// # Ok::<(), convergence::runner::RunError>(())
/// ```
pub fn run(config: &ExperimentConfig) -> Result<RunResult, RunError> {
    run_observed(config, None).map(|(result, _)| result)
}

/// [`run`] with an optional span recorder attached to the engine for the
/// whole run: event dispatch, protocol processing and trace recording are
/// measured as nested spans (see [`netsim::simulator::Simulator::set_recorder`]).
/// The recorder comes back alongside the result so callers can reuse it
/// across runs and aggregate phase profiles. On an error the simulator —
/// and the recorder inside it — is dropped, so partial recordings of
/// failed runs are not reported.
///
/// `run_observed(config, None)` is exactly [`run`]: attaching no recorder
/// leaves the engine's hot path branch-predictable no-ops.
///
/// # Errors
///
/// See [`RunError`].
pub fn run_observed(
    config: &ExperimentConfig,
    recorder: Option<Box<obs::span::Recorder>>,
) -> Result<(RunResult, Option<Box<obs::span::Recorder>>), RunError> {
    config.validate().map_err(RunError::Invalid)?;
    let realized = config.topology.realize();
    let (mut builder, link_map) = to_simulator_builder(&realized.graph, config.link)?;
    builder.seed(config.seed);
    let mut sim = builder.build()?;
    if let Some(rec) = recorder {
        sim.set_recorder(rec);
    }
    for node in realized.graph.nodes() {
        let instance = match &config.protocol_override {
            Some(factory) => factory.build(),
            None => config.protocol.build(),
        };
        sim.install_protocol(node, instance)?;
    }
    sim.start();

    // Experiment-level randomness is independent of the protocol RNG so
    // attachment/failure choices do not perturb protocol timing.
    let mut exp_rng = SimRng::seed_from(config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));

    // ---- Warm-up: run until no FIB has changed for `quiet`. -------------
    let quiet = config.warmup.quiet;
    let deadline = SimTime::ZERO + config.warmup.max;
    let mut cursor = 0usize; // first unscanned trace event
    let mut last_change = SimTime::ZERO;
    let mut now = SimTime::ZERO;
    loop {
        now += SimDuration::from_secs(1);
        if now > deadline {
            return Err(RunError::NotQuiescent { deadline });
        }
        sim.run_until_budgeted(now, config.watchdog.max_events)?;
        let events = sim.trace().events();
        for event in &events[cursor..] {
            if matches!(event, TraceEvent::RouteChanged { .. }) {
                last_change = event.time();
            }
        }
        cursor = events.len();
        if now.saturating_since(last_change) >= quiet {
            break;
        }
    }
    let warmup_end = now;

    // ---- Flows and steady-state verification. ---------------------------
    // Closed-loop flows install one agent per endpoint, so their endpoints
    // must be pairwise distinct.
    let distinct_endpoints = matches!(config.traffic.mode, TrafficMode::GoBackN(_));
    let mut flows: Vec<Flow> = Vec::with_capacity(config.traffic.flows);
    for _ in 0..config.traffic.flows {
        let flow = loop {
            let sender = *exp_rng.choose(&realized.sender_candidates);
            let receiver = *exp_rng.choose(&realized.receiver_candidates);
            if sender == receiver {
                continue;
            }
            if distinct_endpoints
                && flows
                    .iter()
                    .any(|f| f.sender == sender || f.receiver == receiver)
            {
                continue;
            }
            break Flow { sender, receiver };
        };
        if !sim.forwarding_path(flow.sender, flow.receiver).is_complete() {
            return Err(RunError::NoPath(flow));
        }
        flows.push(flow);
    }

    // ---- Failure selection (on the first flow's live path). -------------
    let failure = choose_failure(
        &config.failure,
        &sim,
        &realized.graph,
        flows[0].sender,
        flows[0].receiver,
        &mut exp_rng,
    )?;

    // ---- Traffic. ---------------------------------------------------------
    let t_fail = warmup_end + config.traffic.lead;
    let t_start = warmup_end;
    let t_end = t_fail + config.traffic.tail;
    match config.traffic.mode {
        TrafficMode::Cbr => {
            let gap = SimDuration::from_nanos(1_000_000_000 / config.traffic.rate_pps);
            for flow in &flows {
                let mut t = t_start;
                while t < t_end {
                    sim.schedule_packet(
                        t,
                        flow.sender,
                        flow.receiver,
                        config.traffic.packet_bytes,
                        config.traffic.ttl,
                    );
                    t += gap;
                }
            }
        }
        TrafficMode::Poisson => {
            // Exponential inter-arrival times with the configured mean
            // rate, drawn from the experiment RNG (not the protocol RNG,
            // so routing timing is unaffected by the workload draw).
            let mean_gap_s = 1.0 / config.traffic.rate_pps as f64;
            for flow in &flows {
                let mut t = t_start;
                loop {
                    let u = exp_rng.gen_unit().max(1e-12);
                    let gap = SimDuration::from_secs_f64(-mean_gap_s * u.ln());
                    t += gap;
                    if t >= t_end {
                        break;
                    }
                    sim.schedule_packet(
                        t,
                        flow.sender,
                        flow.receiver,
                        config.traffic.packet_bytes,
                        config.traffic.ttl,
                    );
                }
            }
        }
        TrafficMode::GoBackN(gbn) => {
            for (i, flow) in flows.iter().enumerate() {
                let id = i as u16;
                sim.install_app(
                    flow.receiver,
                    Box::new(GoBackNSink::new(gbn, flow.sender, id)),
                )?;
                // Installing the source second starts the transfer now
                // (warm-up end), `lead` before the failure.
                sim.install_app(
                    flow.sender,
                    Box::new(GoBackNSource::new(gbn, flow.receiver, id)),
                )?;
            }
        }
    }

    // ---- Failure injection and the main phase. ---------------------------
    for action in &failure.timeline {
        let link = link_map[&action.edge];
        let at = t_fail + action.offset;
        if action.up {
            sim.schedule_link_recovery(at, link)?;
        } else {
            sim.schedule_link_failure(at, link)?;
        }
    }
    for action in &failure.impairments {
        let link = link_map[&action.edge];
        sim.schedule_link_impairment(t_fail + action.offset, link, action.impairment)?;
    }
    if let Some(restart) = failure.restart {
        let fresh = match &config.protocol_override {
            Some(factory) => factory.build(),
            None => config.protocol.build(),
        };
        sim.schedule_node_crash_restart(t_fail, restart.node, restart.down, fresh)?;
    }
    sim.run_until_budgeted(t_end + config.drain, config.watchdog.max_events)?;

    let stats = sim.stats();
    let mut flow_reports = Vec::new();
    if matches!(config.traffic.mode, TrafficMode::GoBackN(_)) {
        for flow in &flows {
            let agent = sim
                .take_app(flow.sender)
                .ok_or(RunError::MissingSourceAgent { node: flow.sender })?;
            let source = agent
                .as_any()
                .downcast_ref::<GoBackNSource>()
                .ok_or(RunError::MissingSourceAgent { node: flow.sender })?;
            flow_reports.push(source.report());
        }
    }
    let recorder = sim.take_recorder();
    Ok((
        RunResult {
            trace: sim.into_trace(),
            graph: realized.graph,
            flows,
            failure,
            t_fail,
            detection: config.link.detection_delay,
            traffic_window: (t_start, t_end),
            warmup_end,
            stats,
            flow_reports,
        },
        recorder,
    ))
}

// Sweep workers move finished results (and slot errors) back to the
// assembling thread.
const _: fn() = || {
    fn sendable<T: Send>() {}
    sendable::<RunResult>();
    sendable::<RunError>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::protocols::ProtocolKind;
    use topology::mesh::MeshDegree;

    #[test]
    fn spf_run_completes_and_conserves_packets() {
        let result = run(&ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 3)).unwrap();
        let s = result.stats;
        assert_eq!(s.packets_injected, 20 * 50); // 20 pps x 50 s window
        assert_eq!(s.packets_injected, s.packets_delivered + s.packets_dropped);
        assert_eq!(result.failure.edges.len(), 1);
        // The failed edge lies on the pre-failure forwarding path.
        let edge = result.failure.edges[0];
        assert!(result.graph.has_edge(edge.a, edge.b));
    }

    #[test]
    fn runs_are_reproducible() {
        let cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D5, 9);
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.failure, b.failure);
        assert_eq!(a.t_fail, b.t_fail);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn different_seeds_vary_the_scenario() {
        let a = run(&ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 1)).unwrap();
        let b = run(&ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 2)).unwrap();
        assert!(a.flows != b.flows || a.failure != b.failure);
    }

    #[test]
    fn no_failure_plan_drops_nothing() {
        let mut cfg = ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 5);
        cfg.failure = crate::failure::FailurePlan::None;
        let result = run(&cfg).unwrap();
        assert_eq!(result.stats.packets_dropped, 0);
        assert!(result.failure.edges.is_empty());
    }
}
