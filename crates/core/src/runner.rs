//! The single-run engine: warm up, verify steady state, start traffic,
//! break something, record everything.

use std::error::Error;
use std::fmt;

use netsim::error::BuildError;
use netsim::ident::NodeId;
use netsim::rng::SimRng;
use netsim::simulator::SimStats;
use netsim::time::{SimDuration, SimTime};
use netsim::trace::{Trace, TraceEvent};
use topology::graph::Graph;
use topology::instantiate::to_simulator_builder;

use crate::experiment::{ExperimentConfig, TrafficMode};
use crate::failure::{choose_failure, FailureSelection};
use crate::transport::{GoBackNSink, GoBackNSource, WindowFlowReport};

/// One sender/receiver pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Traffic source router.
    pub sender: NodeId,
    /// Traffic sink router.
    pub receiver: NodeId,
}

/// Everything a finished run produced.
#[derive(Debug)]
pub struct RunResult {
    /// The full event trace.
    pub trace: Trace,
    /// The topology the run used.
    pub graph: Graph,
    /// The traffic flows (one in the paper's setup).
    pub flows: Vec<Flow>,
    /// What failed.
    pub failure: FailureSelection,
    /// When the physical failure was injected.
    pub t_fail: SimTime,
    /// The configured failure-detection latency.
    pub detection: SimDuration,
    /// Traffic active window `[start, end)`.
    pub traffic_window: (SimTime, SimTime),
    /// When warm-up ended (routing quiescent).
    pub warmup_end: SimTime,
    /// Engine counters.
    pub stats: SimStats,
    /// Per-flow transfer reports (go-back-N mode only; empty for CBR).
    pub flow_reports: Vec<WindowFlowReport>,
}

/// Why a run could not be executed.
#[derive(Debug)]
pub enum RunError {
    /// The configuration failed validation.
    Invalid(String),
    /// The network could not be assembled.
    Build(BuildError),
    /// Routing did not become quiescent within the warm-up deadline.
    NotQuiescent {
        /// The deadline that was exceeded.
        deadline: SimTime,
    },
    /// The warmed-up FIBs did not yield a complete sender→receiver path.
    NoPath(Flow),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Invalid(why) => write!(f, "invalid experiment: {why}"),
            RunError::Build(e) => write!(f, "network assembly failed: {e}"),
            RunError::NotQuiescent { deadline } => {
                write!(f, "routing not quiescent by {deadline}")
            }
            RunError::NoPath(flow) => write!(
                f,
                "no complete path from {} to {} after warm-up",
                flow.sender, flow.receiver
            ),
        }
    }
}

impl Error for RunError {}

impl From<BuildError> for RunError {
    fn from(e: BuildError) -> Self {
        RunError::Build(e)
    }
}

/// Executes one run.
///
/// The run is a pure function of `config` (including its seed): the same
/// configuration always produces the identical trace.
///
/// # Errors
///
/// See [`RunError`].
///
/// # Examples
///
/// ```
/// use convergence::experiment::ExperimentConfig;
/// use convergence::protocols::ProtocolKind;
/// use convergence::runner::run;
/// use topology::mesh::MeshDegree;
///
/// let result = run(&ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D6, 1))?;
/// assert_eq!(result.flows.len(), 1);
/// assert_eq!(result.failure.edges.len(), 1);
/// # Ok::<(), convergence::runner::RunError>(())
/// ```
pub fn run(config: &ExperimentConfig) -> Result<RunResult, RunError> {
    config.validate().map_err(RunError::Invalid)?;
    let realized = config.topology.realize();
    let (mut builder, link_map) = to_simulator_builder(&realized.graph, config.link)?;
    builder.seed(config.seed);
    let mut sim = builder.build()?;
    for node in realized.graph.nodes() {
        let instance = match &config.protocol_override {
            Some(factory) => factory.build(),
            None => config.protocol.build(),
        };
        sim.install_protocol(node, instance)?;
    }
    sim.start();

    // Experiment-level randomness is independent of the protocol RNG so
    // attachment/failure choices do not perturb protocol timing.
    let mut exp_rng = SimRng::seed_from(config.seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));

    // ---- Warm-up: run until no FIB has changed for `quiet`. -------------
    let quiet = config.warmup.quiet;
    let deadline = SimTime::ZERO + config.warmup.max;
    let mut cursor = 0usize; // first unscanned trace event
    let mut last_change = SimTime::ZERO;
    let mut now = SimTime::ZERO;
    loop {
        now += SimDuration::from_secs(1);
        if now > deadline {
            return Err(RunError::NotQuiescent { deadline });
        }
        sim.run_until(now);
        let events = sim.trace().events();
        for event in &events[cursor..] {
            if matches!(event, TraceEvent::RouteChanged { .. }) {
                last_change = event.time();
            }
        }
        cursor = events.len();
        if now.saturating_since(last_change) >= quiet {
            break;
        }
    }
    let warmup_end = now;

    // ---- Flows and steady-state verification. ---------------------------
    // Closed-loop flows install one agent per endpoint, so their endpoints
    // must be pairwise distinct.
    let distinct_endpoints = matches!(config.traffic.mode, TrafficMode::GoBackN(_));
    let mut flows: Vec<Flow> = Vec::with_capacity(config.traffic.flows);
    for _ in 0..config.traffic.flows {
        let flow = loop {
            let sender = *exp_rng.choose(&realized.sender_candidates);
            let receiver = *exp_rng.choose(&realized.receiver_candidates);
            if sender == receiver {
                continue;
            }
            if distinct_endpoints
                && flows
                    .iter()
                    .any(|f| f.sender == sender || f.receiver == receiver)
            {
                continue;
            }
            break Flow { sender, receiver };
        };
        if !sim.forwarding_path(flow.sender, flow.receiver).is_complete() {
            return Err(RunError::NoPath(flow));
        }
        flows.push(flow);
    }

    // ---- Failure selection (on the first flow's live path). -------------
    let failure = choose_failure(
        &config.failure,
        &sim,
        &realized.graph,
        flows[0].sender,
        flows[0].receiver,
        &mut exp_rng,
    );

    // ---- Traffic. ---------------------------------------------------------
    let t_fail = warmup_end + config.traffic.lead;
    let t_start = warmup_end;
    let t_end = t_fail + config.traffic.tail;
    match config.traffic.mode {
        TrafficMode::Cbr => {
            let gap = SimDuration::from_nanos(1_000_000_000 / config.traffic.rate_pps);
            for flow in &flows {
                let mut t = t_start;
                while t < t_end {
                    sim.schedule_packet(
                        t,
                        flow.sender,
                        flow.receiver,
                        config.traffic.packet_bytes,
                        config.traffic.ttl,
                    );
                    t += gap;
                }
            }
        }
        TrafficMode::Poisson => {
            // Exponential inter-arrival times with the configured mean
            // rate, drawn from the experiment RNG (not the protocol RNG,
            // so routing timing is unaffected by the workload draw).
            let mean_gap_s = 1.0 / config.traffic.rate_pps as f64;
            for flow in &flows {
                let mut t = t_start;
                loop {
                    let u = exp_rng.gen_unit().max(1e-12);
                    let gap = SimDuration::from_secs_f64(-mean_gap_s * u.ln());
                    t += gap;
                    if t >= t_end {
                        break;
                    }
                    sim.schedule_packet(
                        t,
                        flow.sender,
                        flow.receiver,
                        config.traffic.packet_bytes,
                        config.traffic.ttl,
                    );
                }
            }
        }
        TrafficMode::GoBackN(gbn) => {
            for (i, flow) in flows.iter().enumerate() {
                let id = i as u16;
                sim.install_app(
                    flow.receiver,
                    Box::new(GoBackNSink::new(gbn, flow.sender, id)),
                )?;
                // Installing the source second starts the transfer now
                // (warm-up end), `lead` before the failure.
                sim.install_app(
                    flow.sender,
                    Box::new(GoBackNSource::new(gbn, flow.receiver, id)),
                )?;
            }
        }
    }

    // ---- Failure injection and the main phase. ---------------------------
    for action in &failure.timeline {
        let link = link_map[&action.edge];
        let at = t_fail + action.offset;
        if action.up {
            sim.schedule_link_recovery(at, link)?;
        } else {
            sim.schedule_link_failure(at, link)?;
        }
    }
    sim.run_until(t_end + config.drain);

    let stats = sim.stats();
    let mut flow_reports = Vec::new();
    if matches!(config.traffic.mode, TrafficMode::GoBackN(_)) {
        for flow in &flows {
            let agent = sim.take_app(flow.sender).expect("source agent installed");
            let source = agent
                .as_any()
                .downcast_ref::<GoBackNSource>()
                .expect("sender hosts a go-back-N source");
            flow_reports.push(source.report());
        }
    }
    Ok(RunResult {
        trace: sim.into_trace(),
        graph: realized.graph,
        flows,
        failure,
        t_fail,
        detection: config.link.detection_delay,
        traffic_window: (t_start, t_end),
        warmup_end,
        stats,
        flow_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentConfig;
    use crate::protocols::ProtocolKind;
    use topology::mesh::MeshDegree;

    #[test]
    fn spf_run_completes_and_conserves_packets() {
        let result = run(&ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 3)).unwrap();
        let s = result.stats;
        assert_eq!(s.packets_injected, 20 * 50); // 20 pps x 50 s window
        assert_eq!(s.packets_injected, s.packets_delivered + s.packets_dropped);
        assert_eq!(result.failure.edges.len(), 1);
        // The failed edge lies on the pre-failure forwarding path.
        let edge = result.failure.edges[0];
        assert!(result.graph.has_edge(edge.a, edge.b));
    }

    #[test]
    fn runs_are_reproducible() {
        let cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D5, 9);
        let a = run(&cfg).unwrap();
        let b = run(&cfg).unwrap();
        assert_eq!(a.flows, b.flows);
        assert_eq!(a.failure, b.failure);
        assert_eq!(a.t_fail, b.t_fail);
        assert_eq!(a.trace.len(), b.trace.len());
    }

    #[test]
    fn different_seeds_vary_the_scenario() {
        let a = run(&ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 1)).unwrap();
        let b = run(&ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 2)).unwrap();
        assert!(a.flows != b.flows || a.failure != b.failure);
    }

    #[test]
    fn no_failure_plan_drops_nothing() {
        let mut cfg = ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 5);
        cfg.failure = crate::failure::FailurePlan::None;
        let result = run(&cfg).unwrap();
        assert_eq!(result.stats.packets_dropped, 0);
        assert!(result.failure.edges.is_empty());
    }
}
