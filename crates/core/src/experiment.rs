//! Experiment configuration.

use std::fmt;
use std::sync::Arc;

use netsim::link::LinkConfig;
use netsim::protocol::RoutingProtocol;
use netsim::time::SimDuration;
use serde::{Deserialize, Serialize};
use topology::graph::Graph;
use topology::mesh::{Mesh, MeshDegree};

use crate::failure::FailurePlan;
use crate::protocols::ProtocolKind;
use crate::transport::GoBackNConfig;

/// Which network a run simulates.
#[derive(Debug, Clone)]
pub enum TopologySpec {
    /// The paper's regular mesh family.
    Mesh {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
        /// Interior node degree.
        degree: MeshDegree,
    },
    /// An arbitrary pre-built graph (extension experiments). The sender
    /// and receiver are drawn from all nodes instead of first/last row.
    Custom(Graph),
}

impl TopologySpec {
    /// The paper's 7×7, 49-router mesh at the given degree.
    #[must_use]
    pub fn paper_mesh(degree: MeshDegree) -> Self {
        TopologySpec::Mesh {
            rows: 7,
            cols: 7,
            degree,
        }
    }

    /// Materializes the graph plus the sender/receiver candidate rows.
    #[must_use]
    pub fn realize(&self) -> RealizedTopology {
        match self {
            TopologySpec::Mesh { rows, cols, degree } => {
                let mesh = Mesh::regular(*rows, *cols, *degree);
                RealizedTopology {
                    sender_candidates: mesh.first_row(),
                    receiver_candidates: mesh.last_row(),
                    graph: mesh.into_graph(),
                }
            }
            TopologySpec::Custom(graph) => RealizedTopology {
                sender_candidates: graph.nodes().collect(),
                receiver_candidates: graph.nodes().collect(),
                graph: graph.clone(),
            },
        }
    }
}

/// A concrete topology with attachment candidate sets.
#[derive(Debug, Clone)]
pub struct RealizedTopology {
    /// The network graph.
    pub graph: Graph,
    /// Nodes eligible to host the sender.
    pub sender_candidates: Vec<netsim::ident::NodeId>,
    /// Nodes eligible to host the receiver.
    pub receiver_candidates: Vec<netsim::ident::NodeId>,
}

/// What kind of traffic the flows carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrafficMode {
    /// Open-loop constant bit rate (the paper's workload).
    Cbr,
    /// Open-loop Poisson arrivals at the configured mean rate (burstier
    /// than CBR; exercises queues and convergence windows irregularly).
    Poisson,
    /// Closed-loop window-limited ARQ transfer (§6 end-to-end extension);
    /// the transfer starts at warm-up end and runs until complete.
    GoBackN(GoBackNConfig),
}

/// Constant-bit-rate traffic parameters.
///
/// Defaults reconstruct the paper's §5 setup (20 packets/second, TTL 127),
/// with the sender active from 10 s before the failure to 40 s after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Packets per second.
    pub rate_pps: u64,
    /// Payload size in bytes.
    pub packet_bytes: u32,
    /// Initial TTL.
    pub ttl: u8,
    /// How long the flow runs before the failure.
    pub lead: SimDuration,
    /// How long the flow continues after the failure.
    pub tail: SimDuration,
    /// Number of concurrent sender/receiver pairs (1 in the paper;
    /// >1 is the §6 multi-flow extension).
    pub flows: usize,
    /// Open-loop CBR (default) or closed-loop ARQ.
    pub mode: TrafficMode,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            rate_pps: 20,
            packet_bytes: 1000,
            ttl: netsim::packet::DEFAULT_TTL,
            lead: SimDuration::from_secs(10),
            tail: SimDuration::from_secs(40),
            flows: 1,
            mode: TrafficMode::Cbr,
        }
    }
}

/// How long the runner waits for routing to become quiescent before
/// injecting traffic and the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WarmupPolicy {
    /// A run is warm when no FIB changed for this long.
    pub quiet: SimDuration,
    /// Give up (and panic) if not quiescent by this deadline.
    pub max: SimDuration,
}

impl Default for WarmupPolicy {
    fn default() -> Self {
        WarmupPolicy {
            quiet: SimDuration::from_secs(45),
            max: SimDuration::from_secs(1800),
        }
    }
}

/// The per-run event-budget watchdog.
///
/// A pathological scenario (a protocol stuck in a zero-delay timer loop,
/// a persistent forwarding loop fed by retransmissions) can generate
/// events faster than simulated time advances, livelocking a sweep. The
/// watchdog bounds the total number of engine events a single run may
/// process; exceeding it aborts the run with a typed
/// [`crate::runner::RunError::Watchdog`] instead of hanging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogPolicy {
    /// Maximum engine events one run may process (lifetime total,
    /// warm-up included).
    pub max_events: u64,
}

impl Default for WatchdogPolicy {
    fn default() -> Self {
        // Two orders of magnitude above the busiest paper run (a degree-8
        // BGP warm-up processes ~2M events); only livelock reaches this.
        WatchdogPolicy {
            max_events: 500_000_000,
        }
    }
}

/// A closure producing per-router protocol instances, used to run a
/// protocol with a non-default configuration (ablations).
#[derive(Clone)]
pub struct ProtocolFactory(pub Arc<dyn Fn() -> Box<dyn RoutingProtocol> + Send + Sync>);

impl ProtocolFactory {
    /// Wraps a factory closure.
    pub fn new<F>(f: F) -> Self
    where
        F: Fn() -> Box<dyn RoutingProtocol> + Send + Sync + 'static,
    {
        ProtocolFactory(Arc::new(f))
    }

    /// Builds one protocol instance.
    #[must_use]
    pub fn build(&self) -> Box<dyn RoutingProtocol> {
        (self.0)()
    }
}

impl fmt::Debug for ProtocolFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ProtocolFactory(..)")
    }
}

/// Everything that defines a single simulation run.
///
/// A run is a pure function of this configuration (including `seed`), so
/// the multi-run sweeps of the figures simply vary the seed.
///
/// # Examples
///
/// ```
/// use convergence::experiment::ExperimentConfig;
/// use convergence::protocols::ProtocolKind;
/// use topology::mesh::MeshDegree;
///
/// let cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D6, 7);
/// assert_eq!(cfg.traffic.rate_pps, 20);
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The network under test.
    pub topology: TopologySpec,
    /// The routing protocol on every router.
    pub protocol: ProtocolKind,
    /// When set, overrides [`ExperimentConfig::protocol`] with custom
    /// instances (ablations with non-default protocol configurations).
    pub protocol_override: Option<ProtocolFactory>,
    /// Physical link parameters.
    pub link: LinkConfig,
    /// Traffic parameters.
    pub traffic: TrafficConfig,
    /// What fails and when (relative to warm-up completion).
    pub failure: FailurePlan,
    /// Warm-up policy.
    pub warmup: WarmupPolicy,
    /// Per-run event-budget watchdog.
    pub watchdog: WatchdogPolicy,
    /// How long the run continues after traffic stops, letting routing
    /// convergence finish for the Figure-6 measurements.
    pub drain: SimDuration,
    /// Master seed; every random decision in the run derives from it.
    pub seed: u64,
}

impl ExperimentConfig {
    /// The paper's canonical single-failure experiment on the 7×7 mesh.
    #[must_use]
    pub fn paper(protocol: ProtocolKind, degree: MeshDegree, seed: u64) -> Self {
        ExperimentConfig {
            topology: TopologySpec::paper_mesh(degree),
            protocol,
            protocol_override: None,
            link: LinkConfig::default(),
            traffic: TrafficConfig::default(),
            failure: FailurePlan::SingleLinkOnPath,
            warmup: WarmupPolicy::default(),
            watchdog: WatchdogPolicy::default(),
            drain: SimDuration::from_secs(120),
            seed,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.traffic.rate_pps == 0 {
            return Err("traffic rate must be positive".into());
        }
        if self.traffic.flows == 0 {
            return Err("at least one flow is required".into());
        }
        if let TrafficMode::GoBackN(g) = self.traffic.mode {
            if g.window == 0 || g.total_packets == 0 {
                return Err("go-back-N needs a positive window and transfer size".into());
            }
            let realized = self.topology.realize();
            let limit = realized
                .sender_candidates
                .len()
                .min(realized.receiver_candidates.len());
            if self.traffic.flows > limit {
                return Err(format!(
                    "go-back-N flows need distinct endpoints; at most {limit} available"
                ));
            }
        }
        if self.warmup.quiet >= self.warmup.max {
            return Err("warmup.quiet must be below warmup.max".into());
        }
        if self.watchdog.max_events == 0 {
            return Err("watchdog.max_events must be positive".into());
        }
        let realized = self.topology.realize();
        if realized.graph.num_nodes() < 3 {
            return Err("topology too small".into());
        }
        if !realized.graph.is_connected() {
            return Err("topology must be connected".into());
        }
        Ok(())
    }
}

// The parallel sweep engine shares one `ExperimentConfig` by reference
// across scoped worker threads; `ProtocolFactory` carries the only
// non-auto-derived bound (its `Arc<dyn Fn ... + Send + Sync>`).
const _: fn() = || {
    fn shareable<T: Send + Sync>() {}
    shareable::<ExperimentConfig>();
    shareable::<ProtocolFactory>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        for degree in MeshDegree::ALL {
            ExperimentConfig::paper(ProtocolKind::Rip, degree, 1)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn validation_catches_nonsense() {
        let mut cfg = ExperimentConfig::paper(ProtocolKind::Rip, MeshDegree::D4, 1);
        cfg.traffic.rate_pps = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = ExperimentConfig::paper(ProtocolKind::Rip, MeshDegree::D4, 1);
        cfg.traffic.flows = 0;
        assert!(cfg.validate().is_err());

        let mut disconnected = Graph::new(4);
        disconnected.add_edge(netsim::ident::NodeId::new(0), netsim::ident::NodeId::new(1));
        let cfg = ExperimentConfig {
            topology: TopologySpec::Custom(disconnected),
            ..ExperimentConfig::paper(ProtocolKind::Rip, MeshDegree::D4, 1)
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn mesh_realization_exposes_rows() {
        let spec = TopologySpec::paper_mesh(MeshDegree::D5);
        let realized = spec.realize();
        assert_eq!(realized.graph.num_nodes(), 49);
        assert_eq!(realized.sender_candidates.len(), 7);
        assert_eq!(realized.receiver_candidates.len(), 7);
        assert_ne!(realized.sender_candidates, realized.receiver_candidates);
    }

    #[test]
    fn custom_realization_allows_any_node() {
        let mut g = Graph::new(3);
        g.add_edge(netsim::ident::NodeId::new(0), netsim::ident::NodeId::new(1));
        g.add_edge(netsim::ident::NodeId::new(1), netsim::ident::NodeId::new(2));
        let realized = TopologySpec::Custom(g).realize();
        assert_eq!(realized.sender_candidates.len(), 3);
    }
}
