//! Failure plans: what breaks, and how the broken element is chosen.

use std::error::Error;
use std::fmt;

use netsim::ident::NodeId;
use netsim::impairment::Impairment;
use netsim::rng::SimRng;
use netsim::time::SimDuration;
use netsim::simulator::{ForwardingPath, Simulator};
use topology::graph::{Edge, Graph};

/// What fails during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailurePlan {
    /// No failure (baseline sanity runs).
    None,
    /// The paper's plan: one link, chosen uniformly from the links on the
    /// live forwarding path between sender and receiver.
    SingleLinkOnPath,
    /// A specific link (for controlled experiments).
    SpecificLink(Edge),
    /// §6 extension: `count` distinct links chosen from the live path and,
    /// when the path is shorter, from the remaining links — skipping
    /// choices that would partition the network.
    MultipleLinks {
        /// How many links to fail simultaneously.
        count: usize,
    },
    /// §6 extension: an interior router on the live path fails entirely
    /// (all its links go down).
    NodeOnPath,
    /// Flap-damping extension: one on-path link flaps `cycles` times
    /// (down for `down`, up for `up`), then stays up.
    FlappingLink {
        /// Number of down/up cycles.
        cycles: u32,
        /// How long the link stays down each cycle.
        down: SimDuration,
        /// How long the link stays up between cycles.
        up: SimDuration,
    },
    /// Robustness extension: an interior router on the live path crashes
    /// (all its links fail at once) and reboots after `down` with *cold*
    /// routing state — empty FIB, fresh protocol instance, no timers.
    NodeCrashRestart {
        /// How long the router stays down before rebooting.
        down: SimDuration,
    },
    /// Robustness extension: one on-path link does not fail but turns
    /// *lossy* — `impairment` applies for `duration`, then the link is
    /// clean again. Routing never sees a link-down event; protocols must
    /// ride out the loss.
    LossyLinkOnPath {
        /// The impairment applied during the lossy period.
        impairment: Impairment,
        /// How long the lossy period lasts.
        duration: SimDuration,
    },
}

/// One link state change relative to the failure instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureAction {
    /// Offset from the failure instant.
    pub offset: SimDuration,
    /// The affected link.
    pub edge: Edge,
    /// `true` = recover, `false` = fail.
    pub up: bool,
}

/// One link impairment change relative to the failure instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImpairmentAction {
    /// Offset from the failure instant.
    pub offset: SimDuration,
    /// The affected link.
    pub edge: Edge,
    /// The impairment to apply ([`Impairment::NONE`] ends a lossy period).
    pub impairment: Impairment,
}

/// A router crash-with-reboot starting at the failure instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartAction {
    /// The crashing router.
    pub node: NodeId,
    /// How long it stays down before rebooting with cold state.
    pub down: SimDuration,
}

/// The concrete selection made for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureSelection {
    /// The distinct links affected.
    pub edges: Vec<Edge>,
    /// Every scheduled state change, in offset order.
    pub timeline: Vec<FailureAction>,
    /// Scheduled impairment changes ([`FailurePlan::LossyLinkOnPath`]).
    pub impairments: Vec<ImpairmentAction>,
    /// Crash-with-reboot of a router ([`FailurePlan::NodeCrashRestart`]).
    /// The runner schedules the link failures/recoveries itself, so the
    /// `timeline` stays empty for this plan.
    pub restart: Option<RestartAction>,
    /// The failed router, for [`FailurePlan::NodeOnPath`] and
    /// [`FailurePlan::NodeCrashRestart`].
    pub node: Option<NodeId>,
}

impl FailureSelection {
    /// A selection that fails nothing.
    #[must_use]
    pub fn none() -> Self {
        FailureSelection {
            edges: Vec::new(),
            timeline: Vec::new(),
            impairments: Vec::new(),
            restart: None,
            node: None,
        }
    }

    /// All named edges fail once at the failure instant.
    #[must_use]
    pub fn fail_at_zero(edges: Vec<Edge>, node: Option<NodeId>) -> Self {
        let timeline = edges
            .iter()
            .map(|&edge| FailureAction {
                offset: SimDuration::ZERO,
                edge,
                up: false,
            })
            .collect();
        FailureSelection {
            edges,
            timeline,
            impairments: Vec::new(),
            restart: None,
            node,
        }
    }
}

/// Why a failure plan could not be realized on a warmed-up network.
///
/// These are *scenario* problems, not bugs: an aggregate sweep over many
/// seeds reports them per run (and may retry with a derived seed) instead
/// of tearing down the whole sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectionError {
    /// The live forwarding path between the flow endpoints was not
    /// complete, so no on-path element could be chosen.
    PathNotConverged {
        /// Traffic source.
        sender: NodeId,
        /// Traffic sink.
        receiver: NodeId,
        /// What the FIB walk actually produced.
        path: ForwardingPath,
    },
    /// Fewer links than requested could be failed without partitioning
    /// the network.
    NotEnoughLinks {
        /// How many simultaneous link failures the plan asked for.
        requested: usize,
        /// How many could be selected.
        selected: usize,
    },
    /// The live path is a single hop: there is no interior router to
    /// crash.
    NoInteriorRouter {
        /// Length (in nodes) of the live path.
        path_len: usize,
    },
    /// The plan's parameters are degenerate (zero links, zero cycles).
    InvalidPlan(String),
}

impl fmt::Display for SelectionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionError::PathNotConverged {
                sender,
                receiver,
                path,
            } => {
                let kind = match path {
                    ForwardingPath::Complete(_) => "complete",
                    ForwardingPath::Loop(_) => "looping",
                    ForwardingPath::Broken(_) => "broken",
                };
                write!(
                    f,
                    "forwarding path {sender}->{receiver} is {kind} after {} hops",
                    path.nodes().len().saturating_sub(1)
                )
            }
            SelectionError::NotEnoughLinks {
                requested,
                selected,
            } => write!(
                f,
                "only {selected} of {requested} links can fail without partitioning the network"
            ),
            SelectionError::NoInteriorRouter { path_len } => write!(
                f,
                "live path has {path_len} nodes, no interior router to fail"
            ),
            SelectionError::InvalidPlan(why) => write!(f, "invalid failure plan: {why}"),
        }
    }
}

impl Error for SelectionError {}

/// Chooses the concrete failure for a run.
///
/// `sim` must be warmed up: the live forwarding path from `sender` to
/// `receiver` is read from the FIBs, exactly as the paper fails "one of
/// the links along the shortest path between the sender and receiver".
///
/// # Errors
///
/// Returns a [`SelectionError`] when the plan cannot be realized — the
/// path is not converged, the topology cannot afford the requested number
/// of simultaneous failures, or the plan's parameters are degenerate.
pub fn choose_failure(
    plan: &FailurePlan,
    sim: &Simulator,
    graph: &Graph,
    sender: NodeId,
    receiver: NodeId,
    rng: &mut SimRng,
) -> Result<FailureSelection, SelectionError> {
    let path = || -> Result<Vec<NodeId>, SelectionError> {
        match sim.forwarding_path(sender, receiver) {
            ForwardingPath::Complete(p) => Ok(p),
            other => Err(SelectionError::PathNotConverged {
                sender,
                receiver,
                path: other,
            }),
        }
    };
    let interior = |p: &[NodeId], rng: &mut SimRng| -> Result<NodeId, SelectionError> {
        if p.len() < 3 {
            return Err(SelectionError::NoInteriorRouter { path_len: p.len() });
        }
        Ok(p[1 + rng.gen_index(p.len() - 2)])
    };
    match plan {
        FailurePlan::None => Ok(FailureSelection::none()),
        FailurePlan::SpecificLink(edge) => Ok(FailureSelection::fail_at_zero(vec![*edge], None)),
        FailurePlan::SingleLinkOnPath => {
            let p = path()?;
            let hop = rng.gen_index(p.len() - 1);
            Ok(FailureSelection::fail_at_zero(
                vec![Edge::new(p[hop], p[hop + 1])],
                None,
            ))
        }
        FailurePlan::FlappingLink { cycles, down, up } => {
            if *cycles == 0 {
                return Err(SelectionError::InvalidPlan(
                    "FlappingLink requires at least one cycle".into(),
                ));
            }
            let p = path()?;
            let hop = rng.gen_index(p.len() - 1);
            let edge = Edge::new(p[hop], p[hop + 1]);
            let mut timeline = Vec::new();
            let mut offset = SimDuration::ZERO;
            for _ in 0..*cycles {
                timeline.push(FailureAction {
                    offset,
                    edge,
                    up: false,
                });
                offset += *down;
                timeline.push(FailureAction {
                    offset,
                    edge,
                    up: true,
                });
                offset += *up;
            }
            Ok(FailureSelection {
                edges: vec![edge],
                timeline,
                impairments: Vec::new(),
                restart: None,
                node: None,
            })
        }
        FailurePlan::MultipleLinks { count } => {
            if *count == 0 {
                return Err(SelectionError::InvalidPlan(
                    "MultipleLinks requires count >= 1".into(),
                ));
            }
            let p = path()?;
            let mut working: Graph = graph.clone();
            let mut chosen: Vec<Edge> = Vec::new();
            // First pick from the live path, then from anywhere, always
            // keeping the network connected.
            let mut candidates: Vec<Edge> = p
                .windows(2)
                .map(|w| Edge::new(w[0], w[1]))
                .collect();
            let mut extras: Vec<Edge> = graph
                .edges()
                .filter(|e| !candidates.contains(e))
                .collect();
            while chosen.len() < *count && !(candidates.is_empty() && extras.is_empty()) {
                let pool = if candidates.is_empty() {
                    &mut extras
                } else {
                    &mut candidates
                };
                let ix = rng.gen_index(pool.len());
                let edge = pool.swap_remove(ix);
                let reduced = working.without_edge(edge);
                if reduced.is_connected() {
                    working = reduced;
                    chosen.push(edge);
                }
            }
            if chosen.len() < *count {
                return Err(SelectionError::NotEnoughLinks {
                    requested: *count,
                    selected: chosen.len(),
                });
            }
            Ok(FailureSelection::fail_at_zero(chosen, None))
        }
        FailurePlan::NodeOnPath => {
            let p = path()?;
            let victim = interior(&p, rng)?;
            let edges: Vec<Edge> = graph
                .neighbors(victim)
                .iter()
                .map(|&n| Edge::new(victim, n))
                .collect();
            Ok(FailureSelection::fail_at_zero(edges, Some(victim)))
        }
        FailurePlan::NodeCrashRestart { down } => {
            let p = path()?;
            let victim = interior(&p, rng)?;
            let edges: Vec<Edge> = graph
                .neighbors(victim)
                .iter()
                .map(|&n| Edge::new(victim, n))
                .collect();
            Ok(FailureSelection {
                edges,
                // The simulator's crash-restart primitive fails and
                // recovers the links itself; an explicit timeline would
                // double-fail them.
                timeline: Vec::new(),
                impairments: Vec::new(),
                restart: Some(RestartAction {
                    node: victim,
                    down: *down,
                }),
                node: Some(victim),
            })
        }
        FailurePlan::LossyLinkOnPath {
            impairment,
            duration,
        } => {
            if impairment.is_noop() {
                return Err(SelectionError::InvalidPlan(
                    "LossyLinkOnPath requires a non-trivial impairment".into(),
                ));
            }
            let p = path()?;
            let hop = rng.gen_index(p.len() - 1);
            let edge = Edge::new(p[hop], p[hop + 1]);
            Ok(FailureSelection {
                edges: vec![edge],
                timeline: Vec::new(),
                impairments: vec![
                    ImpairmentAction {
                        offset: SimDuration::ZERO,
                        edge,
                        impairment: *impairment,
                    },
                    ImpairmentAction {
                        offset: *duration,
                        edge,
                        impairment: Impairment::NONE,
                    },
                ],
                restart: None,
                node: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_selects_nothing() {
        let sel = FailureSelection::none();
        assert!(sel.edges.is_empty());
        assert!(sel.node.is_none());
    }

    #[test]
    fn specific_link_is_passed_through() {
        // SpecificLink doesn't need the simulator; exercise via a tiny sim.
        let mut b = netsim::simulator::SimulatorBuilder::new();
        let n0 = b.add_node();
        let n1 = b.add_node();
        b.add_link(n0, n1, netsim::link::LinkConfig::default()).unwrap();
        let sim = b.build().unwrap();
        let mut g = Graph::new(2);
        g.add_edge(n0, n1);
        let edge = Edge::new(n0, n1);
        let sel = choose_failure(
            &FailurePlan::SpecificLink(edge),
            &sim,
            &g,
            n0,
            n1,
            &mut SimRng::seed_from(0),
        )
        .unwrap();
        assert_eq!(sel.edges, vec![edge]);
    }

    #[test]
    fn unwarmed_path_is_a_typed_error() {
        // Two disconnected components: no FIB entries exist, so on-path
        // plans must report PathNotConverged instead of panicking.
        let mut b = netsim::simulator::SimulatorBuilder::new();
        let n0 = b.add_node();
        let n1 = b.add_node();
        b.add_link(n0, n1, netsim::link::LinkConfig::default()).unwrap();
        let sim = b.build().unwrap();
        let mut g = Graph::new(2);
        g.add_edge(n0, n1);
        let err = choose_failure(
            &FailurePlan::SingleLinkOnPath,
            &sim,
            &g,
            n0,
            n1,
            &mut SimRng::seed_from(0),
        )
        .unwrap_err();
        assert!(matches!(err, SelectionError::PathNotConverged { .. }));
        assert!(err.to_string().contains("broken"));
    }

    #[test]
    fn degenerate_plans_are_invalid() {
        let mut b = netsim::simulator::SimulatorBuilder::new();
        let n0 = b.add_node();
        let n1 = b.add_node();
        b.add_link(n0, n1, netsim::link::LinkConfig::default()).unwrap();
        let sim = b.build().unwrap();
        let mut g = Graph::new(2);
        g.add_edge(n0, n1);
        let mut rng = SimRng::seed_from(0);
        for plan in [
            FailurePlan::MultipleLinks { count: 0 },
            FailurePlan::FlappingLink {
                cycles: 0,
                down: SimDuration::from_secs(1),
                up: SimDuration::from_secs(1),
            },
            FailurePlan::LossyLinkOnPath {
                impairment: Impairment::NONE,
                duration: SimDuration::from_secs(1),
            },
        ] {
            let err = choose_failure(&plan, &sim, &g, n0, n1, &mut rng).unwrap_err();
            assert!(matches!(err, SelectionError::InvalidPlan(_)), "{plan:?}");
        }
    }
}
