//! Failure plans: what breaks, and how the broken element is chosen.

use netsim::ident::NodeId;
use netsim::rng::SimRng;
use netsim::time::SimDuration;
use netsim::simulator::{ForwardingPath, Simulator};
use topology::graph::{Edge, Graph};

/// What fails during a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailurePlan {
    /// No failure (baseline sanity runs).
    None,
    /// The paper's plan: one link, chosen uniformly from the links on the
    /// live forwarding path between sender and receiver.
    SingleLinkOnPath,
    /// A specific link (for controlled experiments).
    SpecificLink(Edge),
    /// §6 extension: `count` distinct links chosen from the live path and,
    /// when the path is shorter, from the remaining links — skipping
    /// choices that would partition the network.
    MultipleLinks {
        /// How many links to fail simultaneously.
        count: usize,
    },
    /// §6 extension: an interior router on the live path fails entirely
    /// (all its links go down).
    NodeOnPath,
    /// Flap-damping extension: one on-path link flaps `cycles` times
    /// (down for `down`, up for `up`), then stays up.
    FlappingLink {
        /// Number of down/up cycles.
        cycles: u32,
        /// How long the link stays down each cycle.
        down: SimDuration,
        /// How long the link stays up between cycles.
        up: SimDuration,
    },
}

/// One link state change relative to the failure instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureAction {
    /// Offset from the failure instant.
    pub offset: SimDuration,
    /// The affected link.
    pub edge: Edge,
    /// `true` = recover, `false` = fail.
    pub up: bool,
}

/// The concrete selection made for one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureSelection {
    /// The distinct links affected.
    pub edges: Vec<Edge>,
    /// Every scheduled state change, in offset order.
    pub timeline: Vec<FailureAction>,
    /// The failed router, for [`FailurePlan::NodeOnPath`].
    pub node: Option<NodeId>,
}

impl FailureSelection {
    /// A selection that fails nothing.
    #[must_use]
    pub fn none() -> Self {
        FailureSelection {
            edges: Vec::new(),
            timeline: Vec::new(),
            node: None,
        }
    }

    /// All named edges fail once at the failure instant.
    #[must_use]
    pub fn fail_at_zero(edges: Vec<Edge>, node: Option<NodeId>) -> Self {
        let timeline = edges
            .iter()
            .map(|&edge| FailureAction {
                offset: SimDuration::ZERO,
                edge,
                up: false,
            })
            .collect();
        FailureSelection {
            edges,
            timeline,
            node,
        }
    }
}

/// Chooses the concrete failure for a run.
///
/// `sim` must be warmed up: the live forwarding path from `sender` to
/// `receiver` is read from the FIBs, exactly as the paper fails "one of
/// the links along the shortest path between the sender and receiver".
///
/// # Panics
///
/// Panics if the forwarding path is not complete (the runner verifies
/// steady state first) or if a plan cannot be satisfied on this topology.
#[must_use]
pub fn choose_failure(
    plan: &FailurePlan,
    sim: &Simulator,
    graph: &Graph,
    sender: NodeId,
    receiver: NodeId,
    rng: &mut SimRng,
) -> FailureSelection {
    let path = || -> Vec<NodeId> {
        match sim.forwarding_path(sender, receiver) {
            ForwardingPath::Complete(p) => p,
            other => panic!("run not warmed up: {other:?}"),
        }
    };
    match plan {
        FailurePlan::None => FailureSelection::none(),
        FailurePlan::SpecificLink(edge) => FailureSelection::fail_at_zero(vec![*edge], None),
        FailurePlan::SingleLinkOnPath => {
            let p = path();
            let hop = rng.gen_index(p.len() - 1);
            FailureSelection::fail_at_zero(vec![Edge::new(p[hop], p[hop + 1])], None)
        }
        FailurePlan::FlappingLink { cycles, down, up } => {
            assert!(*cycles >= 1, "FlappingLink requires at least one cycle");
            let p = path();
            let hop = rng.gen_index(p.len() - 1);
            let edge = Edge::new(p[hop], p[hop + 1]);
            let mut timeline = Vec::new();
            let mut offset = SimDuration::ZERO;
            for _ in 0..*cycles {
                timeline.push(FailureAction {
                    offset,
                    edge,
                    up: false,
                });
                offset += *down;
                timeline.push(FailureAction {
                    offset,
                    edge,
                    up: true,
                });
                offset += *up;
            }
            FailureSelection {
                edges: vec![edge],
                timeline,
                node: None,
            }
        }
        FailurePlan::MultipleLinks { count } => {
            assert!(*count >= 1, "MultipleLinks requires count >= 1");
            let p = path();
            let mut working: Graph = graph.clone();
            let mut chosen: Vec<Edge> = Vec::new();
            // First pick from the live path, then from anywhere, always
            // keeping the network connected.
            let mut candidates: Vec<Edge> = p
                .windows(2)
                .map(|w| Edge::new(w[0], w[1]))
                .collect();
            let mut extras: Vec<Edge> = graph
                .edges()
                .filter(|e| !candidates.contains(e))
                .collect();
            while chosen.len() < *count && !(candidates.is_empty() && extras.is_empty()) {
                let pool = if candidates.is_empty() {
                    &mut extras
                } else {
                    &mut candidates
                };
                let ix = rng.gen_index(pool.len());
                let edge = pool.swap_remove(ix);
                let reduced = working.without_edge(edge);
                if reduced.is_connected() {
                    working = reduced;
                    chosen.push(edge);
                }
            }
            assert!(
                chosen.len() == *count,
                "could not select {count} non-partitioning links"
            );
            FailureSelection::fail_at_zero(chosen, None)
        }
        FailurePlan::NodeOnPath => {
            let p = path();
            assert!(
                p.len() >= 3,
                "path {p:?} has no interior router to fail"
            );
            let victim = p[1 + rng.gen_index(p.len() - 2)];
            let edges: Vec<Edge> = graph
                .neighbors(victim)
                .iter()
                .map(|&n| Edge::new(victim, n))
                .collect();
            FailureSelection::fail_at_zero(edges, Some(victim))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_selects_nothing() {
        let sel = FailureSelection::none();
        assert!(sel.edges.is_empty());
        assert!(sel.node.is_none());
    }

    #[test]
    fn specific_link_is_passed_through() {
        // SpecificLink doesn't need the simulator; exercise via a tiny sim.
        let mut b = netsim::simulator::SimulatorBuilder::new();
        let n0 = b.add_node();
        let n1 = b.add_node();
        b.add_link(n0, n1, netsim::link::LinkConfig::default()).unwrap();
        let sim = b.build().unwrap();
        let mut g = Graph::new(2);
        g.add_edge(n0, n1);
        let edge = Edge::new(n0, n1);
        let sel = choose_failure(
            &FailurePlan::SpecificLink(edge),
            &sim,
            &g,
            n0,
            n1,
            &mut SimRng::seed_from(0),
        );
        assert_eq!(sel.edges, vec![edge]);
    }
}
