//! Multi-run aggregation: the paper averages every number over 100
//! randomized runs per (protocol, degree) point.
//!
//! Sweeps are embarrassingly parallel — each run slot is a pure function
//! of its seed — so [`run_many_jobs`] and [`run_sweep_with`] distribute
//! slots over a [`std::thread::scope`] worker pool and reassemble results
//! in slot order. For every `jobs` value the output is **bit-identical**
//! to the sequential execution: same seeds, same summaries, same CSV
//! bytes downstream. [`SweepMode::Streaming`] additionally folds each
//! run's trace into the single-pass metric observers and discards it, so
//! a 100-run sweep holds 100 summaries instead of 100 full event traces.

use std::panic::{catch_unwind, AssertUnwindSafe};

use obs::telemetry::RunTelemetry;
use serde::{Deserialize, Serialize};

use crate::experiment::ExperimentConfig;
use crate::metrics::streaming::summarize_streaming;
use crate::metrics::summary::{summarize, RunSummary};
use crate::metrics::MetricsError;
use crate::parallel::par_map_indexed;
use crate::runner::{run, RunError, RunResult};

/// The protocol label a sweep stamps into its telemetry rows: the
/// configured [`ProtocolKind`](crate::protocols::ProtocolKind) label, or
/// the instance name reported by a protocol-override factory.
///
/// Probing the override costs one throwaway build. The hardened sweep
/// must survive a panicking factory (that is its contract), so a panic
/// during the probe is caught here and the label falls back to the
/// configured kind's.
#[must_use]
pub fn protocol_label(config: &ExperimentConfig) -> String {
    match &config.protocol_override {
        Some(factory) => {
            catch_unwind(AssertUnwindSafe(|| factory.build().name().to_string()))
                .unwrap_or_else(|_| config.protocol.label().to_string())
        }
        None => config.protocol.label().to_string(),
    }
}

/// Builds the telemetry record of a completed run slot from its engine
/// counters.
#[must_use]
pub fn run_telemetry(
    slot: u64,
    seed: u64,
    attempts: u32,
    protocol: &str,
    result: &RunResult,
) -> RunTelemetry {
    let s = result.stats;
    RunTelemetry {
        label: String::new(),
        slot,
        seed,
        attempts,
        ok: true,
        protocol: protocol.to_string(),
        events_processed: s.events_processed,
        queue_high_water: s.queue_high_water,
        control_messages: s.control_messages_sent,
        control_bytes: s.control_bytes_sent,
        control_retransmits: s.control_retransmits,
        packets_injected: s.packets_injected,
        packets_delivered: s.packets_delivered,
        packets_dropped: s.packets_dropped,
        watchdog_trips: 0,
        error: String::new(),
    }
}

/// Builds the telemetry record of a slot that failed all attempts.
#[must_use]
pub fn failed_telemetry(
    slot: u64,
    seed: u64,
    attempts: u32,
    protocol: &str,
    error: &RunError,
) -> RunTelemetry {
    let (watchdog_trips, events_processed) = match error {
        RunError::Watchdog { events, .. } => (1, *events),
        _ => (0, 0),
    };
    RunTelemetry {
        slot,
        seed,
        attempts,
        ok: false,
        protocol: protocol.to_string(),
        events_processed,
        watchdog_trips,
        error: error.to_string(),
        ..RunTelemetry::default()
    }
}

/// Mean / standard deviation / extremes of one metric across runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Aggregate {
    /// Aggregates a sample in a single pass (Welford's online algorithm
    /// for the variance, so huge samples neither need a second scan nor
    /// lose precision to the naive sum-of-squares formula).
    ///
    /// Returns `None` on an empty sample.
    #[must_use]
    pub fn of(values: &[f64]) -> Option<Self> {
        if values.is_empty() {
            return None;
        }
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (i, &v) in values.iter().enumerate() {
            let delta = v - mean;
            mean += delta / (i + 1) as f64;
            m2 += delta * (v - mean);
            min = min.min(v);
            max = max.max(v);
        }
        let n = values.len();
        Some(Aggregate {
            mean,
            std_dev: (m2 / n as f64).sqrt(),
            min,
            max,
            n,
        })
    }
}

/// Executes `runs` seeded repetitions of `config` (seeds
/// `base_seed..base_seed+runs`), returning each run's result and summary.
///
/// Sequential convenience wrapper over [`run_many_jobs`].
///
/// # Errors
///
/// Returns the [`RunError`] of the lowest-indexed failing slot.
pub fn run_many(
    config: &ExperimentConfig,
    runs: usize,
    base_seed: u64,
) -> Result<Vec<(RunResult, RunSummary)>, RunError> {
    run_many_jobs(config, runs, base_seed, 1)
}

/// [`run_many`] on up to `jobs` worker threads (`0` = all available
/// cores).
///
/// Per-slot seeds are assigned exactly as in the sequential path, and
/// results are returned in slot order, so the output is identical for
/// every `jobs` value.
///
/// # Errors
///
/// Returns the [`RunError`] of the lowest-indexed failing slot — the same
/// error the sequential execution would have stopped at.
pub fn run_many_jobs(
    config: &ExperimentConfig,
    runs: usize,
    base_seed: u64,
    jobs: usize,
) -> Result<Vec<(RunResult, RunSummary)>, RunError> {
    run_many_jobs_observed(config, runs, base_seed, jobs).map(|(results, _)| results)
}

/// [`run_many_jobs`] that additionally returns one [`RunTelemetry`]
/// record per run, in slot order. The telemetry is a pure function of the
/// seeds — byte-identical (once rendered) for every `jobs` value.
///
/// # Errors
///
/// Returns the [`RunError`] of the lowest-indexed failing slot.
#[allow(clippy::type_complexity)]
pub fn run_many_jobs_observed(
    config: &ExperimentConfig,
    runs: usize,
    base_seed: u64,
    jobs: usize,
) -> Result<(Vec<(RunResult, RunSummary)>, Vec<RunTelemetry>), RunError> {
    let protocol = protocol_label(config);
    let slots: Result<Vec<_>, RunError> = par_map_indexed(runs, jobs, |i| {
        let mut cfg = config.clone();
        cfg.seed = base_seed + i as u64;
        let result = run(&cfg)?;
        let telemetry = run_telemetry(i as u64, cfg.seed, 1, &protocol, &result);
        let summary = summarize(&result)?;
        Ok((result, summary, telemetry))
    })
    .into_iter()
    .collect();
    let slots = slots?;
    let mut results = Vec::with_capacity(slots.len());
    let mut telemetry = Vec::with_capacity(slots.len());
    for (result, summary, t) in slots {
        results.push((result, summary));
        telemetry.push(t);
    }
    Ok((results, telemetry))
}

/// Retry behaviour of [`run_sweep`] when a run's random draw produces an
/// unusable scenario ([`RunError::is_retryable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per run slot, the first included. `1` disables
    /// retries.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3 }
    }
}

impl RetryPolicy {
    /// The reseed used for attempt `attempt` (0-based) of the slot whose
    /// first attempt used `seed`.
    ///
    /// Deterministic, collision-averse (golden-ratio stride in the upper
    /// bits, far from the dense `base_seed..base_seed+runs` band), and
    /// attempt 0 is the unmodified seed so retry-free sweeps match
    /// [`run_many`] exactly.
    #[must_use]
    pub fn derive_seed(seed: u64, attempt: u32) -> u64 {
        seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// What a sweep keeps per completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SweepMode {
    /// Keep the full [`RunResult`] (trace included) next to the summary —
    /// needed when callers extract per-run series or engine counters.
    #[default]
    Trace,
    /// Fold each run's trace through the streaming metric observers
    /// ([`summarize_streaming`]) and discard the trace: memory per run
    /// shrinks from the full event volume to one [`RunSummary`]. The
    /// summaries are identical to the trace path's.
    Streaming,
}

/// Execution options of [`run_sweep_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SweepOptions {
    /// Worker threads (`0` = all available cores, `1` = sequential).
    pub jobs: usize,
    /// Retry behaviour for retryable scenario errors.
    pub retry: RetryPolicy,
    /// What to keep per completed run.
    pub mode: SweepMode,
}

impl SweepOptions {
    /// Sequential, trace-keeping options with the given retry policy —
    /// the behaviour of the original `run_sweep`.
    #[must_use]
    pub fn sequential(retry: RetryPolicy) -> Self {
        SweepOptions {
            jobs: 1,
            retry,
            mode: SweepMode::Trace,
        }
    }
}

/// One run slot that produced no usable result even after retries.
#[derive(Debug)]
pub struct FailedRun {
    /// The slot's base seed (before reseeding).
    pub seed: u64,
    /// Attempts consumed (== the policy's `max_attempts` unless the
    /// error was not retryable).
    pub attempts: u32,
    /// The last error.
    pub error: RunError,
}

/// One successfully completed sweep slot.
#[derive(Debug)]
pub struct CompletedRun {
    /// The full run result; `None` in [`SweepMode::Streaming`], where the
    /// trace was folded into the summary and discarded.
    pub result: Option<RunResult>,
    /// The run's scalar summary.
    pub summary: RunSummary,
    /// Attempts the slot consumed, the first included (> 1 when retryable
    /// scenario errors forced reseeds before this success).
    pub attempts: u32,
}

/// Everything a hardened sweep produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Every successful run, in slot order.
    pub completed: Vec<CompletedRun>,
    /// Slots that failed all attempts, in slot order.
    pub failed: Vec<FailedRun>,
    /// Total retry attempts consumed across the sweep (0 when every slot
    /// succeeded first try).
    pub retries: u64,
    /// One record per slot — completed *and* failed — in slot order.
    pub telemetry: Vec<RunTelemetry>,
}

impl SweepOutcome {
    /// Summaries of the successful runs.
    #[must_use]
    pub fn summaries(&self) -> Vec<RunSummary> {
        self.completed.iter().map(|c| c.summary.clone()).collect()
    }

    /// Retained full results of the successful runs (empty in
    /// [`SweepMode::Streaming`]).
    pub fn results(&self) -> impl Iterator<Item = &RunResult> {
        self.completed.iter().filter_map(|c| c.result.as_ref())
    }
}

/// Per-slot outcome before reassembly. The completed payload is boxed:
/// a trace-retaining [`CompletedRun`] is hundreds of bytes, a
/// [`FailedRun`] a handful. Every slot carries its retry count and
/// telemetry record.
enum SlotOutcome {
    Completed(Box<CompletedRun>, u64, RunTelemetry),
    Failed(FailedRun, u64, RunTelemetry),
}

/// Executes `runs` seeded repetitions of `config` like [`run_many`], but
/// hardened for sweeps over adversarial configurations: every run is
/// isolated with [`catch_unwind`] (a panicking run becomes a
/// [`RunError::Panicked`] entry instead of tearing down the sweep), and
/// retryable errors (no path, unsatisfiable failure selection, caught
/// panics) are retried with deterministically derived reseeds up to
/// `retry.max_attempts` total attempts. Every slot's telemetry records
/// its true attempt count, not just the final attempt's outcome.
///
/// Sequential, trace-keeping convenience wrapper over [`run_sweep_with`].
#[must_use]
pub fn run_sweep(
    config: &ExperimentConfig,
    runs: usize,
    base_seed: u64,
    retry: RetryPolicy,
) -> SweepOutcome {
    run_sweep_with(config, runs, base_seed, SweepOptions::sequential(retry))
}

/// The hardened sweep with explicit execution options: worker threads,
/// retry policy and per-run retention ([`SweepMode`]).
///
/// The sweep itself never fails: unsalvageable slots are reported in
/// [`SweepOutcome::failed`] with their typed error and attempt count.
/// Panic isolation and the retry/reseed logic run inside each worker, and
/// slots are reassembled in slot order, so the outcome is identical for
/// every `jobs` value.
#[must_use]
pub fn run_sweep_with(
    config: &ExperimentConfig,
    runs: usize,
    base_seed: u64,
    options: SweepOptions,
) -> SweepOutcome {
    let max_attempts = options.retry.max_attempts.max(1);
    let protocol = protocol_label(config);
    let slots = par_map_indexed(runs, options.jobs, |i| {
        let slot_seed = base_seed + i as u64;
        let mut attempt = 0;
        let mut retries = 0u64;
        loop {
            let mut cfg = config.clone();
            cfg.seed = RetryPolicy::derive_seed(slot_seed, attempt);
            let attempt_result = catch_unwind(AssertUnwindSafe(|| run(&cfg)))
                .unwrap_or_else(|payload| Err(RunError::Panicked(panic_message(&payload))));
            match attempt_result {
                Ok(result) => {
                    // Telemetry is captured here, while the result (and its
                    // engine counters) is still alive — the streaming mode
                    // discards the RunResult right below.
                    let telemetry =
                        run_telemetry(i as u64, slot_seed, attempt + 1, &protocol, &result);
                    let completed = match options.mode {
                        SweepMode::Trace => summarize(&result).map(|summary| CompletedRun {
                            summary,
                            result: Some(result),
                            attempts: attempt + 1,
                        }),
                        SweepMode::Streaming => {
                            summarize_streaming(&result).map(|summary| CompletedRun {
                                summary,
                                result: None,
                                attempts: attempt + 1,
                            })
                        }
                    };
                    match completed {
                        Ok(completed) => {
                            break SlotOutcome::Completed(Box::new(completed), retries, telemetry)
                        }
                        // A metrics failure is a property of the scenario,
                        // not the draw — report it, never retry it.
                        Err(e) => {
                            let error = RunError::from(e);
                            let telemetry = failed_telemetry(
                                i as u64,
                                slot_seed,
                                attempt + 1,
                                &protocol,
                                &error,
                            );
                            break SlotOutcome::Failed(
                                FailedRun {
                                    seed: slot_seed,
                                    attempts: attempt + 1,
                                    error,
                                },
                                retries,
                                telemetry,
                            );
                        }
                    }
                }
                Err(error) => {
                    if error.is_retryable() && attempt + 1 < max_attempts {
                        attempt += 1;
                        retries += 1;
                        continue;
                    }
                    let telemetry =
                        failed_telemetry(i as u64, slot_seed, attempt + 1, &protocol, &error);
                    break SlotOutcome::Failed(
                        FailedRun {
                            seed: slot_seed,
                            attempts: attempt + 1,
                            error,
                        },
                        retries,
                        telemetry,
                    );
                }
            }
        }
    });
    let mut outcome = SweepOutcome {
        completed: Vec::with_capacity(runs),
        failed: Vec::new(),
        retries: 0,
        telemetry: Vec::with_capacity(runs),
    };
    for slot in slots {
        match slot {
            SlotOutcome::Completed(completed, retries, telemetry) => {
                outcome.completed.push(*completed);
                outcome.retries += retries;
                outcome.telemetry.push(telemetry);
            }
            SlotOutcome::Failed(failed, retries, telemetry) => {
                outcome.failed.push(failed);
                outcome.retries += retries;
                outcome.telemetry.push(telemetry);
            }
        }
    }
    outcome
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The aggregated scalars for one sweep point, in the units the paper
/// plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointSummary {
    /// Mean drops with no route (Fig. 3 y-axis).
    pub drops_no_route: Aggregate,
    /// Mean TTL expirations (Fig. 4 y-axis).
    pub ttl_expirations: Aggregate,
    /// Mean drops on the undetected failed link.
    pub drops_link_down: Aggregate,
    /// Mean total drops.
    pub drops_total: Aggregate,
    /// Mean delivery ratio.
    pub delivery_ratio: Aggregate,
    /// Mean forwarding-path convergence delay (Fig. 6a y-axis).
    pub forwarding_convergence_s: Aggregate,
    /// Mean network routing convergence time (Fig. 6b y-axis).
    pub routing_convergence_s: Aggregate,
    /// Mean count of looping packets.
    pub looped_packets: Aggregate,
    /// Mean count of distinct transient paths.
    pub transient_paths: Aggregate,
    /// Mean control messages per run.
    pub control_messages: Aggregate,
    /// Mean of the per-run maximum switch-over window (Fig. 4.1 factor).
    pub max_switchover_s: Aggregate,
    /// Mean path stretch of delivered flow packets.
    pub mean_stretch: Aggregate,
}

/// Folds per-run summaries into a [`PointSummary`].
///
/// # Errors
///
/// [`MetricsError::EmptySweep`] if `summaries` is empty.
pub fn aggregate_point(summaries: &[RunSummary]) -> Result<PointSummary, MetricsError> {
    let f = |extract: fn(&RunSummary) -> f64| {
        Aggregate::of(&summaries.iter().map(extract).collect::<Vec<f64>>())
            .ok_or(MetricsError::EmptySweep)
    };
    Ok(PointSummary {
        drops_no_route: f(|s| s.drops.no_route as f64)?,
        ttl_expirations: f(|s| s.drops.ttl_expired as f64)?,
        drops_link_down: f(|s| s.drops.link_down as f64)?,
        drops_total: f(|s| s.drops.total() as f64)?,
        delivery_ratio: f(RunSummary::delivery_ratio)?,
        forwarding_convergence_s: f(|s| s.forwarding_convergence_s)?,
        routing_convergence_s: f(|s| s.routing_convergence_s)?,
        looped_packets: f(|s| s.looped_packets as f64)?,
        transient_paths: f(|s| s.transient_paths as f64)?,
        control_messages: f(|s| s.control_messages as f64)?,
        max_switchover_s: f(|s| s.max_switchover_s)?,
        mean_stretch: f(|s| s.mean_stretch)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_of_constant_sample() {
        let a = Aggregate::of(&[3.0, 3.0, 3.0]).unwrap();
        assert_eq!(a.mean, 3.0);
        assert_eq!(a.std_dev, 0.0);
        assert_eq!(a.min, 3.0);
        assert_eq!(a.max, 3.0);
        assert_eq!(a.n, 3);
    }

    #[test]
    fn aggregate_statistics() {
        let a = Aggregate::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((a.mean - 2.5).abs() < 1e-12);
        assert!((a.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 4.0);
    }

    #[test]
    fn empty_sample_is_none() {
        assert_eq!(Aggregate::of(&[]), None);
    }

    #[test]
    fn welford_matches_two_pass_on_a_shifted_sample() {
        // A mean far from zero is where the naive sum-of-squares loses
        // precision; Welford must agree with the two-pass reference.
        let values: Vec<f64> = (0..1000).map(|i| 1.0e9 + f64::from(i) * 0.25).collect();
        let a = Aggregate::of(&values).unwrap();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var =
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        assert!((a.mean - mean).abs() < 1e-3);
        assert!((a.std_dev - var.sqrt()).abs() < 1e-6);
    }
}
