//! Multi-run aggregation: the paper averages every number over 100
//! randomized runs per (protocol, degree) point.

use std::panic::{catch_unwind, AssertUnwindSafe};

use serde::{Deserialize, Serialize};

use crate::experiment::ExperimentConfig;
use crate::metrics::summary::{summarize, RunSummary};
use crate::runner::{run, RunError, RunResult};

/// Mean / standard deviation / extremes of one metric across runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Number of observations.
    pub n: usize,
}

impl Aggregate {
    /// Aggregates a sample.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample.
    #[must_use]
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot aggregate zero observations");
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        Aggregate {
            mean,
            std_dev: var.sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            n,
        }
    }
}

/// Executes `runs` seeded repetitions of `config` (seeds
/// `base_seed..base_seed+runs`), returning each run's result and summary.
///
/// Runs whose random draw produced an unusable scenario (e.g. sender ==
/// receiver candidates exhausted) propagate their error.
///
/// # Errors
///
/// Returns the first [`RunError`] encountered.
pub fn run_many(
    config: &ExperimentConfig,
    runs: usize,
    base_seed: u64,
) -> Result<Vec<(RunResult, RunSummary)>, RunError> {
    (0..runs)
        .map(|i| {
            let mut cfg = config.clone();
            cfg.seed = base_seed + i as u64;
            let result = run(&cfg)?;
            let summary = summarize(&result);
            Ok((result, summary))
        })
        .collect()
}

/// Retry behaviour of [`run_sweep`] when a run's random draw produces an
/// unusable scenario ([`RunError::is_retryable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per run slot, the first included. `1` disables
    /// retries.
    pub max_attempts: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3 }
    }
}

impl RetryPolicy {
    /// The reseed used for attempt `attempt` (0-based) of the slot whose
    /// first attempt used `seed`.
    ///
    /// Deterministic, collision-averse (golden-ratio stride in the upper
    /// bits, far from the dense `base_seed..base_seed+runs` band), and
    /// attempt 0 is the unmodified seed so retry-free sweeps match
    /// [`run_many`] exactly.
    #[must_use]
    pub fn derive_seed(seed: u64, attempt: u32) -> u64 {
        seed.wrapping_add(u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

/// One run slot that produced no usable result even after retries.
#[derive(Debug)]
pub struct FailedRun {
    /// The slot's base seed (before reseeding).
    pub seed: u64,
    /// Attempts consumed (== the policy's `max_attempts` unless the
    /// error was not retryable).
    pub attempts: u32,
    /// The last error.
    pub error: RunError,
}

/// Everything a hardened sweep produced.
#[derive(Debug)]
pub struct SweepOutcome {
    /// Result and summary of every successful run, in slot order.
    pub completed: Vec<(RunResult, RunSummary)>,
    /// Slots that failed all attempts, in slot order.
    pub failed: Vec<FailedRun>,
    /// Total retry attempts consumed across the sweep (0 when every slot
    /// succeeded first try).
    pub retries: u64,
}

impl SweepOutcome {
    /// Summaries of the successful runs.
    #[must_use]
    pub fn summaries(&self) -> Vec<RunSummary> {
        self.completed.iter().map(|(_, s)| s.clone()).collect()
    }
}

/// Executes `runs` seeded repetitions of `config` like [`run_many`], but
/// hardened for sweeps over adversarial configurations: every run is
/// isolated with [`catch_unwind`] (a panicking run becomes a
/// [`RunError::Panicked`] entry instead of tearing down the sweep), and
/// retryable scenario errors (no path, unsatisfiable failure selection)
/// are retried with deterministically derived reseeds up to
/// `retry.max_attempts` total attempts.
///
/// The sweep itself never fails: unsalvageable slots are reported in
/// [`SweepOutcome::failed`] with their typed error and attempt count.
#[must_use]
pub fn run_sweep(
    config: &ExperimentConfig,
    runs: usize,
    base_seed: u64,
    retry: RetryPolicy,
) -> SweepOutcome {
    let max_attempts = retry.max_attempts.max(1);
    let mut outcome = SweepOutcome {
        completed: Vec::with_capacity(runs),
        failed: Vec::new(),
        retries: 0,
    };
    for i in 0..runs {
        let slot_seed = base_seed + i as u64;
        let mut attempt = 0;
        loop {
            let mut cfg = config.clone();
            cfg.seed = RetryPolicy::derive_seed(slot_seed, attempt);
            let attempt_result = catch_unwind(AssertUnwindSafe(|| run(&cfg)))
                .unwrap_or_else(|payload| Err(RunError::Panicked(panic_message(&payload))));
            match attempt_result {
                Ok(result) => {
                    let summary = summarize(&result);
                    outcome.completed.push((result, summary));
                    break;
                }
                Err(error) => {
                    if error.is_retryable() && attempt + 1 < max_attempts {
                        attempt += 1;
                        outcome.retries += 1;
                        continue;
                    }
                    outcome.failed.push(FailedRun {
                        seed: slot_seed,
                        attempts: attempt + 1,
                        error,
                    });
                    break;
                }
            }
        }
    }
    outcome
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The aggregated scalars for one sweep point, in the units the paper
/// plots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointSummary {
    /// Mean drops with no route (Fig. 3 y-axis).
    pub drops_no_route: Aggregate,
    /// Mean TTL expirations (Fig. 4 y-axis).
    pub ttl_expirations: Aggregate,
    /// Mean drops on the undetected failed link.
    pub drops_link_down: Aggregate,
    /// Mean total drops.
    pub drops_total: Aggregate,
    /// Mean delivery ratio.
    pub delivery_ratio: Aggregate,
    /// Mean forwarding-path convergence delay (Fig. 6a y-axis).
    pub forwarding_convergence_s: Aggregate,
    /// Mean network routing convergence time (Fig. 6b y-axis).
    pub routing_convergence_s: Aggregate,
    /// Mean count of looping packets.
    pub looped_packets: Aggregate,
    /// Mean count of distinct transient paths.
    pub transient_paths: Aggregate,
    /// Mean control messages per run.
    pub control_messages: Aggregate,
    /// Mean of the per-run maximum switch-over window (Fig. 4.1 factor).
    pub max_switchover_s: Aggregate,
    /// Mean path stretch of delivered flow packets.
    pub mean_stretch: Aggregate,
}

/// Folds per-run summaries into a [`PointSummary`].
///
/// # Panics
///
/// Panics if `summaries` is empty.
#[must_use]
pub fn aggregate_point(summaries: &[RunSummary]) -> PointSummary {
    let f = |extract: fn(&RunSummary) -> f64| {
        Aggregate::of(&summaries.iter().map(extract).collect::<Vec<f64>>())
    };
    PointSummary {
        drops_no_route: f(|s| s.drops.no_route as f64),
        ttl_expirations: f(|s| s.drops.ttl_expired as f64),
        drops_link_down: f(|s| s.drops.link_down as f64),
        drops_total: f(|s| s.drops.total() as f64),
        delivery_ratio: f(RunSummary::delivery_ratio),
        forwarding_convergence_s: f(|s| s.forwarding_convergence_s),
        routing_convergence_s: f(|s| s.routing_convergence_s),
        looped_packets: f(|s| s.looped_packets as f64),
        transient_paths: f(|s| s.transient_paths as f64),
        control_messages: f(|s| s.control_messages as f64),
        max_switchover_s: f(|s| s.max_switchover_s),
        mean_stretch: f(|s| s.mean_stretch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_of_constant_sample() {
        let a = Aggregate::of(&[3.0, 3.0, 3.0]);
        assert_eq!(a.mean, 3.0);
        assert_eq!(a.std_dev, 0.0);
        assert_eq!(a.min, 3.0);
        assert_eq!(a.max, 3.0);
        assert_eq!(a.n, 3);
    }

    #[test]
    fn aggregate_statistics() {
        let a = Aggregate::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((a.mean - 2.5).abs() < 1e-12);
        assert!((a.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(a.min, 1.0);
        assert_eq!(a.max, 4.0);
    }

    #[test]
    #[should_panic(expected = "zero observations")]
    fn empty_sample_panics() {
        let _ = Aggregate::of(&[]);
    }
}
