//! The protocol family under study, as a runtime-selectable factory.

use std::fmt;

use netsim::protocol::RoutingProtocol;
use serde::{Deserialize, Serialize};

/// Which routing protocol a run uses.
///
/// `Rip`, `Dbf`, `Bgp` and `Bgp3` are the paper's four lines; `Spf` is the
/// §6 link-state extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// RIP: best route only, 30 s periodic updates.
    Rip,
    /// Distributed Bellman-Ford: RIP + per-neighbor cache.
    Dbf,
    /// BGP with the recommended 30 s average MRAI.
    Bgp,
    /// BGP with a 3 s average MRAI (the paper's special parameterization).
    Bgp3,
    /// Link-state shortest-path-first (extension).
    Spf,
    /// Loop-free distance vector with diffusing computations (extension;
    /// the paper's §2/§6 comparator).
    Dual,
}

impl ProtocolKind {
    /// The four protocols evaluated in the paper's figures.
    pub const PAPER: [ProtocolKind; 4] = [
        ProtocolKind::Rip,
        ProtocolKind::Dbf,
        ProtocolKind::Bgp,
        ProtocolKind::Bgp3,
    ];

    /// All protocols including the link-state and DUAL extensions.
    pub const ALL: [ProtocolKind; 6] = [
        ProtocolKind::Rip,
        ProtocolKind::Dbf,
        ProtocolKind::Bgp,
        ProtocolKind::Bgp3,
        ProtocolKind::Spf,
        ProtocolKind::Dual,
    ];

    /// Instantiates a protocol engine for one router.
    #[must_use]
    pub fn build(self) -> Box<dyn RoutingProtocol> {
        match self {
            ProtocolKind::Rip => Box::new(rip::Rip::new()),
            ProtocolKind::Dbf => Box::new(dbf::Dbf::new()),
            ProtocolKind::Bgp => Box::new(bgp::Bgp::new()),
            ProtocolKind::Bgp3 => Box::new(bgp::Bgp::bgp3()),
            ProtocolKind::Spf => Box::new(spf::Spf::new()),
            ProtocolKind::Dual => Box::new(dual::Dual::new()),
        }
    }

    /// The label used in reports and CSV columns.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Rip => "RIP",
            ProtocolKind::Dbf => "DBF",
            ProtocolKind::Bgp => "BGP",
            ProtocolKind::Bgp3 => "BGP-3",
            ProtocolKind::Spf => "SPF",
            ProtocolKind::Dual => "DUAL",
        }
    }

    /// Whether convergence is throttled by long (tens of seconds) timers,
    /// which informs the warm-up quiescence threshold.
    #[must_use]
    pub fn slow_timers(self) -> bool {
        matches!(
            self,
            ProtocolKind::Rip | ProtocolKind::Dbf | ProtocolKind::Bgp
        )
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factory_builds_the_right_engines() {
        assert_eq!(ProtocolKind::Rip.build().name(), "rip");
        assert_eq!(ProtocolKind::Dbf.build().name(), "dbf");
        assert_eq!(ProtocolKind::Bgp.build().name(), "bgp");
        assert_eq!(ProtocolKind::Bgp3.build().name(), "bgp");
        assert_eq!(ProtocolKind::Spf.build().name(), "spf");
        assert_eq!(ProtocolKind::Dual.build().name(), "dual");
    }

    #[test]
    fn labels_are_the_paper_names() {
        let labels: Vec<&str> = ProtocolKind::PAPER.iter().map(|p| p.label()).collect();
        assert_eq!(labels, ["RIP", "DBF", "BGP", "BGP-3"]);
    }

    #[test]
    fn paper_set_is_a_prefix_of_all() {
        assert_eq!(&ProtocolKind::ALL[..4], &ProtocolKind::PAPER[..]);
    }
}
