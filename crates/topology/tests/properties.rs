//! Property-based tests over the topology crate.

use netsim::ident::NodeId;
use netsim::rng::SimRng;
use proptest::prelude::*;
use topology::analysis::survives_failure;
use topology::graph::Graph;
use topology::mesh::{Mesh, MeshDegree};
use topology::random::gilbert;
use topology::shortest_path::{all_pairs_distances, bfs};

fn degree_strategy() -> impl Strategy<Value = MeshDegree> {
    prop::sample::select(MeshDegree::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every interior node of every mesh size has exactly the nominal degree.
    #[test]
    fn mesh_interior_regularity(rows in 3usize..9, cols in 3usize..9, degree in degree_strategy()) {
        let mesh = Mesh::regular(rows, cols, degree);
        for node in mesh.graph().nodes() {
            if mesh.is_interior(node) {
                prop_assert_eq!(mesh.graph().degree(node) as u32, degree.as_u32());
            } else {
                prop_assert!(mesh.graph().degree(node) as u32 <= degree.as_u32());
            }
        }
    }

    /// All regular meshes are connected and survive any single link failure.
    #[test]
    fn mesh_single_failure_survivability(rows in 3usize..8, cols in 3usize..8, degree in degree_strategy()) {
        let mesh = Mesh::regular(rows, cols, degree);
        prop_assert!(mesh.graph().is_connected());
        for edge in mesh.graph().edges() {
            prop_assert!(survives_failure(mesh.graph(), edge));
        }
    }

    /// BFS distances satisfy the triangle inequality over one hop:
    /// |d(u) - d(v)| <= 1 for every edge {u, v}.
    #[test]
    fn bfs_distances_are_lipschitz(rows in 3usize..8, cols in 3usize..8, degree in degree_strategy(), src_ix in 0usize..64) {
        let mesh = Mesh::regular(rows, cols, degree);
        let n = mesh.graph().num_nodes();
        let src = NodeId::new((src_ix % n) as u32);
        let sp = bfs(mesh.graph(), src);
        for edge in mesh.graph().edges() {
            let du = sp.distance(edge.a).unwrap() as i64;
            let dv = sp.distance(edge.b).unwrap() as i64;
            prop_assert!((du - dv).abs() <= 1, "edge {:?}: {} vs {}", edge, du, dv);
        }
    }

    /// Every BFS path is a real path in the graph and has length == distance.
    #[test]
    fn bfs_paths_are_consistent(rows in 3usize..7, cols in 3usize..7, degree in degree_strategy()) {
        let mesh = Mesh::regular(rows, cols, degree);
        let src = mesh.node_at(0, 0);
        let sp = bfs(mesh.graph(), src);
        for dst in mesh.graph().nodes() {
            let path = sp.path_to(dst).unwrap();
            prop_assert_eq!(path.len() as u32 - 1, sp.distance(dst).unwrap());
            prop_assert_eq!(*path.first().unwrap(), src);
            prop_assert_eq!(*path.last().unwrap(), dst);
            for w in path.windows(2) {
                prop_assert!(mesh.graph().has_edge(w[0], w[1]));
            }
        }
    }

    /// Random graphs from the same seed are identical; all are connected.
    #[test]
    fn gilbert_determinism_and_connectivity(seed in 0u64..500, n in 5usize..40) {
        let a = gilbert(n, 0.1, &mut SimRng::seed_from(seed));
        let b = gilbert(n, 0.1, &mut SimRng::seed_from(seed));
        prop_assert_eq!(&a, &b);
        prop_assert!(a.is_connected());
    }

    /// Mesh shortest-path distances are symmetric, zero exactly on the
    /// diagonal, and bounded by the grid's worst-case diameter — for
    /// arbitrary grid sizes and every nominal degree.
    #[test]
    fn mesh_distances_symmetric_and_bounded(
        rows in 3usize..9,
        cols in 3usize..9,
        degree in degree_strategy(),
    ) {
        let mesh = Mesh::regular(rows, cols, degree);
        let d = all_pairs_distances(mesh.graph());
        // Degree 3 omits some lattice links, but never disconnects the
        // grid or worse than doubles the degree-4 Manhattan diameter.
        let diameter_bound = 2 * (rows + cols) as u32;
        for (i, row) in d.iter().enumerate() {
            for (j, value) in row.iter().enumerate() {
                prop_assert_eq!(*value, d[j][i], "asymmetry at ({}, {})", i, j);
                if i == j {
                    prop_assert_eq!(*value, Some(0));
                } else {
                    let dist = value.expect("regular meshes are connected");
                    prop_assert!(dist >= 1);
                    prop_assert!(dist <= diameter_bound,
                        "distance {} exceeds bound {}", dist, diameter_bound);
                }
            }
        }
    }

    /// Distance matrices are symmetric and zero on the diagonal.
    #[test]
    fn distances_symmetric(seed in 0u64..100) {
        let g = gilbert(15, 0.25, &mut SimRng::seed_from(seed));
        let d = all_pairs_distances(&g);
        for (i, row) in d.iter().enumerate() {
            prop_assert_eq!(row[i], Some(0));
            for (j, value) in row.iter().enumerate() {
                prop_assert_eq!(*value, d[j][i]);
            }
        }
    }
}

#[test]
fn handshake_lemma_holds_for_all_meshes() {
    for degree in MeshDegree::ALL {
        let mesh = Mesh::regular(7, 7, degree);
        let degree_sum: usize = mesh
            .graph()
            .nodes()
            .map(|n| mesh.graph().degree(n))
            .sum();
        assert_eq!(degree_sum, 2 * mesh.graph().num_edges());
    }
}

#[test]
fn graph_equality_is_structural() {
    let mut a = Graph::new(3);
    a.add_edge(NodeId::new(0), NodeId::new(1));
    a.add_edge(NodeId::new(1), NodeId::new(2));
    let mut b = Graph::new(3);
    b.add_edge(NodeId::new(1), NodeId::new(2));
    b.add_edge(NodeId::new(1), NodeId::new(0));
    // Same edge set but different insertion order: adjacency lists differ,
    // which is observable (deterministic iteration), so equality is strict.
    assert_ne!(a, b);
}
