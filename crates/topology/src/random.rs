//! Random topology generators for the extension experiments.
//!
//! The paper deliberately uses regular meshes ("a random topology presents a
//! random factor in each simulation run", §5); the study's extensions use
//! these generators to confirm that the degree-vs-delivery trend is not an
//! artifact of mesh regularity.

use netsim::ident::NodeId;
use netsim::rng::SimRng;

use crate::graph::Graph;

/// Generates a connected Gilbert `G(n, p)` random graph.
///
/// Each potential edge is included independently with probability `p`;
/// afterwards, any disconnected component is stitched to the first component
/// with one edge (keeping the graph simple), so the result is always
/// connected and usable as a network topology.
///
/// # Examples
///
/// ```
/// use topology::random::gilbert;
/// use netsim::rng::SimRng;
///
/// let g = gilbert(20, 0.2, &mut SimRng::seed_from(1));
/// assert!(g.is_connected());
/// assert_eq!(g.num_nodes(), 20);
/// ```
///
/// # Panics
///
/// Panics if `n < 2` or `p` is not in `[0, 1]`.
#[must_use]
pub fn gilbert(n: usize, p: f64, rng: &mut SimRng) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    assert!((0.0..=1.0).contains(&p), "p must be a probability, got {p}");
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.gen_unit() < p {
                g.add_edge(NodeId::new(i as u32), NodeId::new(j as u32));
            }
        }
    }
    stitch_components(&mut g, rng);
    g
}

/// Generates a connected Waxman random graph on a unit square.
///
/// Nodes get uniform positions; the probability of an edge between nodes at
/// Euclidean distance `d` is `alpha * exp(-d / (beta * L))` with `L` the
/// maximum possible distance. Classic parameters are `alpha=0.4, beta=0.14`.
///
/// # Panics
///
/// Panics if `n < 2` or the parameters are non-positive.
#[must_use]
pub fn waxman(n: usize, alpha: f64, beta: f64, rng: &mut SimRng) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    assert!(alpha > 0.0 && beta > 0.0, "alpha and beta must be positive");
    let positions: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen_unit(), rng.gen_unit())).collect();
    let l = 2f64.sqrt();
    let mut g = Graph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let (xi, yi) = positions[i];
            let (xj, yj) = positions[j];
            let d = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            let p = alpha * (-d / (beta * l)).exp();
            if rng.gen_unit() < p {
                g.add_edge(NodeId::new(i as u32), NodeId::new(j as u32));
            }
        }
    }
    stitch_components(&mut g, rng);
    g
}

/// Connects all components by linking a random node of each non-primary
/// component to a random node of the primary one.
fn stitch_components(g: &mut Graph, rng: &mut SimRng) {
    let n = g.num_nodes();
    loop {
        let mut comp = vec![usize::MAX; n];
        let mut count = 0;
        for start in 0..n {
            if comp[start] != usize::MAX {
                continue;
            }
            let mut stack = vec![NodeId::new(start as u32)];
            comp[start] = count;
            while let Some(at) = stack.pop() {
                for &m in g.neighbors(at) {
                    if comp[m.index()] == usize::MAX {
                        comp[m.index()] = count;
                        stack.push(m);
                    }
                }
            }
            count += 1;
        }
        if count == 1 {
            return;
        }
        // Join component 1 to component 0 with a random edge.
        let members = |c: usize| -> Vec<NodeId> {
            comp.iter()
                .enumerate()
                .filter(|&(_, &cc)| cc == c)
                .map(|(i, _)| NodeId::new(i as u32))
                .collect()
        };
        let from = *rng.choose(&members(0));
        let to = *rng.choose(&members(1));
        g.add_edge(from, to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gilbert_is_connected_even_when_sparse() {
        for seed in 0..20 {
            let g = gilbert(30, 0.02, &mut SimRng::seed_from(seed));
            assert!(g.is_connected(), "seed {seed} produced a partition");
        }
    }

    #[test]
    fn gilbert_density_tracks_p() {
        let mut rng = SimRng::seed_from(5);
        let sparse = gilbert(40, 0.05, &mut rng);
        let dense = gilbert(40, 0.5, &mut rng);
        assert!(dense.num_edges() > sparse.num_edges() * 3);
    }

    #[test]
    fn gilbert_is_deterministic_per_seed() {
        let a = gilbert(25, 0.15, &mut SimRng::seed_from(9));
        let b = gilbert(25, 0.15, &mut SimRng::seed_from(9));
        assert_eq!(a, b);
    }

    #[test]
    fn waxman_is_connected_and_deterministic() {
        let a = waxman(30, 0.4, 0.14, &mut SimRng::seed_from(3));
        let b = waxman(30, 0.4, 0.14, &mut SimRng::seed_from(3));
        assert!(a.is_connected());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn gilbert_rejects_bad_p() {
        let _ = gilbert(10, 1.5, &mut SimRng::seed_from(0));
    }
}
