//! Turning an abstract [`Graph`] into a simulated network.

use std::collections::BTreeMap;

use netsim::error::BuildError;
use netsim::ident::LinkId;
use netsim::link::LinkConfig;
use netsim::simulator::SimulatorBuilder;

use crate::graph::{Edge, Graph};

/// Adds every node and edge of `graph` to a fresh [`SimulatorBuilder`],
/// returning the builder and the edge-to-link mapping (needed to schedule
/// failures of specific topology edges).
///
/// # Errors
///
/// Propagates [`BuildError`]s from the builder (cannot occur for a valid
/// [`Graph`], which already excludes self-loops and duplicates).
///
/// # Examples
///
/// ```
/// use topology::mesh::{Mesh, MeshDegree};
/// use topology::instantiate::to_simulator_builder;
/// use netsim::link::LinkConfig;
///
/// let mesh = Mesh::regular(7, 7, MeshDegree::D4);
/// let (builder, links) = to_simulator_builder(mesh.graph(), LinkConfig::default())?;
/// let sim = builder.build()?;
/// assert_eq!(sim.num_nodes(), 49);
/// assert_eq!(links.len(), mesh.graph().num_edges());
/// # Ok::<(), netsim::error::BuildError>(())
/// ```
pub fn to_simulator_builder(
    graph: &Graph,
    config: LinkConfig,
) -> Result<(SimulatorBuilder, BTreeMap<Edge, LinkId>), BuildError> {
    let mut builder = SimulatorBuilder::new();
    builder.add_nodes(graph.num_nodes());
    let mut mapping = BTreeMap::new();
    for edge in graph.edges() {
        let link = builder.add_link(edge.a, edge.b, config)?;
        mapping.insert(edge, link);
    }
    Ok((builder, mapping))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Mesh, MeshDegree};
    use netsim::ident::NodeId;

    #[test]
    fn every_edge_becomes_a_link() {
        let mesh = Mesh::regular(5, 5, MeshDegree::D6);
        let (builder, links) =
            to_simulator_builder(mesh.graph(), LinkConfig::default()).unwrap();
        let sim = builder.build().unwrap();
        assert_eq!(sim.num_links(), mesh.graph().num_edges());
        for (edge, link) in &links {
            let (a, b) = sim.link_endpoints(*link);
            assert_eq!(Edge::new(a, b), *edge);
        }
    }

    #[test]
    fn adjacency_matches_graph() {
        let mesh = Mesh::regular(4, 4, MeshDegree::D4);
        let (builder, _) = to_simulator_builder(mesh.graph(), LinkConfig::default()).unwrap();
        let sim = builder.build().unwrap();
        for node in mesh.graph().nodes() {
            let mut sim_neighbors = sim.neighbors(node);
            let mut graph_neighbors = mesh.graph().neighbors(node).to_vec();
            sim_neighbors.sort_unstable();
            graph_neighbors.sort_unstable();
            assert_eq!(sim_neighbors, graph_neighbors, "mismatch at {node}");
        }
        assert_eq!(sim.neighbors(NodeId::new(0)).len(), 2);
    }
}
