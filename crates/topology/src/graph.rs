//! An undirected simple graph over [`NodeId`]s.
//!
//! This is the topology-description layer: experiments build a [`Graph`]
//! first (usually with [`crate::mesh`]), analyze it, then instantiate it as
//! a simulated network.

use std::collections::BTreeSet;

use netsim::ident::NodeId;
use serde::{Deserialize, Serialize};

/// An undirected edge, stored with `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    /// Lower-numbered endpoint.
    pub a: NodeId,
    /// Higher-numbered endpoint.
    pub b: NodeId,
}

impl Edge {
    /// Creates a normalized edge.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    #[must_use]
    pub fn new(a: NodeId, b: NodeId) -> Self {
        assert_ne!(a, b, "self-loop edge at {a}");
        if a < b {
            Edge { a, b }
        } else {
            Edge { a: b, b: a }
        }
    }

    /// Given one endpoint, returns the other; `None` if `n` is not an
    /// endpoint.
    #[must_use]
    pub fn other(&self, n: NodeId) -> Option<NodeId> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// An undirected simple graph.
///
/// # Examples
///
/// ```
/// use topology::graph::Graph;
/// use netsim::ident::NodeId;
///
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(1), NodeId::new(2));
/// assert_eq!(g.degree(NodeId::new(1)), 2);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    num_nodes: usize,
    edges: BTreeSet<Edge>,
    adjacency: Vec<Vec<NodeId>>,
}

impl Graph {
    /// Creates a graph with `num_nodes` isolated nodes.
    #[must_use]
    pub fn new(num_nodes: usize) -> Self {
        Graph {
            num_nodes,
            edges: BTreeSet::new(),
            adjacency: vec![Vec::new(); num_nodes],
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{a, b}`; duplicate additions are no-ops.
    ///
    /// Returns `true` if the edge was new.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId) -> bool {
        assert!(a.index() < self.num_nodes, "node {a} out of range");
        assert!(b.index() < self.num_nodes, "node {b} out of range");
        let edge = Edge::new(a, b);
        if self.edges.insert(edge) {
            self.adjacency[a.index()].push(b);
            self.adjacency[b.index()].push(a);
            true
        } else {
            false
        }
    }

    /// Returns `true` if `{a, b}` is an edge.
    #[must_use]
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.edges.contains(&Edge::new(a, b))
    }

    /// The neighbors of `n` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        &self.adjacency[n.index()]
    }

    /// The degree of `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn degree(&self, n: NodeId) -> usize {
        self.adjacency[n.index()].len()
    }

    /// Iterates over all edges in normalized order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edges.iter().copied()
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.num_nodes as u32).map(NodeId::new)
    }

    /// Returns a copy of the graph with one edge removed.
    ///
    /// # Panics
    ///
    /// Panics if the edge does not exist.
    #[must_use]
    pub fn without_edge(&self, edge: Edge) -> Graph {
        assert!(self.edges.contains(&edge), "no such edge {edge:?}");
        let mut g = Graph::new(self.num_nodes);
        for e in &self.edges {
            if *e != edge {
                g.add_edge(e.a, e.b);
            }
        }
        g
    }

    /// Returns `true` if every node can reach every other node.
    ///
    /// The empty graph is considered connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        if self.num_nodes == 0 {
            return true;
        }
        let mut seen = vec![false; self.num_nodes];
        let mut stack = vec![NodeId::new(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &m in self.neighbors(n) {
                if !seen[m.index()] {
                    seen[m.index()] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        count == self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn edges_are_normalized_and_deduplicated() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(n(2), n(1)));
        assert!(!g.add_edge(n(1), n(2)));
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(n(1), n(2)));
        assert!(g.has_edge(n(2), n(1)));
    }

    #[test]
    fn edge_other_returns_opposite_endpoint() {
        let e = Edge::new(n(3), n(1));
        assert_eq!(e.other(n(1)), Some(n(3)));
        assert_eq!(e.other(n(3)), Some(n(1)));
        assert_eq!(e.other(n(2)), None);
    }

    #[test]
    fn degree_counts_incident_edges() {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(2));
        g.add_edge(n(0), n(3));
        assert_eq!(g.degree(n(0)), 3);
        assert_eq!(g.degree(n(3)), 1);
    }

    #[test]
    fn connectivity_detects_partitions() {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(2), n(3));
        assert!(!g.is_connected());
        g.add_edge(n(1), n(2));
        assert!(g.is_connected());
    }

    #[test]
    fn without_edge_removes_exactly_one() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        let g2 = g.without_edge(Edge::new(n(0), n(1)));
        assert_eq!(g2.num_edges(), 1);
        assert!(!g2.has_edge(n(0), n(1)));
        assert!(g2.has_edge(n(1), n(2)));
        // Original untouched.
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn empty_graph_is_connected() {
        assert!(Graph::new(0).is_connected());
        assert!(Graph::new(1).is_connected());
        assert!(!Graph::new(2).is_connected());
    }
}
