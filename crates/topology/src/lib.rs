//! # topology — network topologies for the routing-convergence study
//!
//! Provides the paper's family of Baran-style regular meshes with interior
//! degree 3 through 8 ([`mesh`]), random generators for extensions
//! ([`random`]), shortest-path ground truth ([`shortest_path`]), structural
//! analysis ([`analysis`]) and instantiation into `netsim` networks
//! ([`instantiate`]).
//!
//! ```
//! use topology::mesh::{Mesh, MeshDegree};
//! use topology::shortest_path::bfs;
//!
//! let mesh = Mesh::regular(7, 7, MeshDegree::D5);
//! let sp = bfs(mesh.graph(), mesh.node_at(0, 3));
//! assert!(sp.distance(mesh.node_at(6, 3)).unwrap() <= 6);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod analysis;
pub mod graph;
pub mod instantiate;
pub mod mesh;
pub mod random;
pub mod shortest_path;

pub use graph::{Edge, Graph};
pub use mesh::{Mesh, MeshDegree};
pub use shortest_path::{bfs, ShortestPaths};
