//! Baran-style regular mesh topologies.
//!
//! The paper evaluates protocols on an *n × n* mesh in which every node off
//! the border has the same degree, "constructed with a deterministic method
//! similar to the one used by Baran" (§5). This module provides one such
//! deterministic family for interior degrees 3 through 8:
//!
//! * **3** — brick wall: all horizontal links, vertical links only where
//!   `(row + col)` is even;
//! * **4** — the full rectangular grid;
//! * **5** — grid plus `\` diagonals on even rows (each interior node gains
//!   exactly one diagonal);
//! * **6** — grid plus all `\` diagonals;
//! * **7** — degree 6 plus `/` diagonals on even rows;
//! * **8** — grid plus all `\` and `/` diagonals.
//!
//! The sender attaches to a first-row router and the receiver to a last-row
//! router, so [`Mesh::first_row`] and [`Mesh::last_row`] expose those sets.

use std::fmt;

use netsim::ident::NodeId;
use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// The interior node degree of a regular mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MeshDegree {
    /// Brick wall, interior degree 3.
    D3,
    /// Rectangular grid, interior degree 4.
    D4,
    /// Grid + matched `\` diagonals, interior degree 5.
    D5,
    /// Grid + all `\` diagonals, interior degree 6.
    D6,
    /// Degree 6 + matched `/` diagonals, interior degree 7.
    D7,
    /// Grid + all diagonals, interior degree 8.
    D8,
}

impl MeshDegree {
    /// All degrees in ascending order (the paper's x-axis).
    pub const ALL: [MeshDegree; 6] = [
        MeshDegree::D3,
        MeshDegree::D4,
        MeshDegree::D5,
        MeshDegree::D6,
        MeshDegree::D7,
        MeshDegree::D8,
    ];

    /// The numeric interior degree.
    #[must_use]
    pub fn as_u32(self) -> u32 {
        match self {
            MeshDegree::D3 => 3,
            MeshDegree::D4 => 4,
            MeshDegree::D5 => 5,
            MeshDegree::D6 => 6,
            MeshDegree::D7 => 7,
            MeshDegree::D8 => 8,
        }
    }

    /// Parses a numeric degree.
    ///
    /// # Errors
    ///
    /// Returns the offending value if it is outside `3..=8`.
    pub fn try_from_u32(d: u32) -> Result<Self, u32> {
        match d {
            3 => Ok(MeshDegree::D3),
            4 => Ok(MeshDegree::D4),
            5 => Ok(MeshDegree::D5),
            6 => Ok(MeshDegree::D6),
            7 => Ok(MeshDegree::D7),
            8 => Ok(MeshDegree::D8),
            other => Err(other),
        }
    }
}

impl fmt::Display for MeshDegree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_u32())
    }
}

/// A regular mesh: the graph plus its coordinate system.
///
/// # Examples
///
/// ```
/// use topology::mesh::{Mesh, MeshDegree};
///
/// // The paper's 7x7, 49-router topology at degree 6.
/// let mesh = Mesh::regular(7, 7, MeshDegree::D6);
/// assert_eq!(mesh.graph().num_nodes(), 49);
/// let center = mesh.node_at(3, 3);
/// assert_eq!(mesh.graph().degree(center), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    rows: usize,
    cols: usize,
    degree: MeshDegree,
    graph: Graph,
}

impl Mesh {
    /// Builds the deterministic regular mesh of the requested interior
    /// degree.
    ///
    /// # Panics
    ///
    /// Panics if `rows < 3` or `cols < 3` (smaller meshes have no interior).
    #[must_use]
    pub fn regular(rows: usize, cols: usize, degree: MeshDegree) -> Self {
        assert!(rows >= 3 && cols >= 3, "mesh must be at least 3x3");
        let mut graph = Graph::new(rows * cols);
        let id = |r: usize, c: usize| NodeId::new((r * cols + c) as u32);

        // Horizontal links: in every construction.
        for r in 0..rows {
            for c in 0..cols - 1 {
                graph.add_edge(id(r, c), id(r, c + 1));
            }
        }
        // Vertical links: all, except the brick wall keeps only the
        // alternating half (but the border columns keep every vertical so no
        // corner dangles on a single bridge link).
        for r in 0..rows - 1 {
            for c in 0..cols {
                let border_col = c == 0 || c == cols - 1;
                if degree == MeshDegree::D3 && (r + c) % 2 != 0 && !border_col {
                    continue;
                }
                graph.add_edge(id(r, c), id(r + 1, c));
            }
        }
        // `\` diagonals.
        let backslash = |r: usize| match degree {
            MeshDegree::D3 | MeshDegree::D4 => false,
            MeshDegree::D5 => r.is_multiple_of(2),
            MeshDegree::D6 | MeshDegree::D7 | MeshDegree::D8 => true,
        };
        for r in 0..rows - 1 {
            if !backslash(r) {
                continue;
            }
            for c in 0..cols - 1 {
                graph.add_edge(id(r, c), id(r + 1, c + 1));
            }
        }
        // `/` diagonals.
        let slash = |r: usize| match degree {
            MeshDegree::D7 => r.is_multiple_of(2),
            MeshDegree::D8 => true,
            _ => false,
        };
        for r in 0..rows - 1 {
            if !slash(r) {
                continue;
            }
            for c in 1..cols {
                graph.add_edge(id(r, c), id(r + 1, c - 1));
            }
        }
        Mesh {
            rows,
            cols,
            degree,
            graph,
        }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes the mesh, returning the graph.
    #[must_use]
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The configured interior degree.
    #[must_use]
    pub fn degree(&self) -> MeshDegree {
        self.degree
    }

    /// The node at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    #[must_use]
    pub fn node_at(&self, row: usize, col: usize) -> NodeId {
        assert!(row < self.rows && col < self.cols, "({row},{col}) out of range");
        NodeId::new((row * self.cols + col) as u32)
    }

    /// The `(row, col)` coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        assert!(node.index() < self.rows * self.cols, "{node} out of range");
        (node.index() / self.cols, node.index() % self.cols)
    }

    /// Returns `true` if `node` is not on the border (and therefore has the
    /// full configured degree).
    #[must_use]
    pub fn is_interior(&self, node: NodeId) -> bool {
        let (r, c) = self.coords(node);
        r > 0 && r < self.rows - 1 && c > 0 && c < self.cols - 1
    }

    /// Nodes on the first row (sender attachment candidates).
    #[must_use]
    pub fn first_row(&self) -> Vec<NodeId> {
        (0..self.cols).map(|c| self.node_at(0, c)).collect()
    }

    /// Nodes on the last row (receiver attachment candidates).
    #[must_use]
    pub fn last_row(&self) -> Vec<NodeId> {
        (0..self.cols)
            .map(|c| self.node_at(self.rows - 1, c))
            .collect()
    }

    /// An ASCII rendering of the mesh (Figure 2 of the paper).
    #[must_use]
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        for r in 0..self.rows {
            // Node row with horizontal links.
            for c in 0..self.cols {
                out.push_str(&format!("{:>3}", self.node_at(r, c).index()));
                if c + 1 < self.cols {
                    out.push_str("---");
                }
            }
            out.push('\n');
            if r + 1 == self.rows {
                break;
            }
            // Connector row: vertical and diagonal links.
            for c in 0..self.cols {
                let down = self.graph.has_edge(self.node_at(r, c), self.node_at(r + 1, c));
                let diag_right = c + 1 < self.cols
                    && self
                        .graph
                        .has_edge(self.node_at(r, c), self.node_at(r + 1, c + 1));
                let diag_left_from_right = c + 1 < self.cols
                    && self
                        .graph
                        .has_edge(self.node_at(r, c + 1), self.node_at(r + 1, c));
                out.push_str(if down { "  | " } else { "    " });
                if c + 1 < self.cols {
                    out.push_str(match (diag_right, diag_left_from_right) {
                        (true, true) => " X",
                        (true, false) => " \\",
                        (false, true) => " /",
                        (false, false) => "  ",
                    });
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_degree_matches_spec_for_all_degrees() {
        for degree in MeshDegree::ALL {
            let mesh = Mesh::regular(7, 7, degree);
            for node in mesh.graph().nodes() {
                if mesh.is_interior(node) {
                    assert_eq!(
                        mesh.graph().degree(node) as u32,
                        degree.as_u32(),
                        "degree mismatch at {node} for {degree}"
                    );
                }
            }
        }
    }

    #[test]
    fn all_meshes_are_connected() {
        for degree in MeshDegree::ALL {
            assert!(Mesh::regular(7, 7, degree).graph().is_connected());
            assert!(Mesh::regular(5, 9, degree).graph().is_connected());
        }
    }

    #[test]
    fn border_degrees_never_exceed_interior() {
        for degree in MeshDegree::ALL {
            let mesh = Mesh::regular(7, 7, degree);
            for node in mesh.graph().nodes() {
                assert!(mesh.graph().degree(node) as u32 <= degree.as_u32());
            }
        }
    }

    #[test]
    fn edge_counts_increase_with_degree() {
        let counts: Vec<usize> = MeshDegree::ALL
            .iter()
            .map(|&d| Mesh::regular(7, 7, d).graph().num_edges())
            .collect();
        for w in counts.windows(2) {
            assert!(w[0] < w[1], "edge counts not strictly increasing: {counts:?}");
        }
    }

    #[test]
    fn coordinates_round_trip() {
        let mesh = Mesh::regular(7, 7, MeshDegree::D4);
        for r in 0..7 {
            for c in 0..7 {
                assert_eq!(mesh.coords(mesh.node_at(r, c)), (r, c));
            }
        }
    }

    #[test]
    fn paper_topology_has_49_nodes() {
        let mesh = Mesh::regular(7, 7, MeshDegree::D4);
        assert_eq!(mesh.graph().num_nodes(), 49);
        assert_eq!(mesh.first_row().len(), 7);
        assert_eq!(mesh.last_row().len(), 7);
        assert!(mesh.first_row().iter().all(|&n| n.index() < 7));
        assert!(mesh.last_row().iter().all(|&n| n.index() >= 42));
    }

    #[test]
    fn degree_parsing_round_trips() {
        for d in 3..=8 {
            assert_eq!(MeshDegree::try_from_u32(d).unwrap().as_u32(), d);
        }
        assert_eq!(MeshDegree::try_from_u32(2), Err(2));
        assert_eq!(MeshDegree::try_from_u32(9), Err(9));
    }

    #[test]
    fn ascii_render_contains_all_nodes() {
        let mesh = Mesh::regular(3, 3, MeshDegree::D6);
        let art = mesh.render_ascii();
        for i in 0..9 {
            assert!(art.contains(&format!("{i}")), "missing node {i} in:\n{art}");
        }
        assert!(art.contains('\\'), "degree 6 should draw diagonals:\n{art}");
    }

    #[test]
    #[should_panic(expected = "at least 3x3")]
    fn tiny_meshes_are_rejected() {
        let _ = Mesh::regular(2, 7, MeshDegree::D4);
    }
}
