//! Structural analysis used by the experiments and the property-test suite.
//!
//! §4.4 of the paper argues that rich connectivity (a) multiplies alternate
//! paths and (b) shrinks path lengths. The helpers here quantify both claims
//! for any topology, and provide the survivability check the failure planner
//! relies on (never partition the network with the injected failure).

use netsim::ident::NodeId;

use crate::graph::{Edge, Graph};
use crate::shortest_path::{all_pairs_distances, bfs};

/// Summary statistics of a node-degree distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
}

/// Computes degree statistics, or `None` for a graph with no nodes.
#[must_use]
pub fn degree_stats(graph: &Graph) -> Option<DegreeStats> {
    let degrees: Vec<usize> = graph.nodes().map(|n| graph.degree(n)).collect();
    Some(DegreeStats {
        min: *degrees.iter().min()?,
        max: *degrees.iter().max()?,
        mean: degrees.iter().sum::<usize>() as f64 / degrees.len() as f64,
    })
}

/// Mean hop distance over all ordered reachable pairs, or `None` if the
/// graph is disconnected or has fewer than two nodes.
#[must_use]
pub fn mean_path_length(graph: &Graph) -> Option<f64> {
    if graph.num_nodes() < 2 {
        return None;
    }
    let mut total = 0u64;
    let mut pairs = 0u64;
    for (i, row) in all_pairs_distances(graph).iter().enumerate() {
        for (j, d) in row.iter().enumerate() {
            if i == j {
                continue;
            }
            total += u64::from((*d)?);
            pairs += 1;
        }
    }
    Some(total as f64 / pairs as f64)
}

/// Returns `true` if removing `edge` leaves the graph connected, i.e. the
/// edge is not a bridge.
///
/// # Panics
///
/// Panics if the edge does not exist.
#[must_use]
pub fn survives_failure(graph: &Graph, edge: Edge) -> bool {
    graph.without_edge(edge).is_connected()
}

/// Returns `true` if after removing `edge`, node `from` still reaches `to`
/// — the "valid alternate path exists" condition of §4.2.
///
/// # Panics
///
/// Panics if the edge does not exist or nodes are out of range.
#[must_use]
pub fn has_valid_alternate(graph: &Graph, edge: Edge, from: NodeId, to: NodeId) -> bool {
    bfs(&graph.without_edge(edge), from).distance(to).is_some()
}

/// For every node adjacent to a failed edge's upstream endpoint, counts how
/// many neighbors still reach `dst` without the failed edge. This is the
/// quantity Observation 1 of the paper attributes the degree-6 threshold to.
///
/// # Panics
///
/// Panics if the edge does not exist.
#[must_use]
pub fn alternate_next_hops(graph: &Graph, edge: Edge, at: NodeId, dst: NodeId) -> usize {
    let without = graph.without_edge(edge);
    without
        .neighbors(at)
        .iter()
        .filter(|&&nh| bfs(&without, nh).distance(dst).is_some())
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Mesh, MeshDegree};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn degree_stats_on_grid() {
        let mesh = Mesh::regular(7, 7, MeshDegree::D4);
        let stats = degree_stats(mesh.graph()).unwrap();
        assert_eq!(stats.min, 2); // corners
        assert_eq!(stats.max, 4); // interior
        assert!(stats.mean > 2.0 && stats.mean < 4.0);
    }

    #[test]
    fn mean_path_length_shrinks_with_degree() {
        let mpl = |d: MeshDegree| mean_path_length(Mesh::regular(7, 7, d).graph()).unwrap();
        assert!(mpl(MeshDegree::D3) > mpl(MeshDegree::D4));
        assert!(mpl(MeshDegree::D4) > mpl(MeshDegree::D6));
        assert!(mpl(MeshDegree::D6) > mpl(MeshDegree::D8));
    }

    #[test]
    fn mean_path_length_none_for_disconnected() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        assert_eq!(mean_path_length(&g), None);
    }

    #[test]
    fn bridge_detection() {
        // 0-1-2 line: every edge is a bridge.
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        assert!(!survives_failure(&g, Edge::new(n(0), n(1))));
        // Add the closing edge: now a cycle, no bridges.
        g.add_edge(n(0), n(2));
        assert!(survives_failure(&g, Edge::new(n(0), n(1))));
    }

    #[test]
    fn regular_meshes_survive_any_single_failure() {
        for degree in MeshDegree::ALL {
            let mesh = Mesh::regular(7, 7, degree);
            for edge in mesh.graph().edges() {
                assert!(
                    survives_failure(mesh.graph(), edge),
                    "{degree}: removing {edge:?} partitioned the mesh"
                );
            }
        }
    }

    #[test]
    fn alternate_next_hops_counts_surviving_neighbors() {
        // Square 0-1-2-3-0: after edge (0,1) fails, node 0 keeps one
        // neighbor (3) and it still reaches node 1 the long way.
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(3));
        g.add_edge(n(3), n(0));
        let edge = Edge::new(n(0), n(1));
        assert_eq!(alternate_next_hops(&g, edge, n(0), n(1)), 1);

        // On a line 0-1-2, losing (0,1) strands node 0 entirely.
        let mut line = Graph::new(3);
        line.add_edge(n(0), n(1));
        line.add_edge(n(1), n(2));
        let edge = Edge::new(n(0), n(1));
        assert_eq!(alternate_next_hops(&line, edge, n(0), n(2)), 0);
    }

    #[test]
    fn alternate_next_hops_grows_with_degree() {
        // Observation 1's mechanism: the failure-adjacent node has more
        // surviving next hops toward the receiver in denser meshes.
        let count_at = |degree: MeshDegree| {
            let mesh = Mesh::regular(7, 7, degree);
            let at = mesh.node_at(3, 3);
            let edge = Edge::new(at, mesh.node_at(4, 3));
            alternate_next_hops(mesh.graph(), edge, at, mesh.node_at(6, 3))
        };
        assert!(count_at(MeshDegree::D4) < count_at(MeshDegree::D6));
        assert!(count_at(MeshDegree::D6) < count_at(MeshDegree::D8));
    }

    #[test]
    fn valid_alternate_exists_in_dense_mesh() {
        let mesh = Mesh::regular(7, 7, MeshDegree::D6);
        let edge = mesh
            .graph()
            .edges()
            .next()
            .expect("mesh has edges");
        assert!(has_valid_alternate(
            mesh.graph(),
            edge,
            edge.a,
            mesh.node_at(6, 6)
        ));
    }
}
