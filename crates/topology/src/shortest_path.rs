//! Shortest paths on unit-cost topologies.
//!
//! Experiments use these as ground truth: steady-state forwarding must agree
//! with BFS distances, and the post-failure "final shortest path" of §5.4 is
//! computed here. Tie-breaking is deterministic (lowest node id first) so
//! results are reproducible.

use std::collections::VecDeque;

use netsim::ident::NodeId;

use crate::graph::Graph;

/// The single-source shortest path tree of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPaths {
    source: NodeId,
    dist: Vec<Option<u32>>,
    parent: Vec<Option<NodeId>>,
}

impl ShortestPaths {
    /// The source node this tree was computed from.
    #[must_use]
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Hop distance from the source to `node`, or `None` if unreachable.
    #[must_use]
    pub fn distance(&self, node: NodeId) -> Option<u32> {
        self.dist.get(node.index()).copied().flatten()
    }

    /// The predecessor of `node` on its shortest path from the source.
    #[must_use]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.parent.get(node.index()).copied().flatten()
    }

    /// The full path `source..=dst`, or `None` if unreachable.
    #[must_use]
    pub fn path_to(&self, dst: NodeId) -> Option<Vec<NodeId>> {
        self.distance(dst)?;
        let mut path = vec![dst];
        let mut at = dst;
        while at != self.source {
            at = self.parent(at)?;
            path.push(at);
        }
        path.reverse();
        Some(path)
    }
}

/// Breadth-first shortest paths from `source`, breaking ties toward lower
/// node ids.
///
/// # Examples
///
/// ```
/// use topology::graph::Graph;
/// use topology::shortest_path::bfs;
/// use netsim::ident::NodeId;
///
/// let mut g = Graph::new(3);
/// g.add_edge(NodeId::new(0), NodeId::new(1));
/// g.add_edge(NodeId::new(1), NodeId::new(2));
/// let sp = bfs(&g, NodeId::new(0));
/// assert_eq!(sp.distance(NodeId::new(2)), Some(2));
/// assert_eq!(sp.path_to(NodeId::new(2)).unwrap().len(), 3);
/// ```
///
/// # Panics
///
/// Panics if `source` is out of range.
#[must_use]
pub fn bfs(graph: &Graph, source: NodeId) -> ShortestPaths {
    assert!(source.index() < graph.num_nodes(), "{source} out of range");
    let n = graph.num_nodes();
    let mut dist = vec![None; n];
    let mut parent = vec![None; n];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(at) = queue.pop_front() {
        let Some(d) = dist[at.index()] else {
            continue; // queued nodes always have a distance
        };
        // Sort for deterministic parent assignment regardless of insertion
        // order.
        let mut neighbors: Vec<NodeId> = graph.neighbors(at).to_vec();
        neighbors.sort_unstable();
        for m in neighbors {
            if dist[m.index()].is_none() {
                dist[m.index()] = Some(d + 1);
                parent[m.index()] = Some(at);
                queue.push_back(m);
            }
        }
    }
    ShortestPaths {
        source,
        dist,
        parent,
    }
}

/// All-pairs hop distances (one BFS per node).
///
/// `result[src][dst]` is `None` for unreachable pairs.
#[must_use]
pub fn all_pairs_distances(graph: &Graph) -> Vec<Vec<Option<u32>>> {
    graph
        .nodes()
        .map(|src| {
            let sp = bfs(graph, src);
            graph.nodes().map(|dst| sp.distance(dst)).collect()
        })
        .collect()
}

/// The length of the longest shortest path, or `None` if disconnected.
#[must_use]
pub fn diameter(graph: &Graph) -> Option<u32> {
    let mut max = 0;
    for row in all_pairs_distances(graph) {
        for d in row {
            max = max.max(d?);
        }
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesh::{Mesh, MeshDegree};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn bfs_on_line_counts_hops() {
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(1), n(2));
        g.add_edge(n(2), n(3));
        let sp = bfs(&g, n(0));
        assert_eq!(sp.distance(n(3)), Some(3));
        assert_eq!(sp.path_to(n(3)), Some(vec![n(0), n(1), n(2), n(3)]));
    }

    #[test]
    fn unreachable_nodes_have_no_distance() {
        let mut g = Graph::new(3);
        g.add_edge(n(0), n(1));
        let sp = bfs(&g, n(0));
        assert_eq!(sp.distance(n(2)), None);
        assert_eq!(sp.path_to(n(2)), None);
    }

    #[test]
    fn tie_break_prefers_lower_ids() {
        // A square: two equal paths 0-1-3 and 0-2-3; parent of 3 must be 1.
        let mut g = Graph::new(4);
        g.add_edge(n(0), n(1));
        g.add_edge(n(0), n(2));
        g.add_edge(n(1), n(3));
        g.add_edge(n(2), n(3));
        let sp = bfs(&g, n(0));
        assert_eq!(sp.parent(n(3)), Some(n(1)));
    }

    #[test]
    fn grid_distance_is_manhattan() {
        let mesh = Mesh::regular(7, 7, MeshDegree::D4);
        let sp = bfs(mesh.graph(), mesh.node_at(0, 0));
        assert_eq!(sp.distance(mesh.node_at(6, 6)), Some(12));
        assert_eq!(sp.distance(mesh.node_at(3, 4)), Some(7));
    }

    #[test]
    fn diagonals_shorten_paths() {
        let d4 = Mesh::regular(7, 7, MeshDegree::D4);
        let d8 = Mesh::regular(7, 7, MeshDegree::D8);
        let far = |m: &Mesh| {
            bfs(m.graph(), m.node_at(0, 0))
                .distance(m.node_at(6, 6))
                .unwrap()
        };
        assert_eq!(far(&d4), 12);
        assert_eq!(far(&d8), 6);
    }

    #[test]
    fn diameter_shrinks_with_connectivity() {
        // Note `\` diagonals alone (degree 5/6) do not shorten the
        // anti-diagonal corner pair, so the diameter only strictly drops
        // once `/` diagonals appear (degree 7/8).
        let diam = |d: MeshDegree| diameter(Mesh::regular(7, 7, d).graph()).unwrap();
        assert!(diam(MeshDegree::D3) >= diam(MeshDegree::D4));
        assert!(diam(MeshDegree::D4) >= diam(MeshDegree::D6));
        assert!(diam(MeshDegree::D6) > diam(MeshDegree::D7));
        assert!(diam(MeshDegree::D7) >= diam(MeshDegree::D8));
        assert!(diam(MeshDegree::D8) < diam(MeshDegree::D4));
    }

    #[test]
    fn all_pairs_is_symmetric() {
        let mesh = Mesh::regular(5, 5, MeshDegree::D5);
        let d = all_pairs_distances(mesh.graph());
        for (i, row) in d.iter().enumerate() {
            for (j, value) in row.iter().enumerate() {
                assert_eq!(*value, d[j][i]);
            }
        }
    }
}
