//! RIP behavior on real topologies.

use netsim::ident::NodeId;
use netsim::link::LinkConfig;
use netsim::simulator::{ForwardingPath, Simulator};
use netsim::time::SimTime;
use rip::{Rip, RipConfig};
use topology::instantiate::to_simulator_builder;
use topology::mesh::{Mesh, MeshDegree};
use topology::shortest_path::bfs;

fn rip_mesh(degree: MeshDegree, seed: u64) -> (Simulator, Mesh) {
    let mesh = Mesh::regular(7, 7, degree);
    let (mut builder, _) = to_simulator_builder(mesh.graph(), LinkConfig::default()).unwrap();
    builder.seed(seed);
    let mut sim = builder.build().unwrap();
    for node in mesh.graph().nodes() {
        sim.install_protocol(node, Box::new(Rip::new())).unwrap();
    }
    sim.start();
    (sim, mesh)
}

/// Every FIB walk must be a complete path of minimum length.
fn assert_steady_state(sim: &Simulator, mesh: &Mesh) {
    for src in mesh.graph().nodes() {
        let sp = bfs(mesh.graph(), src);
        for dst in mesh.graph().nodes() {
            if src == dst {
                continue;
            }
            match sim.forwarding_path(src, dst) {
                ForwardingPath::Complete(path) => {
                    assert_eq!(
                        (path.len() - 1) as u32,
                        sp.distance(dst).unwrap(),
                        "suboptimal path {src}->{dst}: {path:?}"
                    );
                }
                other => panic!("{src}->{dst} not converged: {other:?}"),
            }
        }
    }
}

#[test]
fn rip_converges_to_shortest_paths_on_sparse_mesh() {
    let (mut sim, mesh) = rip_mesh(MeshDegree::D3, 11);
    sim.run_until(SimTime::from_secs(80));
    assert_steady_state(&sim, &mesh);
}

#[test]
fn rip_converges_to_shortest_paths_on_dense_mesh() {
    let (mut sim, mesh) = rip_mesh(MeshDegree::D8, 12);
    sim.run_until(SimTime::from_secs(80));
    assert_steady_state(&sim, &mesh);
}

#[test]
fn rip_reconverges_after_link_failure() {
    let (mut sim, mesh) = rip_mesh(MeshDegree::D4, 13);
    sim.run_until(SimTime::from_secs(80));

    // Fail a central link and let the periodic cycle repair reachability.
    let a = mesh.node_at(3, 3);
    let b = mesh.node_at(3, 4);
    let link = sim.link_between(a, b).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(90), link).unwrap();
    sim.run_until(SimTime::from_secs(200));

    let degraded = mesh.graph().without_edge(topology::graph::Edge::new(a, b));
    for src in degraded.nodes() {
        let sp = bfs(&degraded, src);
        for dst in degraded.nodes() {
            if src == dst {
                continue;
            }
            match sim.forwarding_path(src, dst) {
                ForwardingPath::Complete(path) => assert_eq!(
                    (path.len() - 1) as u32,
                    sp.distance(dst).unwrap(),
                    "suboptimal post-failure path {src}->{dst}"
                ),
                other => panic!("{src}->{dst} not reconverged: {other:?}"),
            }
        }
    }
}

#[test]
fn rip_loses_reachability_during_switchover() {
    // The paper's §4.1 claim: after its next hop dies, a plain-RIP router
    // has *no* route until the next periodic update teaches it an alternate.
    let (mut sim, mesh) = rip_mesh(MeshDegree::D4, 14);
    sim.run_until(SimTime::from_secs(80));

    let src = mesh.node_at(0, 3);
    let dst = mesh.node_at(6, 3);
    let path = match sim.forwarding_path(src, dst) {
        ForwardingPath::Complete(p) => p,
        other => panic!("not converged: {other:?}"),
    };
    let (a, b) = (path[0], path[1]);
    let link = sim.link_between(a, b).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(90), link).unwrap();
    // Just after detection (90 s + 50 ms) the head router must have no
    // route: RIP keeps no alternate path information.
    sim.run_until(SimTime::from_millis(90_200));
    assert_eq!(
        sim.fib(a).next_hop(dst),
        None,
        "plain RIP should have no route right after switchover"
    );
    // Eventually the periodic update restores reachability.
    sim.run_until(SimTime::from_secs(200));
    assert!(sim.forwarding_path(src, dst).is_complete());
}

#[test]
fn rip_runs_are_deterministic() {
    let digest = |seed: u64| {
        let (mut sim, _) = rip_mesh(MeshDegree::D5, seed);
        sim.run_until(SimTime::from_secs(100));
        (
            sim.stats().control_messages_sent,
            sim.stats().control_bytes_sent,
            sim.trace().len(),
        )
    };
    assert_eq!(digest(42), digest(42));
    assert_ne!(digest(42), digest(43));
}

#[test]
fn faster_periodic_interval_converges_faster() {
    let converge_time = |config: RipConfig| -> u64 {
        let mesh = Mesh::regular(5, 5, MeshDegree::D4);
        let (mut builder, _) =
            to_simulator_builder(mesh.graph(), LinkConfig::default()).unwrap();
        builder.seed(3);
        let mut sim = builder.build().unwrap();
        for node in mesh.graph().nodes() {
            sim.install_protocol(node, Box::new(Rip::with_config(config).expect("valid config")))
                .unwrap();
        }
        sim.start();
        for step in 1..=3000u64 {
            sim.run_until(SimTime::from_millis(step * 100));
            let all = mesh.graph().nodes().all(|src| {
                mesh.graph()
                    .nodes()
                    .filter(|&d| d != src)
                    .all(|dst| sim.forwarding_path(src, dst).is_complete())
            });
            if all {
                return step * 100;
            }
        }
        panic!("never converged");
    };
    let slow = converge_time(RipConfig::default());
    let fast = converge_time(RipConfig {
        periodic_interval: netsim::time::SimDuration::from_secs(5),
        periodic_jitter: netsim::time::SimDuration::from_secs(1),
        route_timeout: netsim::time::SimDuration::from_secs(30),
        ..RipConfig::default()
    });
    assert!(
        fast <= slow,
        "fast periodic {fast} ms should not converge slower than {slow} ms"
    );
}

#[test]
fn poisoned_reverse_prevents_two_node_count_to_infinity() {
    // Classic two-hop loop scenario: a line 0-1-2; fail link 1-2. Node 0
    // must never offer node 1 a route to 2 (it would be through 1 itself).
    let mut builder = netsim::simulator::SimulatorBuilder::new();
    let nodes = builder.add_nodes(3);
    builder.add_link(nodes[0], nodes[1], LinkConfig::default()).unwrap();
    builder.add_link(nodes[1], nodes[2], LinkConfig::default()).unwrap();
    builder.seed(5);
    let mut sim = builder.build().unwrap();
    for &n in &nodes {
        sim.install_protocol(n, Box::new(Rip::new())).unwrap();
    }
    sim.start();
    sim.run_until(SimTime::from_secs(60));
    assert!(sim.forwarding_path(nodes[0], nodes[2]).is_complete());

    let link = sim.link_between(nodes[1], nodes[2]).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(60), link).unwrap();
    sim.run_until(SimTime::from_secs(200));
    // With poisoned reverse there is no counting: both nodes know 2 is gone.
    assert_eq!(sim.fib(nodes[0]).next_hop(nodes[2]), None);
    assert_eq!(sim.fib(nodes[1]).next_hop(nodes[2]), None);
    // And no forwarding loop ever formed between 0 and 1 for dest 2.
    let loops = sim
        .trace()
        .iter()
        .filter(|e| {
            matches!(e, netsim::trace::TraceEvent::PacketDropped {
                reason: netsim::packet::DropReason::TtlExpired, ..
            })
        })
        .count();
    assert_eq!(loops, 0);
}

#[test]
fn rip_fib_never_points_at_detected_down_neighbor() {
    let (mut sim, mesh) = rip_mesh(MeshDegree::D3, 21);
    sim.run_until(SimTime::from_secs(80));
    let a = mesh.node_at(3, 2);
    let b = mesh.node_at(3, 3);
    if let Some(link) = sim.link_between(a, b) {
        sim.schedule_link_failure(SimTime::from_secs(90), link).unwrap();
        sim.run_until(SimTime::from_secs(150));
        for dst in mesh.graph().nodes() {
            assert_ne!(sim.fib(a).next_hop(dst), Some(b), "dest {dst}");
            assert_ne!(sim.fib(b).next_hop(dst), Some(a), "dest {dst}");
        }
    }
}

#[test]
fn control_load_is_periodic_and_bounded() {
    let (mut sim, _) = rip_mesh(MeshDegree::D4, 31);
    sim.run_until(SimTime::from_secs(100));
    let msgs = sim.stats().control_messages_sent;
    // 49 nodes x ~2 messages per neighbor per 30 s cycle x ~3.5 cycles,
    // plus warm-up triggered updates: well under 10000 and over 500.
    assert!(msgs > 500, "suspiciously few RIP messages: {msgs}");
    assert!(msgs < 20_000, "RIP message explosion: {msgs}");
}

#[test]
fn node_ids_cover_the_whole_mesh() {
    let (sim, mesh) = rip_mesh(MeshDegree::D6, 1);
    assert_eq!(sim.num_nodes(), 49);
    assert_eq!(mesh.graph().num_nodes(), 49);
    assert!(mesh.graph().nodes().all(|n| n.index() < 49));
    assert_eq!(NodeId::new(48).index(), 48);
}

#[test]
fn hold_down_delays_recovery_without_adding_loops() {
    use routing_core::damping::DampingMode;
    let with_config = |hold: Option<netsim::time::SimDuration>, seed: u64| {
        let mesh = Mesh::regular(7, 7, MeshDegree::D4);
        let (mut builder, _) =
            to_simulator_builder(mesh.graph(), LinkConfig::default()).unwrap();
        builder.seed(seed);
        let mut sim = builder.build().unwrap();
        let config = RipConfig {
            hold_down: hold,
            damping_mode: DampingMode::FirstImmediate,
            ..RipConfig::default()
        };
        for node in mesh.graph().nodes() {
            sim.install_protocol(node, Box::new(Rip::with_config(config).expect("valid config")))
                .unwrap();
        }
        sim.start();
        sim.run_until(SimTime::from_secs(80));
        (sim, mesh)
    };

    let measure = |hold: Option<netsim::time::SimDuration>| -> f64 {
        let (mut sim, mesh) = with_config(hold, 55);
        let src = mesh.node_at(0, 3);
        let dst = mesh.node_at(6, 3);
        let path = match sim.forwarding_path(src, dst) {
            ForwardingPath::Complete(p) => p,
            other => panic!("not converged: {other:?}"),
        };
        let link = sim.link_between(path[2], path[3]).unwrap();
        sim.schedule_link_failure(SimTime::from_secs(90), link).unwrap();
        // Probe reachability each second until the path heals.
        for s in 91..300u64 {
            sim.run_until(SimTime::from_secs(s));
            if sim.forwarding_path(src, dst).is_complete() {
                return (s - 90) as f64;
            }
        }
        panic!("never healed");
    };

    let plain = measure(None);
    let held = measure(Some(netsim::time::SimDuration::from_secs(20)));
    assert!(
        held >= plain + 5.0,
        "hold-down should delay recovery substantially ({held}s vs {plain}s)"
    );
    assert!(held >= 20.0, "recovery cannot beat the hold-down window");
}

#[test]
fn rip_messages_never_exceed_25_entries_on_the_wire() {
    // RFC 2453 §3.6: at most 25 RTEs per message. With the 20-byte frame
    // header and 4-byte RIP header, the largest legal frame is
    // 20 + 4 + 25 x 20 = 524 bytes.
    let (mut sim, mesh) = rip_mesh(MeshDegree::D6, 61);
    sim.run_until(SimTime::from_secs(80));
    let a = mesh.node_at(3, 3);
    let b = mesh.node_at(3, 4);
    let link = sim.link_between(a, b).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(90), link).unwrap();
    sim.run_until(SimTime::from_secs(150));
    let mut seen_large = false;
    for event in sim.trace() {
        if let netsim::trace::TraceEvent::ControlSent { bytes, .. } = event {
            assert!(*bytes <= 524, "oversized RIP message: {bytes} bytes");
            if *bytes == 524 {
                seen_large = true;
            }
        }
    }
    // The 49-destination table needs 2 messages; the first is full.
    assert!(seen_large, "full 25-entry messages should occur");
}
