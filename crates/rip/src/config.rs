//! RIP configuration.

use netsim::time::SimDuration;
use routing_core::damping::DampingMode;
use serde::{Deserialize, Serialize};

/// How updates sent to a neighbor describe routes that point back through
/// that neighbor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitHorizon {
    /// Advertise everything (no loop prevention) — ablation only.
    Disabled,
    /// Omit routes whose next hop is the receiving neighbor.
    Simple,
    /// Advertise such routes with an infinite metric (the study's setting).
    PoisonReverse,
}

/// Tunable RIP parameters.
///
/// Defaults are the paper's (§3): 30 s periodic updates, 180 s route
/// timeout, 120 s garbage collection, triggered updates damped by a random
/// 1–5 s timer, split horizon with poisoned reverse.
///
/// # Examples
///
/// ```
/// use rip::config::RipConfig;
/// use netsim::time::SimDuration;
///
/// let fast = RipConfig {
///     periodic_interval: SimDuration::from_secs(10),
///     ..RipConfig::default()
/// };
/// assert_eq!(fast.periodic_interval, SimDuration::from_secs(10));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RipConfig {
    /// Interval between full-table periodic updates.
    pub periodic_interval: SimDuration,
    /// Uniform jitter applied to each periodic interval (±jitter), keeping
    /// routers desynchronized.
    pub periodic_jitter: SimDuration,
    /// Shortest triggered-update damping window.
    pub triggered_min: SimDuration,
    /// Longest triggered-update damping window.
    pub triggered_max: SimDuration,
    /// Route timeout: a route not refreshed within this span becomes
    /// unreachable.
    pub route_timeout: SimDuration,
    /// Garbage-collection delay: how long an unreachable route keeps being
    /// advertised (poisoned) before deletion.
    pub gc_delay: SimDuration,
    /// Loop-prevention mode for outgoing updates.
    pub split_horizon: SplitHorizon,
    /// Whether the first triggered update after a quiet period is sent
    /// immediately (RFC 2453 and the paper's §5.2 "a triggered update is
    /// sent quickly"; the default) or also delayed (ablation).
    pub damping_mode: DampingMode,
    /// Classic hold-down: after a route dies, ignore all updates about
    /// that destination for this long (`None` = RFC 2453 behavior, the
    /// study's default). The §2 family of loop preventions that trade
    /// availability for stability, provided for the ablation.
    pub hold_down: Option<SimDuration>,
}

impl Default for RipConfig {
    fn default() -> Self {
        RipConfig {
            periodic_interval: SimDuration::from_secs(30),
            periodic_jitter: SimDuration::from_secs(3),
            triggered_min: SimDuration::from_secs(1),
            triggered_max: SimDuration::from_secs(5),
            route_timeout: SimDuration::from_secs(180),
            gc_delay: SimDuration::from_secs(120),
            split_horizon: SplitHorizon::PoisonReverse,
            damping_mode: DampingMode::FirstImmediate,
            hold_down: None,
        }
    }
}

impl RipConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.periodic_interval.is_zero() {
            return Err("periodic_interval must be positive".into());
        }
        if self.periodic_jitter >= self.periodic_interval {
            return Err("periodic_jitter must be below periodic_interval".into());
        }
        if self.triggered_min > self.triggered_max {
            return Err("triggered_min exceeds triggered_max".into());
        }
        if self.route_timeout < self.periodic_interval * 2 {
            return Err("route_timeout must cover at least two periodic intervals".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_matches_paper() {
        let cfg = RipConfig::default();
        cfg.validate().unwrap();
        assert_eq!(cfg.periodic_interval, SimDuration::from_secs(30));
        assert_eq!(cfg.route_timeout, SimDuration::from_secs(180));
        assert_eq!(cfg.triggered_min, SimDuration::from_secs(1));
        assert_eq!(cfg.triggered_max, SimDuration::from_secs(5));
        assert_eq!(cfg.split_horizon, SplitHorizon::PoisonReverse);
    }

    #[test]
    fn validation_rejects_inconsistencies() {
        let cfg = RipConfig {
            triggered_min: SimDuration::from_secs(9),
            ..RipConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = RipConfig {
            periodic_jitter: SimDuration::from_secs(31),
            ..RipConfig::default()
        };
        assert!(cfg.validate().is_err());

        let cfg = RipConfig {
            route_timeout: SimDuration::from_secs(30),
            ..RipConfig::default()
        };
        assert!(cfg.validate().is_err());
    }
}
