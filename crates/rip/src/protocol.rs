//! The RIP protocol engine.

use std::sync::Arc;

use netsim::ident::NodeId;
use netsim::protocol::{Payload, RoutingProtocol, SharedPayload, TimerToken};
use netsim::simulator::ProtocolContext;
use netsim::time::SimDuration;
use routing_core::damping::{TriggerAction, TriggeredScheduler};
use routing_core::message::{pack_entries, DvEntry, DvMessage};
use routing_core::metric::Metric;

use crate::config::{RipConfig, SplitHorizon};
use crate::table::{RipTable, Route};

/// RFC 2453 §3.9.1 Request: "send me your whole routing table". Sent on
/// startup and when a link (re)appears, so a fresh or rebooted router
/// does not wait out a full periodic cycle to learn the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RipRequest;

impl Payload for RipRequest {
    fn size_bytes(&self) -> usize {
        24 // header + one whole-table RTE, per the RFC's encoding
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Timer kinds encoded into [`TimerToken`]s.
mod timer {
    pub const PERIODIC: u64 = 1;
    pub const TRIGGERED_WINDOW: u64 = 2;
    pub const TIMEOUT: u64 = 3;
    pub const GC: u64 = 4;
}

/// What to do with a received route entry — the RFC 2453 §3.9.2 input
/// processing decision, factored out pure for testability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryDecision {
    /// Install a brand-new route via the sender.
    Install,
    /// The sender is the current next hop and the metric changed
    /// (possibly to infinity): update in place.
    UpdateInPlace,
    /// The sender is the current next hop and the metric is unchanged:
    /// refresh the timeout only.
    RefreshOnly,
    /// A different neighbor offers a strictly better metric: switch to it.
    Switch,
    /// Nothing to do.
    Ignore,
}

/// Decides how a received entry affects the current route.
///
/// `current` is `(metric, next_hop_is_sender)` for the existing route, if
/// any; `offered` is the metric after adding the incoming link cost.
#[must_use]
pub fn decide_entry(current: Option<(Metric, bool)>, offered: Metric) -> EntryDecision {
    match current {
        None => {
            if offered.is_finite() {
                EntryDecision::Install
            } else {
                EntryDecision::Ignore
            }
        }
        Some((current_metric, true)) => {
            if offered == current_metric {
                EntryDecision::RefreshOnly
            } else {
                EntryDecision::UpdateInPlace
            }
        }
        Some((current_metric, false)) => {
            if offered < current_metric {
                EntryDecision::Switch
            } else {
                EntryDecision::Ignore
            }
        }
    }
}

/// Builds the advertisement entries for one neighbor, applying the
/// configured split-horizon rule.
///
/// `only` restricts the advertisement to the given destinations (triggered
/// updates carry only changed routes).
#[must_use]
pub fn build_entries(
    table: &RipTable,
    neighbor: NodeId,
    mode: SplitHorizon,
    only: Option<&[NodeId]>,
) -> Vec<DvEntry> {
    table
        .iter()
        .filter(|(dest, _)| only.is_none_or(|set| set.contains(dest)))
        .filter_map(|(dest, route)| {
            let toward_neighbor = route.next_hop == Some(neighbor);
            let metric = match (toward_neighbor, mode) {
                (true, SplitHorizon::Simple) => return None,
                (true, SplitHorizon::PoisonReverse) => Metric::INFINITY,
                _ => route.metric,
            };
            Some(DvEntry { dest, metric })
        })
        .collect()
}

/// A RIP instance for one router.
///
/// See [`RipConfig`] for the tunables; the defaults reproduce the paper's
/// §3 description (30 s periodic full-table updates, triggered updates
/// under a 1–5 s damping timer, split horizon with poisoned reverse, and a
/// metric that saturates at 16).
#[derive(Debug)]
pub struct Rip {
    config: RipConfig,
    table: RipTable,
    scheduler: TriggeredScheduler,
}

impl Rip {
    /// Creates an instance with the paper's default parameters.
    #[must_use]
    pub fn new() -> Self {
        Rip::from_valid(RipConfig::default())
    }

    /// Creates an instance with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for an invalid
    /// configuration.
    pub fn with_config(config: RipConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Rip::from_valid(config))
    }

    /// Builds an instance from an already-validated configuration.
    fn from_valid(config: RipConfig) -> Self {
        Rip {
            scheduler: TriggeredScheduler::new(
                config.damping_mode,
                config.triggered_min,
                config.triggered_max,
            ),
            config,
            table: RipTable::default(),
        }
    }

    /// Read access to the routing table (for tests and forensics).
    #[must_use]
    pub fn table(&self) -> &RipTable {
        &self.table
    }

    fn send_update(
        &self,
        ctx: &mut ProtocolContext<'_>,
        to: NodeId,
        only: Option<&[NodeId]>,
    ) {
        for message in pack_entries(build_entries(
            &self.table,
            to,
            self.config.split_horizon,
            only,
        )) {
            ctx.send(to, Arc::new(message));
        }
    }

    fn send_to_all_up(&self, ctx: &mut ProtocolContext<'_>, only: Option<&[NodeId]>) {
        for neighbor in ctx.neighbors() {
            if ctx.neighbor_up(neighbor) {
                self.send_update(ctx, neighbor, only);
            }
        }
    }

    /// Flushes triggered updates if any change flags are set, honoring the
    /// damping timer in the configured mode.
    fn after_changes(&mut self, ctx: &mut ProtocolContext<'_>) {
        if !self.table.has_changes() {
            return;
        }
        match self.scheduler.on_change(ctx.rng()) {
            TriggerAction::SendNowThenHold(window) => {
                self.flush_changed(ctx);
                ctx.set_timer(window, TimerToken::compose(timer::TRIGGERED_WINDOW, 0));
            }
            TriggerAction::HoldFor(window) => {
                ctx.set_timer(window, TimerToken::compose(timer::TRIGGERED_WINDOW, 0));
            }
            TriggerAction::AlreadyPending => {}
        }
    }

    fn flush_changed(&mut self, ctx: &mut ProtocolContext<'_>) {
        let changed = self.table.changed_dests();
        if !changed.is_empty() {
            self.send_to_all_up(ctx, Some(&changed));
            self.table.clear_changed();
        }
    }

    /// Starts the RFC deletion process for `dest`: poison the metric, pull
    /// the FIB entry, arm garbage collection (and the hold-down window, if
    /// configured).
    fn start_deletion(&mut self, ctx: &mut ProtocolContext<'_>, dest: NodeId) {
        let gc_delay = self.config.gc_delay;
        let hold = self.config.hold_down.map(|h| ctx.now() + h);
        let Some(route) = self.table.get_mut(dest) else {
            return;
        };
        if !route.metric.is_finite() {
            return;
        }
        route.metric = Metric::INFINITY;
        route.changed = true;
        route.hold_until = hold;
        if let Some(t) = route.timeout_timer.take() {
            ctx.cancel_timer(t);
        }
        let gc = ctx.set_timer(gc_delay, TimerToken::compose(timer::GC, dest.index() as u64));
        if let Some(route) = self.table.get_mut(dest) {
            route.gc_timer = Some(gc);
        }
        ctx.remove_route(dest);
    }

    fn refresh_timeout(&mut self, ctx: &mut ProtocolContext<'_>, dest: NodeId) {
        let timeout = self.config.route_timeout;
        let new_timer = ctx.set_timer(
            timeout,
            TimerToken::compose(timer::TIMEOUT, dest.index() as u64),
        );
        if let Some(route) = self.table.get_mut(dest) {
            if let Some(old) = route.timeout_timer.replace(new_timer) {
                ctx.cancel_timer(old);
            }
            if let Some(gc) = route.gc_timer.take() {
                ctx.cancel_timer(gc);
            }
        }
    }

    fn process_entry(&mut self, ctx: &mut ProtocolContext<'_>, from: NodeId, entry: DvEntry) {
        let dest = entry.dest;
        if dest == ctx.node() {
            return; // never accept routes to ourselves
        }
        // Hold-down: while the window is open, all news about the dead
        // destination is ignored (the availability cost of this classic
        // loop mitigation is the point of the ablation).
        if let Some(route) = self.table.get(dest) {
            if route.hold_until.is_some_and(|until| ctx.now() < until) {
                return;
            }
        }
        let offered = entry.metric + ctx.link_cost(from);
        let current = self
            .table
            .get(dest)
            .map(|r| (r.metric, r.next_hop == Some(from)));
        match decide_entry(current, offered) {
            EntryDecision::Install => {
                self.table.insert(
                    dest,
                    Route {
                        metric: offered,
                        next_hop: Some(from),
                        changed: true,
                        timeout_timer: None,
                        gc_timer: None,
                        hold_until: None,
                    },
                );
                self.refresh_timeout(ctx, dest);
                ctx.install_route(dest, from);
            }
            EntryDecision::UpdateInPlace => {
                if offered.is_finite() {
                    let Some(route) = self.table.get_mut(dest) else {
                        return; // decision implies an entry; nothing to update
                    };
                    route.metric = offered;
                    route.changed = true;
                    self.refresh_timeout(ctx, dest);
                    // The route may be reviving from the deletion process,
                    // in which case its FIB entry was pulled; reinstall
                    // (no-op when already present).
                    ctx.install_route(dest, from);
                } else {
                    self.start_deletion(ctx, dest);
                }
            }
            EntryDecision::RefreshOnly => {
                if offered.is_finite() {
                    self.refresh_timeout(ctx, dest);
                }
            }
            EntryDecision::Switch => {
                let Some(route) = self.table.get_mut(dest) else {
                    return; // decision implies an entry; nothing to switch
                };
                route.metric = offered;
                route.next_hop = Some(from);
                route.changed = true;
                self.refresh_timeout(ctx, dest);
                ctx.install_route(dest, from);
            }
            EntryDecision::Ignore => {}
        }
    }
}

impl Default for Rip {
    fn default() -> Self {
        Rip::new()
    }
}

impl RoutingProtocol for Rip {
    fn name(&self) -> &'static str {
        "rip"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        self.table = RipTable::new(ctx.num_nodes());
        // The self route: metric zero, announced like any other change.
        self.table.insert(
            ctx.node(),
            Route {
                metric: Metric::ZERO,
                next_hop: None,
                changed: true,
                timeout_timer: None,
                gc_timer: None,
                hold_until: None,
            },
        );
        // Desynchronized first periodic update.
        let first = ctx
            .rng()
            .gen_duration(SimDuration::ZERO, self.config.periodic_interval);
        ctx.set_timer(first, TimerToken::compose(timer::PERIODIC, 0));
        // RFC 2453 §3.9.1: ask the neighbors for their tables right away —
        // one shared request payload fanned out to every neighbor.
        let request: SharedPayload = Arc::new(RipRequest);
        for neighbor in ctx.neighbors() {
            ctx.send(neighbor, Arc::clone(&request));
        }
        self.after_changes(ctx);
    }

    fn on_message(&mut self, ctx: &mut ProtocolContext<'_>, from: NodeId, payload: &dyn Payload) {
        if payload.as_any().downcast_ref::<RipRequest>().is_some() {
            // Whole-table request: answer directly (split horizon applies).
            self.send_update(ctx, from, None);
            return;
        }
        let Some(message) = payload.as_any().downcast_ref::<DvMessage>() else {
            debug_assert!(false, "RIP received a non-DV payload");
            return;
        };
        for &entry in &message.entries {
            self.process_entry(ctx, from, entry);
        }
        self.after_changes(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ProtocolContext<'_>, token: TimerToken) {
        match token.kind() {
            timer::PERIODIC => {
                self.send_to_all_up(ctx, None);
                // A full update covers any pending triggered changes.
                self.table.clear_changed();
                let jitter = self.config.periodic_jitter;
                let next = ctx.rng().gen_duration(
                    self.config.periodic_interval - jitter,
                    self.config.periodic_interval + jitter,
                );
                ctx.set_timer(next, TimerToken::compose(timer::PERIODIC, 0));
            }
            timer::TRIGGERED_WINDOW => {
                let has_changes = self.table.has_changes();
                let (flush, rearm) = self.scheduler.on_timer_expired(ctx.rng(), has_changes);
                if flush {
                    self.flush_changed(ctx);
                }
                if let Some(window) = rearm {
                    ctx.set_timer(window, TimerToken::compose(timer::TRIGGERED_WINDOW, 0));
                }
            }
            timer::TIMEOUT => {
                let dest = NodeId::new(token.arg() as u32);
                if let Some(route) = self.table.get_mut(dest) {
                    route.timeout_timer = None;
                }
                self.start_deletion(ctx, dest);
                self.after_changes(ctx);
            }
            timer::GC => {
                let dest = NodeId::new(token.arg() as u32);
                self.table.remove(dest);
            }
            other => debug_assert!(false, "unknown RIP timer kind {other}"),
        }
    }

    fn on_link_down(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        let via: Vec<NodeId> = self
            .table
            .iter()
            .filter(|(_, r)| r.next_hop == Some(neighbor))
            .map(|(d, _)| d)
            .collect();
        for dest in via {
            self.start_deletion(ctx, dest);
        }
        self.after_changes(ctx);
    }

    fn on_link_up(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        // Gratuitous full update teaches the returning neighbor quickly,
        // and a request learns its table without waiting for its periodic.
        self.send_update(ctx, neighbor, None);
        ctx.send(neighbor, Arc::new(RipRequest));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn decide_entry_covers_rfc_cases() {
        use EntryDecision::*;
        // New finite route: install; new infinite: ignore.
        assert_eq!(decide_entry(None, Metric::new(3)), Install);
        assert_eq!(decide_entry(None, Metric::INFINITY), Ignore);
        // From current next hop: any metric change applies, same refreshes.
        assert_eq!(
            decide_entry(Some((Metric::new(3), true)), Metric::new(7)),
            UpdateInPlace
        );
        assert_eq!(
            decide_entry(Some((Metric::new(3), true)), Metric::INFINITY),
            UpdateInPlace
        );
        assert_eq!(
            decide_entry(Some((Metric::new(3), true)), Metric::new(3)),
            RefreshOnly
        );
        // From another neighbor: only strictly better switches.
        assert_eq!(
            decide_entry(Some((Metric::new(3), false)), Metric::new(2)),
            Switch
        );
        assert_eq!(
            decide_entry(Some((Metric::new(3), false)), Metric::new(3)),
            Ignore
        );
        assert_eq!(
            decide_entry(Some((Metric::new(3), false)), Metric::new(9)),
            Ignore
        );
    }

    fn table_with(routes: &[(u32, u32, Option<u32>)]) -> RipTable {
        let mut t = RipTable::new(8);
        for &(dest, metric, nh) in routes {
            t.insert(
                n(dest),
                Route {
                    metric: Metric::new(metric),
                    next_hop: nh.map(n),
                    changed: false,
                    timeout_timer: None,
                    gc_timer: None,
                    hold_until: None,
                },
            );
        }
        t
    }

    #[test]
    fn poison_reverse_advertises_infinity_back() {
        let t = table_with(&[(1, 2, Some(5)), (2, 1, Some(6))]);
        let entries = build_entries(&t, n(5), SplitHorizon::PoisonReverse, None);
        assert_eq!(entries.len(), 2);
        let for_dest1 = entries.iter().find(|e| e.dest == n(1)).unwrap();
        assert_eq!(for_dest1.metric, Metric::INFINITY);
        let for_dest2 = entries.iter().find(|e| e.dest == n(2)).unwrap();
        assert_eq!(for_dest2.metric, Metric::new(1));
    }

    #[test]
    fn simple_split_horizon_omits_routes() {
        let t = table_with(&[(1, 2, Some(5)), (2, 1, Some(6))]);
        let entries = build_entries(&t, n(5), SplitHorizon::Simple, None);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].dest, n(2));
    }

    #[test]
    fn disabled_split_horizon_advertises_everything() {
        let t = table_with(&[(1, 2, Some(5))]);
        let entries = build_entries(&t, n(5), SplitHorizon::Disabled, None);
        assert_eq!(entries[0].metric, Metric::new(2));
    }

    #[test]
    fn triggered_filter_restricts_destinations() {
        let t = table_with(&[(1, 2, Some(5)), (2, 1, Some(6)), (3, 4, Some(6))]);
        let only = [n(2), n(3)];
        let entries = build_entries(&t, n(7), SplitHorizon::PoisonReverse, Some(&only));
        let dests: Vec<NodeId> = entries.iter().map(|e| e.dest).collect();
        assert_eq!(dests, vec![n(2), n(3)]);
    }
}
