//! # rip — Routing Information Protocol (RFC 2453 semantics)
//!
//! One of the three protocols of the study. Characteristics relevant to
//! packet delivery during convergence (paper §3/§4):
//!
//! * keeps **only the best route** per destination — after the next hop
//!   fails, nothing is known until a neighbor's next periodic update, so
//!   the path switch-over period can approach the 30 s update interval;
//! * full-table **periodic updates every 30 s**, triggered updates on
//!   change damped by a uniform 1–5 s timer;
//! * **split horizon with poisoned reverse**, metric saturating at 16;
//! * up to 25 destinations per message.
//!
//! ```
//! use rip::Rip;
//! use netsim::protocol::RoutingProtocol;
//!
//! let instance = Rip::new();
//! assert_eq!(instance.name(), "rip");
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod config;
pub mod protocol;
pub mod table;

pub use config::{RipConfig, SplitHorizon};
pub use protocol::{Rip, RipRequest};
pub use table::{RipTable, Route};
