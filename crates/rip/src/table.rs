//! The RIP routing table.
//!
//! Plain RIP keeps *only the best route* per destination — the design choice
//! the paper blames for RIP's long path switch-over period (§4.1): when the
//! next hop dies, nothing else is remembered, so reachability returns only
//! with a neighbor's next periodic update.

use netsim::ident::NodeId;
use netsim::protocol::TimerId;
use netsim::time::SimTime;
use routing_core::Metric;

/// One routing-table entry.
#[derive(Debug, Clone)]
pub struct Route {
    /// Current distance to the destination (16 = unreachable, kept around
    /// for poisoned advertisement until garbage collection).
    pub metric: Metric,
    /// The neighbor packets are forwarded to (`None` only for the self
    /// route).
    pub next_hop: Option<NodeId>,
    /// Route-change flag driving triggered updates (RFC 2453 §3.10.1).
    pub changed: bool,
    /// Pending timeout timer, if the route is live.
    pub timeout_timer: Option<TimerId>,
    /// Pending garbage-collection timer, if the route is dying.
    pub gc_timer: Option<TimerId>,
    /// Hold-down deadline: until then, updates about this destination are
    /// ignored (classic loop mitigation by delaying reconvergence;
    /// disabled unless [`RipConfig::hold_down`](crate::RipConfig) is set).
    pub hold_until: Option<SimTime>,
}

/// A destination-indexed table of best routes.
#[derive(Debug, Clone, Default)]
pub struct RipTable {
    routes: Vec<Option<Route>>,
}

impl RipTable {
    /// Creates a table able to hold `num_nodes` destinations.
    #[must_use]
    pub fn new(num_nodes: usize) -> Self {
        RipTable {
            routes: (0..num_nodes).map(|_| None).collect(),
        }
    }

    /// The route for `dest`, if any.
    #[must_use]
    pub fn get(&self, dest: NodeId) -> Option<&Route> {
        self.routes.get(dest.index())?.as_ref()
    }

    /// Mutable access to the route for `dest`.
    pub fn get_mut(&mut self, dest: NodeId) -> Option<&mut Route> {
        self.routes.get_mut(dest.index())?.as_mut()
    }

    /// Inserts or replaces the route for `dest`.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range.
    pub fn insert(&mut self, dest: NodeId, route: Route) {
        self.routes[dest.index()] = Some(route);
    }

    /// Removes the route for `dest` entirely (garbage collection).
    pub fn remove(&mut self, dest: NodeId) -> Option<Route> {
        self.routes.get_mut(dest.index())?.take()
    }

    /// Iterates over `(dest, route)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Route)> {
        self.routes
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|route| (NodeId::new(i as u32), route)))
    }

    /// Whether any route has its change flag set — the no-allocation
    /// check used on the hot path before materialising the changed list.
    #[must_use]
    pub fn has_changes(&self) -> bool {
        self.routes.iter().flatten().any(|r| r.changed)
    }

    /// Destinations whose change flag is set.
    #[must_use]
    pub fn changed_dests(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, r)| r.changed)
            .map(|(d, _)| d)
            .collect()
    }

    /// Clears every change flag (after an update has been sent).
    pub fn clear_changed(&mut self) {
        for r in self.routes.iter_mut().flatten() {
            r.changed = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live_route(metric: u32, next_hop: u32) -> Route {
        Route {
            metric: Metric::new(metric),
            next_hop: Some(NodeId::new(next_hop)),
            changed: false,
            timeout_timer: None,
            gc_timer: None,
            hold_until: None,
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = RipTable::new(4);
        t.insert(NodeId::new(2), live_route(3, 1));
        assert_eq!(t.get(NodeId::new(2)).unwrap().metric, Metric::new(3));
        assert!(t.remove(NodeId::new(2)).is_some());
        assert!(t.get(NodeId::new(2)).is_none());
    }

    #[test]
    fn changed_flags_are_tracked_and_cleared() {
        let mut t = RipTable::new(4);
        t.insert(NodeId::new(0), live_route(1, 1));
        t.insert(NodeId::new(3), live_route(2, 1));
        t.get_mut(NodeId::new(3)).unwrap().changed = true;
        assert_eq!(t.changed_dests(), vec![NodeId::new(3)]);
        t.clear_changed();
        assert!(t.changed_dests().is_empty());
    }

    #[test]
    fn iter_skips_missing_destinations() {
        let mut t = RipTable::new(5);
        t.insert(NodeId::new(1), live_route(1, 0));
        t.insert(NodeId::new(4), live_route(1, 0));
        let dests: Vec<NodeId> = t.iter().map(|(d, _)| d).collect();
        assert_eq!(dests, vec![NodeId::new(1), NodeId::new(4)]);
    }

    #[test]
    fn out_of_range_lookups_are_none() {
        let t = RipTable::new(2);
        assert!(t.get(NodeId::new(7)).is_none());
    }
}
