//! BGP configuration, including the study's "BGP-3" parameterization.

use netsim::time::SimDuration;
use serde::{Deserialize, Serialize};

use crate::flap::FlapConfig;

/// Granularity of the Minimum Route Advertisement Interval timer.
///
/// The paper (§3, §5.2) stresses that most vendor implementations keep MRAI
/// per *neighbor*, which lengthens inconsistency windows: after the first
/// post-failure update, changes to any other destination are held back too.
/// A per-(neighbor, destination) timer only spaces updates about the *same*
/// destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MraiScope {
    /// One timer per peering session (vendor default; the study's setting).
    PerNeighbor,
    /// One timer per (peer, destination) pair (the paper's "results could
    /// have been different" ablation).
    PerNeighborDestination,
}

/// Tunable BGP parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BgpConfig {
    /// Mean MRAI value; each window is drawn uniformly from
    /// `mean ± jitter`.
    pub mrai_mean: SimDuration,
    /// Uniform jitter around the mean (must be below the mean).
    pub mrai_jitter: SimDuration,
    /// Timer granularity.
    pub mrai_scope: MraiScope,
    /// When `false` (default, per the paper) withdrawals bypass the MRAI
    /// timer so unreachability propagates as fast as possible.
    pub damp_withdrawals: bool,
    /// RFC 2439 route-flap damping (`None` = disabled, the default; the
    /// paper's cited follow-ups show damping interacting badly with
    /// convergence-time path exploration).
    pub flap_damping: Option<FlapConfig>,
}

impl BgpConfig {
    /// The RFC-recommended parameterization: 30 s average MRAI.
    #[must_use]
    pub fn standard() -> Self {
        BgpConfig {
            mrai_mean: SimDuration::from_secs(30),
            mrai_jitter: SimDuration::from_millis(7_500),
            mrai_scope: MraiScope::PerNeighbor,
            damp_withdrawals: false,
            flap_damping: None,
        }
    }

    /// The study's "BGP-3": a 3 s average MRAI, making the damping delay
    /// comparable with RIP/DBF's 1–5 s triggered-update timer.
    #[must_use]
    pub fn bgp3() -> Self {
        BgpConfig {
            mrai_mean: SimDuration::from_secs(3),
            mrai_jitter: SimDuration::from_millis(750),
            ..BgpConfig::standard()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.mrai_mean.is_zero() {
            return Err("mrai_mean must be positive".into());
        }
        if self.mrai_jitter >= self.mrai_mean {
            return Err("mrai_jitter must be below mrai_mean".into());
        }
        if let Some(flap) = &self.flap_damping {
            flap.validate()?;
        }
        Ok(())
    }

    /// The shortest possible MRAI window.
    #[must_use]
    pub fn mrai_min(&self) -> SimDuration {
        self.mrai_mean - self.mrai_jitter
    }

    /// The longest possible MRAI window.
    #[must_use]
    pub fn mrai_max(&self) -> SimDuration {
        self.mrai_mean + self.mrai_jitter
    }
}

impl Default for BgpConfig {
    fn default() -> Self {
        BgpConfig::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_and_bgp3_differ_only_in_mrai() {
        let std = BgpConfig::standard();
        let fast = BgpConfig::bgp3();
        std.validate().unwrap();
        fast.validate().unwrap();
        assert_eq!(std.mrai_mean, SimDuration::from_secs(30));
        assert_eq!(fast.mrai_mean, SimDuration::from_secs(3));
        assert_eq!(std.mrai_scope, fast.mrai_scope);
        assert_eq!(std.damp_withdrawals, fast.damp_withdrawals);
    }

    #[test]
    fn mrai_bounds_bracket_the_mean() {
        let cfg = BgpConfig::standard();
        assert!(cfg.mrai_min() < cfg.mrai_mean);
        assert!(cfg.mrai_max() > cfg.mrai_mean);
        // Uniform draw between min and max has the stated mean.
        assert_eq!(
            cfg.mrai_min().as_nanos() + cfg.mrai_max().as_nanos(),
            2 * cfg.mrai_mean.as_nanos()
        );
    }

    #[test]
    fn validation_rejects_excess_jitter() {
        let cfg = BgpConfig {
            mrai_jitter: SimDuration::from_secs(31),
            ..BgpConfig::standard()
        };
        assert!(cfg.validate().is_err());
    }
}
