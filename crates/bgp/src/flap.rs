//! BGP route-flap damping (RFC 2439).
//!
//! The paper's introduction flags flap damping as one of the forces that
//! *lengthen* convergence when connectivity is rich (citing Bush/Griffin/
//! Mao and Mao et al.): a route that flaps accumulates a penalty; above
//! the suppress threshold it is excluded from the decision process until
//! exponential decay brings the penalty back under the reuse threshold —
//! even if the route has meanwhile become perfectly stable.

use netsim::dense::DenseMap;
use netsim::ident::NodeId;
use netsim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Minimum spacing between reuse-timer evaluations; prevents a zero-delay
/// re-arm loop when the decayed penalty sits just above the threshold.
const MIN_REUSE_CHECK: SimDuration = SimDuration::from_millis(100);

/// RFC 2439 damping parameters.
///
/// The RFC's operational defaults (15 min half-life, 60 min max suppress)
/// target hours-long timescales; [`FlapConfig::aggressive`] provides a
/// scaled-down variant for the study's seconds-scale experiments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlapConfig {
    /// Penalty added when the peer withdraws the route.
    pub withdrawal_penalty: f64,
    /// Penalty added when the peer re-announces after a withdrawal.
    pub reannounce_penalty: f64,
    /// Penalty added when the announced path changes.
    pub attribute_penalty: f64,
    /// Penalty above which the route is suppressed.
    pub suppress_threshold: f64,
    /// Penalty below which a suppressed route is reused.
    pub reuse_threshold: f64,
    /// Exponential-decay half life.
    pub half_life: SimDuration,
}

impl FlapConfig {
    /// RFC 2439's commonly deployed values.
    #[must_use]
    pub fn rfc2439() -> Self {
        FlapConfig {
            withdrawal_penalty: 1000.0,
            reannounce_penalty: 1000.0,
            attribute_penalty: 500.0,
            suppress_threshold: 2000.0,
            reuse_threshold: 750.0,
            half_life: SimDuration::from_secs(900),
        }
    }

    /// The same shape scaled to the study's seconds-scale runs
    /// (10 s half-life).
    #[must_use]
    pub fn aggressive() -> Self {
        FlapConfig {
            half_life: SimDuration::from_secs(10),
            ..FlapConfig::rfc2439()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.reuse_threshold <= 0.0 || self.suppress_threshold <= self.reuse_threshold {
            return Err("need 0 < reuse_threshold < suppress_threshold".into());
        }
        if self.half_life.is_zero() {
            return Err("half_life must be positive".into());
        }
        Ok(())
    }
}

/// What kind of instability was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlapEvent {
    /// The peer withdrew the route.
    Withdrawal,
    /// The peer announced the route after a withdrawal.
    Reannounce,
    /// The peer announced a different path.
    AttributeChange,
}

#[derive(Debug, Clone, Copy)]
struct FlapState {
    penalty: f64,
    stamped_at: SimTime,
    suppressed: bool,
    /// Whether the last event was a withdrawal (to classify the next
    /// announcement as a re-announce).
    withdrawn: bool,
}

/// Per-(peer, destination) figure-of-merit bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct FlapDamper {
    config: Option<FlapConfig>,
    /// `states[peer][dest]`; both id spaces are dense.
    states: DenseMap<DenseMap<FlapState>>,
}

impl FlapDamper {
    /// Creates a damper; `None` disables damping entirely.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for an invalid
    /// configuration.
    pub fn new(config: Option<FlapConfig>) -> Result<Self, String> {
        if let Some(c) = &config {
            c.validate()?;
        }
        Ok(FlapDamper::from_valid(config))
    }

    /// Builds a damper from an already-validated configuration.
    pub(crate) fn from_valid(config: Option<FlapConfig>) -> Self {
        FlapDamper {
            config,
            states: DenseMap::new(),
        }
    }

    /// Whether damping is enabled at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.config.is_some()
    }

    fn decayed(config: &FlapConfig, state: &FlapState, now: SimTime) -> f64 {
        let dt = now.saturating_since(state.stamped_at).as_secs_f64();
        state.penalty * 0.5_f64.powf(dt / config.half_life.as_secs_f64())
    }

    /// Classifies an incoming announcement (`path_changed` = differs from
    /// the stored one) or withdrawal, updates the penalty, and returns the
    /// new suppression state plus — on a fresh suppression — the delay
    /// until the penalty will cross the reuse threshold.
    pub fn record(
        &mut self,
        peer: NodeId,
        dest: NodeId,
        event: FlapEvent,
        now: SimTime,
    ) -> FlapOutcome {
        let Some(config) = self.config else {
            return FlapOutcome {
                suppressed: false,
                reuse_in: None,
            };
        };
        let state = self
            .states
            .get_or_insert_with(peer, DenseMap::new)
            .get_or_insert_with(dest, || FlapState {
                penalty: 0.0,
                stamped_at: now,
                suppressed: false,
                withdrawn: false,
            });
        let mut penalty = Self::decayed(&config, state, now);
        penalty += match event {
            FlapEvent::Withdrawal => config.withdrawal_penalty,
            FlapEvent::Reannounce => config.reannounce_penalty,
            FlapEvent::AttributeChange => config.attribute_penalty,
        };
        state.penalty = penalty;
        state.stamped_at = now;
        state.withdrawn = event == FlapEvent::Withdrawal;
        let newly_suppressed = !state.suppressed && penalty >= config.suppress_threshold;
        if newly_suppressed {
            state.suppressed = true;
        }
        let reuse_in = newly_suppressed.then(|| {
            // penalty * 0.5^(dt/half_life) = reuse  =>  dt = hl*log2(p/r)
            let halves = (penalty / config.reuse_threshold).log2();
            SimDuration::from_secs_f64(halves * config.half_life.as_secs_f64())
                .max(MIN_REUSE_CHECK)
        });
        FlapOutcome {
            suppressed: state.suppressed,
            reuse_in,
        }
    }

    /// Whether announcements from `peer` for `dest` are currently
    /// suppressed.
    #[must_use]
    pub fn is_suppressed(&self, peer: NodeId, dest: NodeId) -> bool {
        self.states
            .get(peer)
            .and_then(|m| m.get(dest))
            .is_some_and(|s| s.suppressed)
    }

    /// Whether the last recorded event for the pair was a withdrawal.
    #[must_use]
    pub fn is_withdrawn(&self, peer: NodeId, dest: NodeId) -> bool {
        self.states
            .get(peer)
            .and_then(|m| m.get(dest))
            .is_some_and(|s| s.withdrawn)
    }

    /// Re-evaluates a suppressed pair at reuse time. Returns `true` if the
    /// route is released (and the caller should re-run its decision
    /// process); returns `false` with a new delay if more decay is needed
    /// (more flaps happened since suppression).
    pub fn try_reuse(&mut self, peer: NodeId, dest: NodeId, now: SimTime) -> ReuseOutcome {
        let Some(config) = self.config else {
            return ReuseOutcome::Released;
        };
        let Some(state) = self.states.get_mut(peer).and_then(|m| m.get_mut(dest)) else {
            return ReuseOutcome::Released;
        };
        if !state.suppressed {
            return ReuseOutcome::Released;
        }
        let penalty = Self::decayed(&config, state, now);
        if penalty < config.reuse_threshold {
            state.suppressed = false;
            state.penalty = penalty;
            state.stamped_at = now;
            ReuseOutcome::Released
        } else {
            let halves = (penalty / config.reuse_threshold).log2();
            ReuseOutcome::StillSuppressed(
                SimDuration::from_secs_f64(halves * config.half_life.as_secs_f64())
                    .max(MIN_REUSE_CHECK),
            )
        }
    }

    /// Forgets all state about a peer (session reset).
    pub fn clear_peer(&mut self, peer: NodeId) {
        self.states.remove(peer);
    }
}

/// Result of recording a flap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlapOutcome {
    /// Whether the pair is (now) suppressed.
    pub suppressed: bool,
    /// On a fresh suppression: the decay delay until reuse.
    pub reuse_in: Option<SimDuration>,
}

/// Result of a reuse-timer evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReuseOutcome {
    /// The route may be used again.
    Released,
    /// Still over the reuse threshold; check back after this delay.
    StillSuppressed(SimDuration),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn damper() -> FlapDamper {
        FlapDamper::new(Some(FlapConfig::aggressive())).unwrap()
    }

    #[test]
    fn disabled_damper_never_suppresses() {
        let mut d = FlapDamper::new(None).unwrap();
        for _ in 0..10 {
            let out = d.record(n(1), n(2), FlapEvent::Withdrawal, SimTime::from_secs(1));
            assert!(!out.suppressed);
        }
        assert!(!d.is_suppressed(n(1), n(2)));
    }

    #[test]
    fn repeated_flaps_cross_the_suppress_threshold() {
        let mut d = damper();
        let t = SimTime::from_secs(100);
        let o1 = d.record(n(1), n(2), FlapEvent::Withdrawal, t);
        assert!(!o1.suppressed, "one flap is not enough");
        let o2 = d.record(n(1), n(2), FlapEvent::Reannounce, t);
        assert!(o2.suppressed, "2000 penalty hits the threshold");
        let reuse = o2.reuse_in.expect("fresh suppression names a reuse delay");
        // 2000 -> 750 needs log2(2000/750) = 1.415 half-lives of 10 s.
        assert!((reuse.as_secs_f64() - 14.15).abs() < 0.1, "{reuse}");
    }

    #[test]
    fn penalty_decays_between_flaps() {
        let mut d = damper();
        d.record(n(1), n(2), FlapEvent::Withdrawal, SimTime::from_secs(0));
        // 30 s later (3 half-lives) the 1000 penalty is only 125.
        let out = d.record(
            n(1),
            n(2),
            FlapEvent::Withdrawal,
            SimTime::from_secs(30),
        );
        assert!(!out.suppressed, "1125 stays under 2000");
    }

    #[test]
    fn reuse_releases_after_decay() {
        let mut d = damper();
        let t0 = SimTime::from_secs(0);
        d.record(n(1), n(2), FlapEvent::Withdrawal, t0);
        let out = d.record(n(1), n(2), FlapEvent::Reannounce, t0);
        let reuse_at = t0 + out.reuse_in.unwrap();
        // Too early: still suppressed.
        assert!(matches!(
            d.try_reuse(n(1), n(2), t0 + SimDuration::from_secs(5)),
            ReuseOutcome::StillSuppressed(_)
        ));
        // At the computed time (plus epsilon): released.
        assert_eq!(
            d.try_reuse(n(1), n(2), reuse_at + SimDuration::from_millis(1)),
            ReuseOutcome::Released
        );
        assert!(!d.is_suppressed(n(1), n(2)));
    }

    #[test]
    fn withdrawal_state_classifies_reannounces() {
        let mut d = damper();
        let t = SimTime::from_secs(0);
        d.record(n(1), n(2), FlapEvent::Withdrawal, t);
        assert!(d.is_withdrawn(n(1), n(2)));
        d.record(n(1), n(2), FlapEvent::Reannounce, t);
        assert!(!d.is_withdrawn(n(1), n(2)));
    }

    #[test]
    fn clear_peer_forgets_everything() {
        let mut d = damper();
        let t = SimTime::from_secs(0);
        d.record(n(1), n(2), FlapEvent::Withdrawal, t);
        d.record(n(1), n(2), FlapEvent::Reannounce, t);
        assert!(d.is_suppressed(n(1), n(2)));
        d.clear_peer(n(1));
        assert!(!d.is_suppressed(n(1), n(2)));
    }

    #[test]
    fn config_validation() {
        assert!(FlapConfig::rfc2439().validate().is_ok());
        assert!(FlapConfig::aggressive().validate().is_ok());
        let bad = FlapConfig {
            reuse_threshold: 3000.0,
            ..FlapConfig::rfc2439()
        };
        assert!(bad.validate().is_err());
    }
}
