//! BGP routing information bases.
//!
//! Per-neighbor Adj-RIB-In tables (the path-vector analog of DBF's
//! neighbor cache) and the Loc-RIB of selected best paths. Selection is the
//! study's shortest-path policy: fewest ASes, ties to the lowest neighbor
//! id.

use netsim::dense::DenseMap;
use netsim::ident::NodeId;
use routing_core::path::AsPath;

/// Paths received from each neighbor, per destination.
///
/// Stored as a [`DenseMap`] of per-neighbor slot vectors: neighbor ids are
/// dense, so the tree the old `BTreeMap` maintained bought nothing, and
/// iteration stays in ascending neighbor id order (identical candidate
/// order, identical traces).
#[derive(Debug, Clone, Default)]
pub struct AdjRibIn {
    /// `paths[neighbor][dest]` = last announced path (already
    /// loop-filtered: a path containing the local AS is stored as `None`).
    paths: DenseMap<Vec<Option<AsPath>>>,
    num_dests: usize,
}

impl AdjRibIn {
    /// Creates tables for `num_dests` destinations.
    #[must_use]
    pub fn new(num_dests: usize) -> Self {
        AdjRibIn {
            paths: DenseMap::new(),
            num_dests,
        }
    }

    /// Records `path` as the latest announcement from `neighbor` for
    /// `dest`; `None` is a withdrawal.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range.
    pub fn set(&mut self, neighbor: NodeId, dest: NodeId, path: Option<AsPath>) {
        assert!(dest.index() < self.num_dests, "{dest} out of range");
        let num_dests = self.num_dests;
        let table = self
            .paths
            .get_or_insert_with(neighbor, || vec![None; num_dests]);
        table[dest.index()] = path;
    }

    /// The stored path from `neighbor` for `dest`.
    #[must_use]
    pub fn get(&self, neighbor: NodeId, dest: NodeId) -> Option<&AsPath> {
        self.paths.get(neighbor)?.get(dest.index())?.as_ref()
    }

    /// Drops everything learned from `neighbor` (session reset).
    pub fn clear_neighbor(&mut self, neighbor: NodeId) {
        self.paths.remove(neighbor);
    }

    /// Iterates over `(neighbor, path)` candidates for `dest`, restricted
    /// by `usable`.
    pub fn candidates<'a, F>(
        &'a self,
        dest: NodeId,
        usable: F,
    ) -> impl Iterator<Item = (NodeId, &'a AsPath)> + 'a
    where
        F: Fn(NodeId) -> bool + 'a,
    {
        self.paths.iter().filter_map(move |(neighbor, table)| {
            if !usable(neighbor) {
                return None;
            }
            table.get(dest.index())?.as_ref().map(|p| (neighbor, p))
        })
    }
}

/// The selected best route for one destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BestRoute {
    /// The selected AS path (not yet prepended with the local AS).
    pub path: AsPath,
    /// The announcing neighbor (`None` for the locally originated route).
    pub next_hop: Option<NodeId>,
}

/// Selects the best candidate for `dest`: shortest AS path, ties broken by
/// the lowest announcing neighbor id.
#[must_use]
pub fn select<'a, I>(candidates: I) -> Option<(NodeId, &'a AsPath)>
where
    I: IntoIterator<Item = (NodeId, &'a AsPath)>,
{
    candidates
        .into_iter()
        .min_by_key(|&(neighbor, path)| (path.len(), neighbor))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn path(hops: &[u32]) -> AsPath {
        AsPath::from_hops(hops.iter().map(|&h| n(h)).collect())
    }

    #[test]
    fn set_get_clear_round_trip() {
        let mut rib = AdjRibIn::new(4);
        rib.set(n(1), n(3), Some(path(&[1, 3])));
        assert_eq!(rib.get(n(1), n(3)), Some(&path(&[1, 3])));
        rib.set(n(1), n(3), None);
        assert_eq!(rib.get(n(1), n(3)), None);
        rib.set(n(1), n(2), Some(path(&[1, 2])));
        rib.clear_neighbor(n(1));
        assert_eq!(rib.get(n(1), n(2)), None);
    }

    #[test]
    fn candidates_filter_unusable_neighbors() {
        let mut rib = AdjRibIn::new(4);
        rib.set(n(1), n(3), Some(path(&[1, 3])));
        rib.set(n(2), n(3), Some(path(&[2, 0, 3])));
        assert_eq!(rib.candidates(n(3), |_| true).count(), 2);
        let only: Vec<_> = rib.candidates(n(3), |nb| nb == n(2)).collect();
        assert_eq!(only.len(), 1);
        assert_eq!(only[0].0, n(2));
    }

    #[test]
    fn selection_prefers_shorter_paths() {
        let short = path(&[1, 3]);
        let long = path(&[2, 0, 3]);
        let best = select(vec![(n(2), &long), (n(1), &short)]);
        assert_eq!(best, Some((n(1), &short)));
    }

    #[test]
    fn selection_ties_break_to_lowest_neighbor() {
        let a = path(&[4, 3]);
        let b = path(&[2, 3]);
        let best = select(vec![(n(4), &a), (n(2), &b)]);
        assert_eq!(best, Some((n(2), &b)));
    }

    #[test]
    fn selection_of_nothing_is_none() {
        assert_eq!(select(Vec::new()), None);
    }
}
