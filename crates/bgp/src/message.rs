//! BGP update messages.
//!
//! Unlike a distance-vector message, a single BGP update can only announce
//! destinations that *share the same AS path* (paper §5.2) — after a
//! failure, routes through different repair paths need separate messages,
//! and all but the first are held by the MRAI timer. This asymmetry with
//! RIP's 25-destination grab-bag is one of the paper's explanations for
//! BGP's longer transient loops.

use netsim::ident::NodeId;
use netsim::protocol::Payload;
use routing_core::inline::InlineVec;
use routing_core::path::AsPath;
use serde::{Deserialize, Serialize};

/// Destinations kept inline in an update before spilling to the heap.
///
/// Two, not more: convergence updates overwhelmingly carry one or two
/// NLRI (per-pair MRAI sends exactly one), and every extra inline slot
/// grows the message value copied into its `Arc` — profiling showed
/// eight slots cost BGP ~13% in protocol processing for no allocation
/// win. Bulk updates (initial RIB exchange, session reset withdrawals)
/// spill to the heap, which is the rare path.
pub const INLINE_DESTS: usize = 2;

/// One BGP UPDATE: optionally a set of destinations sharing one announced
/// path, plus explicitly withdrawn destinations.
///
/// The destination lists are [`InlineVec`]s: the first [`INLINE_DESTS`]
/// entries live inside the message value, so short updates — the vast
/// majority during convergence — never heap-allocate for their lists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BgpUpdate {
    /// The announced path, if this update announces anything.
    pub path: Option<AsPath>,
    /// Destinations reachable via [`BgpUpdate::path`].
    pub announced: InlineVec<NodeId, INLINE_DESTS>,
    /// Destinations no longer reachable through the sender.
    pub withdrawn: InlineVec<NodeId, INLINE_DESTS>,
}

impl BgpUpdate {
    /// An update announcing `announced` via `path`.
    ///
    /// Accepts anything convertible into the inline list — pass an
    /// already-built [`InlineVec`] to move it in without copying.
    ///
    /// # Panics
    ///
    /// Panics if `announced` is empty.
    #[must_use]
    pub fn announce(path: AsPath, announced: impl Into<InlineVec<NodeId, INLINE_DESTS>>) -> Self {
        let announced = announced.into();
        assert!(!announced.is_empty(), "empty announcement");
        BgpUpdate {
            path: Some(path),
            announced,
            withdrawn: InlineVec::new(),
        }
    }

    /// A pure withdrawal.
    ///
    /// Accepts anything convertible into the inline list — pass an
    /// already-built [`InlineVec`] to move it in without copying.
    ///
    /// # Panics
    ///
    /// Panics if `withdrawn` is empty.
    #[must_use]
    pub fn withdraw(withdrawn: impl Into<InlineVec<NodeId, INLINE_DESTS>>) -> Self {
        let withdrawn = withdrawn.into();
        assert!(!withdrawn.is_empty(), "empty withdrawal");
        BgpUpdate {
            path: None,
            announced: InlineVec::new(),
            withdrawn,
        }
    }

    /// Returns `true` if the update carries nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.announced.is_empty() && self.withdrawn.is_empty()
    }
}

impl Payload for BgpUpdate {
    /// BGP-4 sizing: 19-byte header, 2+2·len AS_PATH attribute, 4 bytes per
    /// announced NLRI and per withdrawn route.
    fn size_bytes(&self) -> usize {
        19 + self.path.as_ref().map_or(0, AsPath::size_bytes)
            + 4 * self.announced.len()
            + 4 * self.withdrawn.len()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn announce_and_withdraw_constructors() {
        let a = BgpUpdate::announce(AsPath::origin(n(3)), vec![n(3)]);
        assert_eq!(a.announced, vec![n(3)]);
        assert!(a.withdrawn.is_empty());
        assert!(!a.is_empty());

        let w = BgpUpdate::withdraw(vec![n(1), n(2)]);
        assert!(w.path.is_none());
        assert_eq!(w.withdrawn.len(), 2);
    }

    #[test]
    fn sizes_grow_with_content() {
        let short = BgpUpdate::announce(AsPath::origin(n(0)), vec![n(0)]);
        let long = BgpUpdate::announce(
            AsPath::origin(n(0)).prepended(n(1)).prepended(n(2)),
            vec![n(0), n(5), n(6)],
        );
        assert!(long.size_bytes() > short.size_bytes());
        assert_eq!(short.size_bytes(), 19 + 4 + 4);
        let w = BgpUpdate::withdraw(vec![n(9)]);
        assert_eq!(w.size_bytes(), 19 + 4);
    }

    #[test]
    #[should_panic(expected = "empty announcement")]
    fn empty_announcement_rejected() {
        let _ = BgpUpdate::announce(AsPath::origin(n(0)), vec![]);
    }

    #[test]
    #[should_panic(expected = "empty withdrawal")]
    fn empty_withdrawal_rejected() {
        let _ = BgpUpdate::withdraw(vec![]);
    }
}
