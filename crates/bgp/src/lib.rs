//! # bgp — Border Gateway Protocol (RFC 1771 semantics, shortest-path policy)
//!
//! The third protocol of the study, a path vector: each speaker announces
//! its best AS path per destination over a reliable session, only on
//! change, with explicit withdrawals. The Minimum Route Advertisement
//! Interval (MRAI) spaces consecutive announcements to the same peer;
//! the paper shows this timer — especially at its per-*neighbor* vendor
//! granularity — stretches transient forwarding loops (§5.2), and compares
//! the recommended 30 s mean against a 3 s "BGP-3" variant.
//!
//! ```
//! use bgp::Bgp;
//! use netsim::protocol::RoutingProtocol;
//!
//! assert_eq!(Bgp::new().name(), "bgp");
//! let _fast = Bgp::bgp3();
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod config;
pub mod flap;
pub mod message;
pub mod protocol;
pub mod rib;

pub use config::{BgpConfig, MraiScope};
pub use flap::{FlapConfig, FlapDamper};
pub use message::BgpUpdate;
pub use protocol::Bgp;
pub use rib::{AdjRibIn, BestRoute};
