//! The BGP protocol engine.

use std::collections::BTreeMap;
use std::sync::Arc;

use netsim::dense::{DenseMap, DenseSet};
use netsim::ident::NodeId;
use netsim::protocol::{Payload, RoutingProtocol, TimerToken};
use netsim::simulator::ProtocolContext;
use routing_core::damping::{DampAction, Damper};
use routing_core::inline::InlineVec;
use routing_core::path::{AsPath, PathInterner};

use crate::config::{BgpConfig, MraiScope};
use crate::flap::{FlapDamper, FlapEvent, ReuseOutcome};
use crate::message::{BgpUpdate, INLINE_DESTS};
use crate::rib::{select, AdjRibIn, BestRoute};

mod timer {
    /// MRAI expiry, per-neighbor scope. arg = epoch << 24 | neighbor.
    pub const MRAI_NEIGHBOR: u64 = 1;
    /// MRAI expiry, per-(neighbor, destination) scope.
    /// arg = epoch << 40 | neighbor << 20 | dest.
    pub const MRAI_PAIR: u64 = 2;
    /// Flap-damping reuse evaluation. Same arg layout as `MRAI_PAIR`.
    pub const FLAP_REUSE: u64 = 3;
}

/// A BGP speaker for one router (= one AS, as in the paper).
///
/// Implements the §3 subset: shortest-AS-path policy, reliable in-order
/// sessions, updates only on change, explicit withdrawals that bypass the
/// MRAI timer, receive-side loop detection ("a path containing myself is a
/// withdrawal"), and a per-neighbor MRAI timer whose scope and mean are
/// configurable ([`BgpConfig::standard`] vs [`BgpConfig::bgp3`]).
#[derive(Debug)]
pub struct Bgp {
    config: BgpConfig,
    adj_in: AdjRibIn,
    loc_rib: Vec<Option<BestRoute>>,
    /// `announce_cache[dest]`: the loc-RIB route prepended with the local
    /// AS, computed once per best-route *change* (not per announcement) so
    /// MRAI rounds and per-neighbor fan-out only bump a refcount.
    announce_cache: Vec<Option<AsPath>>,
    dampers: DenseMap<Damper>,
    pending: DenseMap<DenseSet>,
    /// `pair_dampers[neighbor][dest]`.
    pair_dampers: DenseMap<DenseMap<Damper>>,
    /// `pair_pending[neighbor]` = destinations awaiting the pair MRAI.
    pair_pending: DenseMap<DenseSet>,
    /// Bumped when a session resets so stale MRAI timers are ignored.
    epochs: DenseMap<u64>,
    /// Deduplicating store for AS paths: prepending and re-learning the
    /// same path returns the shared allocation instead of a fresh one.
    interner: PathInterner,
    /// RFC 2439 figure-of-merit state (inert when damping is disabled).
    flap: FlapDamper,
    /// Destinations whose best route changed during the current event.
    changed_batch: Vec<NodeId>,
    /// Destinations that became unreachable during the current event.
    withdrawn_batch: Vec<NodeId>,
}

impl Bgp {
    /// A speaker with the RFC-recommended 30 s average MRAI.
    #[must_use]
    pub fn new() -> Self {
        Bgp::from_valid(BgpConfig::standard())
    }

    /// The study's BGP-3 parameterization (3 s average MRAI).
    #[must_use]
    pub fn bgp3() -> Self {
        Bgp::from_valid(BgpConfig::bgp3())
    }

    /// A speaker with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns the validation failure message for an invalid
    /// configuration.
    pub fn with_config(config: BgpConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(Bgp::from_valid(config))
    }

    /// Builds a speaker from an already-validated configuration (the
    /// flap-damping parameters were checked by `BgpConfig::validate`).
    fn from_valid(config: BgpConfig) -> Self {
        Bgp {
            flap: FlapDamper::from_valid(config.flap_damping),
            config,
            adj_in: AdjRibIn::default(),
            loc_rib: Vec::new(),
            announce_cache: Vec::new(),
            dampers: DenseMap::new(),
            pending: DenseMap::new(),
            pair_dampers: DenseMap::new(),
            pair_pending: DenseMap::new(),
            epochs: DenseMap::new(),
            interner: PathInterner::new(),
            changed_batch: Vec::new(),
            withdrawn_batch: Vec::new(),
        }
    }

    /// The selected best route for `dest` (for tests and forensics).
    #[must_use]
    pub fn best(&self, dest: NodeId) -> Option<&BestRoute> {
        self.loc_rib.get(dest.index())?.as_ref()
    }

    fn epoch(&self, neighbor: NodeId) -> u64 {
        self.epochs.get(neighbor).copied().unwrap_or(0)
    }

    /// Interner hit/miss counters (for benchmarks and forensics).
    #[must_use]
    pub fn interner_stats(&self) -> (u64, u64) {
        (self.interner.hits(), self.interner.misses())
    }

    /// Re-runs the decision process for `dest`; best-route changes are
    /// collected into the event batches flushed by [`Bgp::after_changes`].
    fn re_decide(&mut self, ctx: &mut ProtocolContext<'_>, dest: NodeId) {
        if dest == ctx.node() {
            return;
        }
        let best = select(
            self.adj_in
                .candidates(dest, |n| ctx.neighbor_up(n) && !self.flap.is_suppressed(n, dest)),
        )
        .map(
            |(neighbor, path)| BestRoute {
                path: path.clone(),
                next_hop: Some(neighbor),
            },
        );
        if self.loc_rib[dest.index()] == best {
            return;
        }
        match &best {
            Some(BestRoute {
                next_hop: Some(next),
                ..
            }) => {
                ctx.install_route(dest, *next);
                self.changed_batch.push(dest);
            }
            // Learned routes always carry a next hop (and self routes
            // never reach re_decide); no candidate means withdrawal.
            _ => {
                ctx.remove_route(dest);
                if self.config.damp_withdrawals {
                    self.changed_batch.push(dest);
                } else {
                    self.withdrawn_batch.push(dest);
                }
            }
        }
        let announce = match &best {
            Some(route) => Some(match route.next_hop {
                Some(_) => self.interner.prepended(&route.path, ctx.node()),
                // The locally originated route already starts with us.
                None => route.path.clone(),
            }),
            None => None,
        };
        self.announce_cache[dest.index()] = announce;
        self.loc_rib[dest.index()] = best;
    }

    /// The path to announce for `dest`, prepended with the local AS.
    ///
    /// Reads the per-destination cache maintained by [`Bgp::re_decide`]:
    /// prepending (through the interner) happens once per best-route
    /// change, so every announcement here is a refcount clone.
    fn announce_path(&self, dest: NodeId) -> Option<AsPath> {
        self.announce_cache.get(dest.index())?.clone()
    }

    /// Sends the current state of `dests` to `neighbor`: announcements
    /// grouped by path (one update per distinct path, as BGP requires) and
    /// a withdrawal for anything with no best route.
    fn send_routes(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId, dests: &[NodeId]) {
        // The destination lists are built as `InlineVec` from the start and
        // *moved* into the update, so a short announcement never allocates.
        let mut groups: BTreeMap<AsPath, InlineVec<NodeId, INLINE_DESTS>> = BTreeMap::new();
        let mut withdrawn: InlineVec<NodeId, INLINE_DESTS> = InlineVec::new();
        for &dest in dests {
            if dest == neighbor {
                continue; // a peer needs no route to itself
            }
            match self.announce_path(dest) {
                Some(path) => groups.entry(path).or_default().push(dest),
                None => withdrawn.push(dest),
            }
        }
        for (path, announced) in groups {
            ctx.send_reliable(neighbor, Arc::new(BgpUpdate::announce(path, announced)));
        }
        if !withdrawn.is_empty() {
            ctx.send_reliable(neighbor, Arc::new(BgpUpdate::withdraw(withdrawn)));
        }
    }

    /// Flushes the event's batches: withdrawals immediately, announcements
    /// through the MRAI state machine.
    fn after_changes(&mut self, ctx: &mut ProtocolContext<'_>) {
        let withdrawn = std::mem::take(&mut self.withdrawn_batch);
        if !withdrawn.is_empty() {
            for neighbor in ctx.neighbors() {
                if ctx.neighbor_up(neighbor) {
                    let for_peer: InlineVec<NodeId, INLINE_DESTS> = withdrawn
                        .iter()
                        .copied()
                        .filter(|&d| d != neighbor)
                        .collect();
                    if !for_peer.is_empty() {
                        ctx.send_reliable(neighbor, Arc::new(BgpUpdate::withdraw(for_peer)));
                    }
                }
            }
        }
        let batch = std::mem::take(&mut self.changed_batch);
        if batch.is_empty() {
            return;
        }
        for neighbor in ctx.neighbors() {
            if !ctx.neighbor_up(neighbor) {
                continue;
            }
            match self.config.mrai_scope {
                MraiScope::PerNeighbor => self.offer_batch_per_neighbor(ctx, neighbor, &batch),
                MraiScope::PerNeighborDestination => {
                    for &dest in &batch {
                        self.offer_one_per_pair(ctx, neighbor, dest);
                    }
                }
            }
        }
    }

    fn offer_batch_per_neighbor(
        &mut self,
        ctx: &mut ProtocolContext<'_>,
        neighbor: NodeId,
        batch: &[NodeId],
    ) {
        let config = &self.config;
        let damper = self
            .dampers
            .get_or_insert_with(neighbor, || Damper::new(config.mrai_min(), config.mrai_max()));
        match damper.on_change(ctx.rng()) {
            DampAction::SendNow(window) => {
                self.send_routes(ctx, neighbor, batch);
                let arg = (self.epoch(neighbor) << 24) | neighbor.index() as u64;
                ctx.set_timer(window, TimerToken::compose(timer::MRAI_NEIGHBOR, arg));
            }
            DampAction::Deferred => {
                let set = self.pending.get_or_insert_with(neighbor, DenseSet::new);
                for &dest in batch {
                    set.insert(dest);
                }
            }
        }
    }

    fn offer_one_per_pair(
        &mut self,
        ctx: &mut ProtocolContext<'_>,
        neighbor: NodeId,
        dest: NodeId,
    ) {
        let config = &self.config;
        let damper = self
            .pair_dampers
            .get_or_insert_with(neighbor, DenseMap::new)
            .get_or_insert_with(dest, || Damper::new(config.mrai_min(), config.mrai_max()));
        match damper.on_change(ctx.rng()) {
            DampAction::SendNow(window) => {
                self.send_routes(ctx, neighbor, &[dest]);
                let arg = (self.epoch(neighbor) << 40)
                    | ((neighbor.index() as u64) << 20)
                    | dest.index() as u64;
                ctx.set_timer(window, TimerToken::compose(timer::MRAI_PAIR, arg));
            }
            DampAction::Deferred => {
                self.pair_pending
                    .get_or_insert_with(neighbor, DenseSet::new)
                    .insert(dest);
            }
        }
    }
}

impl Bgp {
    /// Records a flap event; on a fresh suppression arms the reuse timer.
    fn record_flap(
        &mut self,
        ctx: &mut ProtocolContext<'_>,
        peer: NodeId,
        dest: NodeId,
        event: FlapEvent,
    ) {
        let outcome = self.flap.record(peer, dest, event, ctx.now());
        if let Some(reuse_in) = outcome.reuse_in {
            let arg = (self.epoch(peer) << 40)
                | ((peer.index() as u64) << 20)
                | dest.index() as u64;
            ctx.set_timer(reuse_in, TimerToken::compose(timer::FLAP_REUSE, arg));
        }
    }
}

impl Default for Bgp {
    fn default() -> Self {
        Bgp::new()
    }
}

impl RoutingProtocol for Bgp {
    fn name(&self) -> &'static str {
        "bgp"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        let n = ctx.num_nodes();
        self.adj_in = AdjRibIn::new(n);
        self.loc_rib = vec![None; n];
        self.announce_cache = vec![None; n];
        let origin = self.interner.origin(ctx.node());
        self.announce_cache[ctx.node().index()] = Some(origin.clone());
        self.loc_rib[ctx.node().index()] = Some(BestRoute {
            path: origin,
            next_hop: None,
        });
        self.changed_batch.push(ctx.node());
        self.after_changes(ctx);
    }

    fn on_message(&mut self, ctx: &mut ProtocolContext<'_>, from: NodeId, payload: &dyn Payload) {
        let Some(update) = payload.as_any().downcast_ref::<BgpUpdate>() else {
            debug_assert!(false, "BGP received a non-BGP payload");
            return;
        };
        for &dest in &update.withdrawn {
            if dest == ctx.node() {
                continue;
            }
            if self.adj_in.get(from, dest).is_some() {
                self.record_flap(ctx, from, dest, FlapEvent::Withdrawal);
            }
            self.adj_in.set(from, dest, None);
            self.re_decide(ctx, dest);
        }
        if let Some(path) = &update.path {
            debug_assert_eq!(path.first(), Some(from), "announced path must start at peer");
            // Receive-side loop detection: a path containing this AS is
            // treated as a withdrawal (the split-horizon analog of §3).
            // The stored path is a refcount clone of the sender's hop
            // sequence — the whole Adj-RIB-In fan-in for one announcement
            // shares a single allocation, no interner lookup needed.
            let filtered = if path.contains(ctx.node()) {
                None
            } else {
                Some(path.clone())
            };
            for &dest in &update.announced {
                if dest == ctx.node() {
                    continue;
                }
                if self.flap.is_enabled() {
                    let previous = self.adj_in.get(from, dest);
                    match (&filtered, previous) {
                        // The loop-filtered "withdrawal" of a stored path.
                        (None, Some(_)) => {
                            self.record_flap(ctx, from, dest, FlapEvent::Withdrawal);
                        }
                        (Some(_), _) if self.flap.is_withdrawn(from, dest) => {
                            self.record_flap(ctx, from, dest, FlapEvent::Reannounce);
                        }
                        (Some(new), Some(old)) if old != new => {
                            self.record_flap(ctx, from, dest, FlapEvent::AttributeChange);
                        }
                        _ => {}
                    }
                }
                self.adj_in.set(from, dest, filtered.clone());
                self.re_decide(ctx, dest);
            }
        }
        self.after_changes(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ProtocolContext<'_>, token: TimerToken) {
        match token.kind() {
            timer::MRAI_NEIGHBOR => {
                let neighbor = NodeId::new((token.arg() & 0xff_ffff) as u32);
                let epoch = token.arg() >> 24;
                if epoch != self.epoch(neighbor) {
                    return; // session reset since this timer was armed
                }
                let Some(damper) = self.dampers.get_mut(neighbor) else {
                    return;
                };
                let _ = damper.on_window_expired();
                let pending: Vec<NodeId> = self
                    .pending
                    .remove(neighbor)
                    .map(|s| s.iter().collect())
                    .unwrap_or_default();
                if !pending.is_empty() && ctx.neighbor_up(neighbor) {
                    self.send_routes(ctx, neighbor, &pending);
                    if let Some(damper) = self.dampers.get_mut(neighbor) {
                        let window = damper.reopen(ctx.rng());
                        let arg = (self.epoch(neighbor) << 24) | neighbor.index() as u64;
                        ctx.set_timer(window, TimerToken::compose(timer::MRAI_NEIGHBOR, arg));
                    }
                }
            }
            timer::MRAI_PAIR => {
                let dest = NodeId::new((token.arg() & 0xf_ffff) as u32);
                let neighbor = NodeId::new(((token.arg() >> 20) & 0xf_ffff) as u32);
                let epoch = token.arg() >> 40;
                if epoch != self.epoch(neighbor) {
                    return;
                }
                let Some(damper) = self
                    .pair_dampers
                    .get_mut(neighbor)
                    .and_then(|m| m.get_mut(dest))
                else {
                    return;
                };
                let _ = damper.on_window_expired();
                let was_pending = self
                    .pair_pending
                    .get_mut(neighbor)
                    .is_some_and(|s| s.remove(dest));
                if was_pending && ctx.neighbor_up(neighbor) {
                    self.send_routes(ctx, neighbor, &[dest]);
                    if let Some(damper) =
                        self.pair_dampers.get_mut(neighbor).and_then(|m| m.get_mut(dest))
                    {
                        let window = damper.reopen(ctx.rng());
                        let arg = (self.epoch(neighbor) << 40)
                            | ((neighbor.index() as u64) << 20)
                            | dest.index() as u64;
                        ctx.set_timer(window, TimerToken::compose(timer::MRAI_PAIR, arg));
                    }
                }
            }
            timer::FLAP_REUSE => {
                let dest = NodeId::new((token.arg() & 0xf_ffff) as u32);
                let neighbor = NodeId::new(((token.arg() >> 20) & 0xf_ffff) as u32);
                let epoch = token.arg() >> 40;
                if epoch != self.epoch(neighbor) {
                    return;
                }
                match self.flap.try_reuse(neighbor, dest, ctx.now()) {
                    ReuseOutcome::Released => {
                        self.re_decide(ctx, dest);
                        self.after_changes(ctx);
                    }
                    ReuseOutcome::StillSuppressed(delay) => {
                        let arg = (self.epoch(neighbor) << 40)
                            | ((neighbor.index() as u64) << 20)
                            | dest.index() as u64;
                        ctx.set_timer(delay, TimerToken::compose(timer::FLAP_REUSE, arg));
                    }
                }
            }
            other => debug_assert!(false, "unknown BGP timer kind {other}"),
        }
    }

    fn on_link_down(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        // Session reset: forget everything the peer told us and everything
        // we owed it.
        *self.epochs.get_or_insert_with(neighbor, || 0) += 1;
        self.adj_in.clear_neighbor(neighbor);
        self.dampers.remove(neighbor);
        self.pending.remove(neighbor);
        self.pair_dampers.remove(neighbor);
        self.pair_pending.remove(neighbor);
        self.flap.clear_peer(neighbor);
        for i in 0..self.loc_rib.len() {
            self.re_decide(ctx, NodeId::new(i as u32));
        }
        self.after_changes(ctx);
    }

    fn on_link_up(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        // Fresh session: initial RIB exchange is not MRAI-throttled.
        *self.epochs.get_or_insert_with(neighbor, || 0) += 1;
        let all: Vec<NodeId> = self
            .loc_rib
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_some())
            .map(|(i, _)| NodeId::new(i as u32))
            .collect();
        self.send_routes(ctx, neighbor, &all);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_pick_expected_configs() {
        let std = Bgp::new();
        let fast = Bgp::bgp3();
        assert_eq!(std.config.mrai_mean, netsim::time::SimDuration::from_secs(30));
        assert_eq!(fast.config.mrai_mean, netsim::time::SimDuration::from_secs(3));
        assert_eq!(std.name(), "bgp");
    }

    #[test]
    fn best_is_none_before_start() {
        let bgp = Bgp::new();
        assert!(bgp.best(NodeId::new(0)).is_none());
    }
}
