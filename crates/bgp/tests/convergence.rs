//! BGP behavior on real topologies.

use bgp::{Bgp, BgpConfig, MraiScope};
use netsim::link::LinkConfig;
use netsim::simulator::{ForwardingPath, Simulator};
use netsim::time::SimTime;
use netsim::trace::TraceEvent;
use topology::instantiate::to_simulator_builder;
use topology::mesh::{Mesh, MeshDegree};
use topology::shortest_path::bfs;

fn bgp_mesh<F>(degree: MeshDegree, seed: u64, factory: F) -> (Simulator, Mesh)
where
    F: Fn() -> Bgp,
{
    let mesh = Mesh::regular(7, 7, degree);
    let (mut builder, _) = to_simulator_builder(mesh.graph(), LinkConfig::default()).unwrap();
    builder.seed(seed);
    let mut sim = builder.build().unwrap();
    for node in mesh.graph().nodes() {
        sim.install_protocol(node, Box::new(factory())).unwrap();
    }
    sim.start();
    (sim, mesh)
}

fn assert_steady_state(sim: &Simulator, mesh: &Mesh) {
    for src in mesh.graph().nodes() {
        let sp = bfs(mesh.graph(), src);
        for dst in mesh.graph().nodes() {
            if src == dst {
                continue;
            }
            match sim.forwarding_path(src, dst) {
                ForwardingPath::Complete(path) => assert_eq!(
                    (path.len() - 1) as u32,
                    sp.distance(dst).unwrap(),
                    "suboptimal path {src}->{dst}: {path:?}"
                ),
                other => panic!("{src}->{dst} not converged: {other:?}"),
            }
        }
    }
}

fn last_route_change(sim: &Simulator) -> f64 {
    sim.trace()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::RouteChanged { time, .. } => Some(time.as_secs_f64()),
            _ => None,
        })
        .next_back()
        .unwrap_or(0.0)
}

#[test]
fn bgp3_converges_to_shortest_paths() {
    let (mut sim, mesh) = bgp_mesh(MeshDegree::D4, 1, Bgp::bgp3);
    sim.run_until(SimTime::from_secs(120));
    assert_steady_state(&sim, &mesh);
}

#[test]
fn bgp30_converges_to_shortest_paths_eventually() {
    let (mut sim, mesh) = bgp_mesh(MeshDegree::D4, 2, Bgp::new);
    sim.run_until(SimTime::from_secs(900));
    assert_steady_state(&sim, &mesh);
}

#[test]
fn bgp3_initial_convergence_is_much_faster_than_bgp30() {
    let (mut slow, _) = bgp_mesh(MeshDegree::D4, 3, Bgp::new);
    slow.run_until(SimTime::from_secs(900));
    let (mut fast, _) = bgp_mesh(MeshDegree::D4, 3, Bgp::bgp3);
    fast.run_until(SimTime::from_secs(900));
    let t_slow = last_route_change(&slow);
    let t_fast = last_route_change(&fast);
    assert!(
        t_fast * 3.0 < t_slow,
        "BGP-3 ({t_fast:.1}s) should beat BGP-30 ({t_slow:.1}s) by a wide margin"
    );
}

#[test]
fn withdrawal_bypasses_mrai() {
    // A line 0-1-2: when link 1-2 dies, node 1's withdrawal of dest 2 must
    // reach node 0 within transmission+detection time, not an MRAI window.
    let mut builder = netsim::simulator::SimulatorBuilder::new();
    let nodes = builder.add_nodes(3);
    builder.add_link(nodes[0], nodes[1], LinkConfig::default()).unwrap();
    builder.add_link(nodes[1], nodes[2], LinkConfig::default()).unwrap();
    builder.seed(4);
    let mut sim = builder.build().unwrap();
    for &n in &nodes {
        sim.install_protocol(n, Box::new(Bgp::new())).unwrap();
    }
    sim.start();
    sim.run_until(SimTime::from_secs(120));
    assert!(sim.forwarding_path(nodes[0], nodes[2]).is_complete());

    let link = sim.link_between(nodes[1], nodes[2]).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(200), link).unwrap();
    // Detection at 200.05 s; allow 100 ms for the withdrawal to transit.
    sim.run_until(SimTime::from_millis(200_150));
    assert_eq!(
        sim.fib(nodes[0]).next_hop(nodes[2]),
        None,
        "withdrawal should have reached node 0 immediately"
    );
}

#[test]
fn bgp_reconverges_after_failure_with_valid_paths() {
    let (mut sim, mesh) = bgp_mesh(MeshDegree::D6, 5, Bgp::bgp3);
    sim.run_until(SimTime::from_secs(150));
    assert_steady_state(&sim, &mesh);

    let src = mesh.node_at(0, 2);
    let dst = mesh.node_at(6, 2);
    let path = match sim.forwarding_path(src, dst) {
        ForwardingPath::Complete(p) => p,
        other => panic!("not converged: {other:?}"),
    };
    let (a, b) = (path[2], path[3]);
    let link = sim.link_between(a, b).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(160), link).unwrap();
    sim.run_until(SimTime::from_secs(300));

    let degraded = mesh.graph().without_edge(topology::graph::Edge::new(a, b));
    let sp = bfs(&degraded, src);
    match sim.forwarding_path(src, dst) {
        ForwardingPath::Complete(p) => {
            assert_eq!((p.len() - 1) as u32, sp.distance(dst).unwrap());
        }
        other => panic!("not reconverged: {other:?}"),
    }
}

#[test]
fn bgp_switches_instantly_on_dense_mesh() {
    // Adj-RIB-In plays DBF's cache role: a router beside the failure picks
    // an alternate as soon as it detects the loss.
    let (mut sim, mesh) = bgp_mesh(MeshDegree::D6, 6, Bgp::bgp3);
    sim.run_until(SimTime::from_secs(150));
    let src = mesh.node_at(0, 3);
    let dst = mesh.node_at(6, 3);
    let path = match sim.forwarding_path(src, dst) {
        ForwardingPath::Complete(p) => p,
        other => panic!("not converged: {other:?}"),
    };
    let (a, b) = (path[1], path[2]);
    let link = sim.link_between(a, b).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(160), link).unwrap();
    sim.run_until(SimTime::from_millis(160_051));
    let next = sim.fib(a).next_hop(dst);
    assert!(next.is_some(), "BGP should switch from Adj-RIB-In instantly");
    assert_ne!(next, Some(b));
}

#[test]
fn per_destination_mrai_converges_no_slower() {
    let per_pair = || {
        Bgp::with_config(BgpConfig {
            mrai_scope: MraiScope::PerNeighborDestination,
            ..BgpConfig::standard()
        }).expect("valid config")
    };
    let (mut scoped, mesh) = bgp_mesh(MeshDegree::D4, 7, per_pair);
    scoped.run_until(SimTime::from_secs(900));
    assert_steady_state(&scoped, &mesh);

    let (mut vendor, _) = bgp_mesh(MeshDegree::D4, 7, Bgp::new);
    vendor.run_until(SimTime::from_secs(900));

    let t_pair = last_route_change(&scoped);
    let t_neighbor = last_route_change(&vendor);
    assert!(
        t_pair <= t_neighbor + 1.0,
        "per-destination MRAI ({t_pair:.1}s) should not trail per-neighbor ({t_neighbor:.1}s)"
    );
}

#[test]
fn bgp_runs_are_deterministic() {
    let digest = |seed: u64| {
        let (mut sim, _) = bgp_mesh(MeshDegree::D5, seed, Bgp::bgp3);
        sim.run_until(SimTime::from_secs(200));
        (sim.stats().control_messages_sent, sim.trace().len())
    };
    assert_eq!(digest(8), digest(8));
}

#[test]
fn bgp_is_quiet_at_steady_state() {
    // No periodic updates: once converged, control traffic stops.
    let (mut sim, _) = bgp_mesh(MeshDegree::D4, 9, Bgp::bgp3);
    sim.run_until(SimTime::from_secs(200));
    let before = sim.stats().control_messages_sent;
    sim.run_until(SimTime::from_secs(400));
    let after = sim.stats().control_messages_sent;
    assert_eq!(before, after, "BGP sent messages while idle");
}

#[test]
fn damped_withdrawals_ride_the_mrai() {
    // With damp_withdrawals = true, the withdrawal of a lost destination
    // is delayed by the MRAI like any other update; the neighbor
    // therefore keeps its stale route longer than with the default
    // fast-path. (The paper's §4.3 notes BGP's exception exists exactly
    // to avoid this.)
    let build = |damp: bool| {
        let mut builder = netsim::simulator::SimulatorBuilder::new();
        let nodes = builder.add_nodes(3);
        builder.add_link(nodes[0], nodes[1], LinkConfig::default()).unwrap();
        builder.add_link(nodes[1], nodes[2], LinkConfig::default()).unwrap();
        builder.seed(17);
        let mut sim = builder.build().unwrap();
        for &n in &nodes {
            sim.install_protocol(
                n,
                Box::new(Bgp::with_config(bgp::BgpConfig {
                    damp_withdrawals: damp,
                    ..bgp::BgpConfig::standard()
                }).expect("valid config")),
            )
            .unwrap();
        }
        sim.start();
        sim.run_until(SimTime::from_secs(120));
        let link = sim.link_between(nodes[1], nodes[2]).unwrap();
        sim.schedule_link_failure(SimTime::from_secs(200), link).unwrap();
        (sim, nodes)
    };

    // Fast-path: node 0 learns within transmission time of detection.
    let (mut fast, nodes) = build(false);
    fast.run_until(SimTime::from_millis(200_150));
    assert_eq!(fast.fib(nodes[0]).next_hop(nodes[2]), None);

    // Damped: node 1's withdrawal waits for its (already armed or fresh)
    // MRAI window; shortly after detection node 0 still has the stale
    // route.
    let (mut damped, nodes) = build(true);
    damped.run_until(SimTime::from_millis(200_150));
    // Either still stale now, or (if no window was pending) sent promptly;
    // at minimum the damped variant must never beat the fast path. Run on
    // and confirm it does eventually converge.
    damped.run_until(SimTime::from_secs(300));
    assert_eq!(damped.fib(nodes[0]).next_hop(nodes[2]), None);
}

#[test]
fn session_reset_flushes_adj_rib_in() {
    // After a link fails and recovers, the fresh session re-learns routes
    // through the initial RIB exchange rather than trusting stale state.
    let mut builder = netsim::simulator::SimulatorBuilder::new();
    let nodes = builder.add_nodes(3);
    builder.add_link(nodes[0], nodes[1], LinkConfig::default()).unwrap();
    builder.add_link(nodes[1], nodes[2], LinkConfig::default()).unwrap();
    builder.seed(23);
    let mut sim = builder.build().unwrap();
    for &n in &nodes {
        sim.install_protocol(n, Box::new(Bgp::bgp3())).unwrap();
    }
    sim.start();
    sim.run_until(SimTime::from_secs(60));
    let link = sim.link_between(nodes[0], nodes[1]).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(70), link).unwrap();
    sim.run_until(SimTime::from_secs(80));
    assert_eq!(sim.fib(nodes[0]).next_hop(nodes[2]), None, "partitioned");
    sim.schedule_link_recovery(SimTime::from_secs(90), link).unwrap();
    sim.run_until(SimTime::from_secs(150));
    assert!(
        sim.forwarding_path(nodes[0], nodes[2]).is_complete(),
        "session re-establishment must restore reachability"
    );
}
