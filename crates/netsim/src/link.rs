//! Links and their directed channels.
//!
//! An undirected link between two routers is modeled as two independent
//! directed *channels*, each with its own drop-tail queue, transmitter and
//! propagation pipe. Control and data traffic share the same queue, so
//! routing messages experience (and contribute to) queueing exactly like the
//! paper's IRLSim setup.

use std::collections::VecDeque;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::ident::NodeId;
use crate::impairment::Impairment;
use crate::packet::Packet;
use crate::protocol::Payload;
use crate::time::{SimDuration, SimTime};

/// Per-link physical parameters.
///
/// Defaults follow the paper's §5 setup: unit routing cost, 1 ms propagation
/// delay, 10 Mb/s transmission rate, a 20-packet queue, and 50 ms failure
/// detection latency. The paper notes "the exact values of these parameters
/// should have little impact on the results"; the ablation benches verify
/// that claim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Routing metric for this link (paper: 1 everywhere).
    pub cost: u32,
    /// One-way propagation delay.
    pub propagation_delay: SimDuration,
    /// Transmission rate in bits per second.
    pub bandwidth_bps: u64,
    /// Maximum number of frames waiting in the output queue
    /// (excluding the frame currently being serialized).
    pub queue_capacity: usize,
    /// Delay between a physical failure/repair and its detection by the two
    /// attached nodes.
    pub detection_delay: SimDuration,
    /// Stochastic channel imperfections (loss, jitter, reordering). The
    /// default is [`Impairment::NONE`]: a clean link, as in the paper.
    pub impairment: Impairment,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            cost: 1,
            propagation_delay: SimDuration::from_millis(1),
            bandwidth_bps: 10_000_000,
            queue_capacity: 20,
            detection_delay: SimDuration::from_millis(50),
            impairment: Impairment::NONE,
        }
    }
}

impl LinkConfig {
    /// Time to serialize `bytes` onto the wire at this link's bandwidth.
    ///
    /// # Examples
    ///
    /// ```
    /// use netsim::link::LinkConfig;
    /// use netsim::time::SimDuration;
    ///
    /// let cfg = LinkConfig::default(); // 10 Mb/s
    /// assert_eq!(cfg.serialization_delay(1250), SimDuration::from_millis(1));
    /// ```
    #[must_use]
    pub fn serialization_delay(&self, bytes: usize) -> SimDuration {
        let bits = bytes as u64 * 8;
        // Round up to the next nanosecond so zero-size frames still take
        // nonzero slots only if the link is infinitely fast.
        let nanos = (bits * 1_000_000_000).div_ceil(self.bandwidth_bps);
        SimDuration::from_nanos(nanos)
    }
}

/// A control-plane message in flight.
#[derive(Debug)]
pub struct ControlFrame {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Protocol payload. Shared, not owned: a protocol fanning one update
    /// out to N neighbors clones the `Arc` handle N times while the
    /// payload itself is allocated once.
    pub payload: Arc<dyn Payload>,
    /// Reliable frames emulate a TCP session: they are never dropped by
    /// queue overflow (the sender would have retransmitted), only by link
    /// failure (after which the session itself resets).
    pub reliable: bool,
}

/// Anything occupying a channel: a data packet or a control message.
#[derive(Debug)]
pub enum Frame {
    /// A forwarded data packet.
    Data(Packet),
    /// A routing-protocol message.
    Control(ControlFrame),
}

impl Frame {
    /// Wire size used for serialization delay.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        match self {
            Frame::Data(p) => p.size_bytes as usize,
            // 20-byte header approximating IP+UDP/TCP overhead.
            Frame::Control(c) => c.payload.size_bytes() + 20,
        }
    }
}

/// One direction of a link.
#[derive(Debug)]
pub(crate) struct Channel {
    pub(crate) from: NodeId,
    pub(crate) to: NodeId,
    pub(crate) config: LinkConfig,
    pub(crate) up: bool,
    /// Bumped whenever in-progress transmissions are invalidated
    /// (link failure); stale serialization-complete events compare epochs
    /// and are ignored.
    pub(crate) epoch: u64,
    /// Frame currently being serialized by the transmitter, if any.
    pub(crate) transmitting: Option<Frame>,
    /// Frames waiting behind the transmitter.
    pub(crate) queue: VecDeque<Frame>,
    /// Earliest time the next *reliable* frame may arrive. Impairment loss
    /// turns into retransmission delay for reliable sessions, and this
    /// high-water mark keeps the emulated TCP stream in order: a frame sent
    /// after a retransmitted one cannot overtake it.
    pub(crate) reliable_ready_at: SimTime,
}

/// Outcome of offering a frame to a channel's queue.
#[derive(Debug)]
pub(crate) enum EnqueueOutcome {
    /// The frame went straight to the transmitter; serialization must be
    /// scheduled for the returned duration.
    StartTransmit(SimDuration),
    /// The frame joined the queue behind an ongoing transmission.
    Queued,
    /// The queue was full and the frame was discarded.
    Dropped(Frame),
}

impl Channel {
    pub(crate) fn new(
        from: NodeId,
        to: NodeId,
        config: LinkConfig,
    ) -> Self {
        Channel {
            from,
            to,
            config,
            up: true,
            epoch: 0,
            transmitting: None,
            queue: VecDeque::new(),
            reliable_ready_at: SimTime::ZERO,
        }
    }

    /// Offers a frame for transmission.
    ///
    /// Frames are accepted even while the link is down: the sending node has
    /// not yet detected the failure, so from its point of view the interface
    /// is healthy. Such frames are lost when serialization completes.
    pub(crate) fn offer(&mut self, frame: Frame) -> EnqueueOutcome {
        if self.transmitting.is_none() {
            let delay = self.config.serialization_delay(frame.size_bytes());
            self.transmitting = Some(frame);
            EnqueueOutcome::StartTransmit(delay)
        } else if self.queue.len() < self.config.queue_capacity
            || matches!(&frame, Frame::Control(c) if c.reliable)
        {
            self.queue.push_back(frame);
            EnqueueOutcome::Queued
        } else {
            EnqueueOutcome::Dropped(frame)
        }
    }

    /// Completes the in-progress transmission, returning the transmitted
    /// frame and, if another frame starts serializing, its delay.
    /// Returns `None` when no transmission is in progress.
    pub(crate) fn finish_transmit(&mut self) -> Option<(Frame, Option<SimDuration>)> {
        let done = self.transmitting.take()?;
        let next_delay = self.queue.pop_front().map(|next| {
            let d = self.config.serialization_delay(next.size_bytes());
            self.transmitting = Some(next);
            d
        });
        Some((done, next_delay))
    }

    /// Drops all queued and in-flight state (used on link failure to model
    /// frames lost on the wire).
    pub(crate) fn clear(&mut self) -> Vec<Frame> {
        self.epoch += 1;
        // The failure resets any reliable session running over this
        // channel, so its in-order backlog dies with it.
        self.reliable_ready_at = SimTime::ZERO;
        let mut lost: Vec<Frame> = self.transmitting.take().into_iter().collect();
        lost.extend(self.queue.drain(..));
        lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::PacketId;
    use crate::time::SimTime;

    fn data_frame(size: u32) -> Frame {
        Frame::Data(Packet::new(
            PacketId::new(0),
            NodeId::new(0),
            NodeId::new(1),
            SimTime::ZERO,
            size,
        ))
    }

    fn channel(capacity: usize) -> Channel {
        Channel::new(
            NodeId::new(0),
            NodeId::new(1),
            LinkConfig {
                queue_capacity: capacity,
                ..LinkConfig::default()
            },
        )
    }

    #[test]
    fn serialization_delay_scales_with_size() {
        let cfg = LinkConfig::default();
        assert_eq!(cfg.serialization_delay(1250), SimDuration::from_millis(1));
        assert_eq!(cfg.serialization_delay(2500), SimDuration::from_millis(2));
        assert_eq!(cfg.serialization_delay(0), SimDuration::ZERO);
    }

    #[test]
    fn serialization_delay_rounds_up() {
        let cfg = LinkConfig {
            bandwidth_bps: 3,
            ..LinkConfig::default()
        };
        // 8 bits at 3 b/s = 2.666..s, rounded up to the next nanosecond.
        assert_eq!(
            cfg.serialization_delay(1),
            SimDuration::from_nanos(2_666_666_667)
        );
    }

    #[test]
    fn first_frame_starts_transmitting() {
        let mut ch = channel(2);
        match ch.offer(data_frame(1250)) {
            EnqueueOutcome::StartTransmit(d) => assert_eq!(d, SimDuration::from_millis(1)),
            other => panic!("expected StartTransmit, got {other:?}"),
        }
        assert!(ch.transmitting.is_some());
    }

    #[test]
    fn overflow_drops_tail() {
        let mut ch = channel(1);
        assert!(matches!(
            ch.offer(data_frame(100)),
            EnqueueOutcome::StartTransmit(_)
        ));
        assert!(matches!(ch.offer(data_frame(100)), EnqueueOutcome::Queued));
        assert!(matches!(
            ch.offer(data_frame(100)),
            EnqueueOutcome::Dropped(_)
        ));
    }

    #[test]
    fn reliable_control_bypasses_capacity() {
        let mut ch = channel(0);
        assert!(matches!(
            ch.offer(data_frame(100)),
            EnqueueOutcome::StartTransmit(_)
        ));

        #[derive(Debug)]
        struct Dummy;
        impl Payload for Dummy {
            fn size_bytes(&self) -> usize {
                10
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let ctrl = Frame::Control(ControlFrame {
            from: NodeId::new(0),
            to: NodeId::new(1),
            payload: Arc::new(Dummy),
            reliable: true,
        });
        assert!(matches!(ch.offer(ctrl), EnqueueOutcome::Queued));

        let unreliable = Frame::Control(ControlFrame {
            from: NodeId::new(0),
            to: NodeId::new(1),
            payload: Arc::new(Dummy),
            reliable: false,
        });
        assert!(matches!(ch.offer(unreliable), EnqueueOutcome::Dropped(_)));
    }

    #[test]
    fn finish_transmit_advances_queue() {
        let mut ch = channel(4);
        ch.offer(data_frame(1250));
        ch.offer(data_frame(2500));
        let (_done, next) = ch.finish_transmit().unwrap();
        assert_eq!(next, Some(SimDuration::from_millis(2)));
        let (_done, next) = ch.finish_transmit().unwrap();
        assert_eq!(next, None);
    }

    #[test]
    fn clear_returns_all_frames() {
        let mut ch = channel(4);
        ch.offer(data_frame(100));
        ch.offer(data_frame(100));
        ch.offer(data_frame(100));
        let lost = ch.clear();
        assert_eq!(lost.len(), 3);
        assert!(ch.transmitting.is_none());
        assert!(ch.queue.is_empty());
    }
}
