//! Per-link impairments: seeded loss, delay jitter and reordering.
//!
//! The paper's experiments run over clean links — failures are binary
//! (up/down) and the channels themselves never corrupt traffic. Real
//! networks are messier: links drop a fraction of frames, delay varies,
//! and occasionally frames overtake each other. This module adds a
//! deterministic impairment model on top of the channel pipeline so the
//! study's protocols can be exercised under those conditions too.
//!
//! Probabilities are stored as integer parts-per-million rather than
//! floats so [`Impairment`] (and [`crate::link::LinkConfig`] which embeds
//! it) stays `Copy + Eq + Hash`-able and serializes exactly.
//!
//! Determinism: all impairment decisions are drawn from a dedicated RNG
//! stream inside the simulator, seeded independently of the main stream.
//! A no-op impairment draws nothing, so enabling the subsystem changes
//! nothing for clean-link configurations — paper presets stay
//! bit-identical.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// One million, the denominator of all ppm probabilities.
pub const PPM_SCALE: u32 = 1_000_000;

/// Stochastic channel imperfections applied to frames on one link.
///
/// # Examples
///
/// ```
/// use netsim::impairment::Impairment;
/// use netsim::time::SimDuration;
///
/// let imp = Impairment::lossy(0.15).with_jitter(SimDuration::from_millis(2));
/// assert_eq!(imp.loss_ppm, 150_000);
/// assert!(!imp.is_noop());
/// assert!(Impairment::NONE.is_noop());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Impairment {
    /// Probability (in parts per million) that a frame is lost when its
    /// serialization completes — an independent Bernoulli trial per frame.
    pub loss_ppm: u32,
    /// Extra propagation delay drawn uniformly from `[0, jitter]` per
    /// frame. Zero disables the draw entirely.
    pub jitter: SimDuration,
    /// Probability (ppm) that a frame is additionally held back by
    /// [`Impairment::reorder_extra`], letting later frames overtake it.
    pub reorder_ppm: u32,
    /// The hold-back applied to reordered frames.
    pub reorder_extra: SimDuration,
    /// How long a reliable-session sender waits before retransmitting a
    /// frame the link lost. Reliable frames (the BGP/TCP emulation) are
    /// never silently dropped by loss: each loss costs one retransmission
    /// round-trip of this length instead.
    pub retransmit_delay: SimDuration,
}

impl Impairment {
    /// The identity impairment: a clean link.
    pub const NONE: Impairment = Impairment {
        loss_ppm: 0,
        jitter: SimDuration::ZERO,
        reorder_ppm: 0,
        reorder_extra: SimDuration::ZERO,
        retransmit_delay: SimDuration::from_millis(200),
    };

    /// A pure Bernoulli-loss impairment with the given loss fraction.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    #[must_use]
    pub fn lossy(fraction: f64) -> Self {
        Impairment {
            loss_ppm: fraction_to_ppm(fraction),
            ..Impairment::NONE
        }
    }

    /// Adds uniform delay jitter in `[0, jitter]`.
    #[must_use]
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Adds probabilistic reordering: with probability `fraction` a frame
    /// is held back by `extra` beyond its normal arrival time.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not within `[0, 1]`.
    #[must_use]
    pub fn with_reordering(mut self, fraction: f64, extra: SimDuration) -> Self {
        self.reorder_ppm = fraction_to_ppm(fraction);
        self.reorder_extra = extra;
        self
    }

    /// Overrides the reliable-session retransmission delay.
    #[must_use]
    pub fn with_retransmit_delay(mut self, delay: SimDuration) -> Self {
        self.retransmit_delay = delay;
        self
    }

    /// The loss probability as a fraction.
    #[must_use]
    pub fn loss_fraction(&self) -> f64 {
        f64::from(self.loss_ppm) / f64::from(PPM_SCALE)
    }

    /// Returns `true` if this impairment never alters any frame.
    ///
    /// No-op impairments draw nothing from the impairment RNG, which is
    /// what keeps clean-link runs bit-identical to builds that predate
    /// the impairment subsystem.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.loss_ppm == 0 && self.jitter == SimDuration::ZERO && self.reorder_ppm == 0
    }
}

impl Default for Impairment {
    fn default() -> Self {
        Impairment::NONE
    }
}

/// Converts a probability in `[0, 1]` to parts per million.
///
/// # Panics
///
/// Panics if `fraction` is outside `[0, 1]` or NaN.
#[must_use]
pub fn fraction_to_ppm(fraction: f64) -> u32 {
    assert!(
        (0.0..=1.0).contains(&fraction),
        "probability {fraction} outside [0, 1]"
    );
    // Round to nearest so e.g. 0.1 (not exactly representable) maps to
    // exactly 100_000 ppm.
    (fraction * f64::from(PPM_SCALE)).round() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_noop_and_default() {
        assert!(Impairment::NONE.is_noop());
        assert_eq!(Impairment::default(), Impairment::NONE);
        assert_eq!(Impairment::NONE.loss_fraction(), 0.0);
    }

    #[test]
    fn lossy_converts_fractions_exactly() {
        assert_eq!(Impairment::lossy(0.1).loss_ppm, 100_000);
        assert_eq!(Impairment::lossy(0.15).loss_ppm, 150_000);
        assert_eq!(Impairment::lossy(1.0).loss_ppm, PPM_SCALE);
        assert_eq!(Impairment::lossy(0.0), Impairment::NONE);
    }

    #[test]
    fn builders_compose() {
        let imp = Impairment::lossy(0.05)
            .with_jitter(SimDuration::from_millis(3))
            .with_reordering(0.01, SimDuration::from_millis(10))
            .with_retransmit_delay(SimDuration::from_millis(500));
        assert_eq!(imp.loss_ppm, 50_000);
        assert_eq!(imp.jitter, SimDuration::from_millis(3));
        assert_eq!(imp.reorder_ppm, 10_000);
        assert_eq!(imp.reorder_extra, SimDuration::from_millis(10));
        assert_eq!(imp.retransmit_delay, SimDuration::from_millis(500));
        assert!(!imp.is_noop());
    }

    #[test]
    fn jitter_alone_defeats_noop() {
        let imp = Impairment::NONE.with_jitter(SimDuration::from_micros(1));
        assert!(!imp.is_noop());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_fraction_panics() {
        let _ = Impairment::lossy(1.5);
    }
}
