//! The interface between the simulator and a routing protocol
//! implementation.
//!
//! A protocol instance runs on every node. The simulator calls the
//! [`RoutingProtocol`] event handlers; the protocol reacts through the
//! [`ProtocolContext`] it is handed:
//! sending control messages to neighbors, arming timers, and installing or
//! removing forwarding (FIB) entries.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::ident::NodeId;
use crate::simulator::ProtocolContext;

/// A protocol-defined timer discriminator.
///
/// The simulator treats the token as opaque and returns it verbatim in
/// [`RoutingProtocol::on_timer`]. Protocols typically encode a timer kind
/// (and, if needed, a neighbor or destination index) into the 64 bits.
///
/// # Examples
///
/// ```
/// use netsim::protocol::TimerToken;
///
/// const KIND_PERIODIC: u64 = 1;
/// let token = TimerToken::compose(KIND_PERIODIC, 42);
/// assert_eq!(token.kind(), KIND_PERIODIC);
/// assert_eq!(token.arg(), 42);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct TimerToken(pub u64);

impl TimerToken {
    /// Packs a timer kind (high 16 bits) and argument (low 48 bits).
    ///
    /// # Panics
    ///
    /// Panics if `kind >= 2^16` or `arg >= 2^48`.
    #[must_use]
    pub fn compose(kind: u64, arg: u64) -> Self {
        assert!(kind < (1 << 16), "timer kind {kind} out of range");
        assert!(arg < (1 << 48), "timer arg {arg} out of range");
        TimerToken((kind << 48) | arg)
    }

    /// The kind component packed by [`TimerToken::compose`].
    #[must_use]
    pub fn kind(self) -> u64 {
        self.0 >> 48
    }

    /// The argument component packed by [`TimerToken::compose`].
    #[must_use]
    pub fn arg(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

/// Handle to a pending timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

/// A control-plane message payload.
///
/// Implemented by each protocol's message type. The simulator only needs the
/// wire size (for serialization delay) and a debug representation; receivers
/// downcast via [`Payload::as_any`].
pub trait Payload: fmt::Debug + Any {
    /// Encoded size in bytes, used to compute transmission delay.
    fn size_bytes(&self) -> usize;

    /// Upcast for downcasting by the receiving protocol.
    fn as_any(&self) -> &dyn Any;
}

/// A reference-counted payload handle, the unit of control-plane fan-out.
///
/// Protocols that flood one update to several neighbors build the payload
/// once and clone this handle per send; the frames in flight all point at
/// the same allocation.
pub type SharedPayload = Arc<dyn Payload>;

/// A routing protocol instance hosted on one node.
///
/// All methods have empty default implementations so protocols only
/// implement the events they care about. Handlers must not assume wall-clock
/// time; everything is driven by simulated time through the context.
pub trait RoutingProtocol {
    /// A short, stable name used in traces and reports (e.g. `"rip"`).
    fn name(&self) -> &'static str;

    /// Upcast, so forensic tooling can downcast to the concrete protocol
    /// and inspect its tables after (or during) a run.
    fn as_any(&self) -> &dyn Any;

    /// Called once when the simulation starts, before any other event.
    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        let _ = ctx;
    }

    /// Called when a control message from `from` arrives at this node.
    fn on_message(&mut self, ctx: &mut ProtocolContext<'_>, from: NodeId, payload: &dyn Payload) {
        let _ = (ctx, from, payload);
    }

    /// Called when a timer armed through the context fires.
    fn on_timer(&mut self, ctx: &mut ProtocolContext<'_>, token: TimerToken) {
        let _ = (ctx, token);
    }

    /// Called when this node detects that its link to `neighbor` went down.
    ///
    /// Detection happens a configurable delay after the physical failure;
    /// packets forwarded onto the link in between are lost.
    fn on_link_down(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        let _ = (ctx, neighbor);
    }

    /// Called when this node detects that its link to `neighbor` came up.
    fn on_link_up(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        let _ = (ctx, neighbor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_compose_round_trips() {
        let t = TimerToken::compose(3, 0xdead_beef);
        assert_eq!(t.kind(), 3);
        assert_eq!(t.arg(), 0xdead_beef);
    }

    #[test]
    fn token_compose_max_values() {
        let t = TimerToken::compose((1 << 16) - 1, (1 << 48) - 1);
        assert_eq!(t.kind(), (1 << 16) - 1);
        assert_eq!(t.arg(), (1 << 48) - 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn token_compose_rejects_large_kind() {
        let _ = TimerToken::compose(1 << 16, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn token_compose_rejects_large_arg() {
        let _ = TimerToken::compose(0, 1 << 48);
    }
}
