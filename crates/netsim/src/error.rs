//! Error types.

use std::error::Error;
use std::fmt;

use crate::ident::{LinkId, NodeId};
use crate::time::SimTime;

/// Errors raised while assembling a simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A link referenced a node that was never added.
    UnknownNode(NodeId),
    /// A link connected a node to itself.
    SelfLoop(NodeId),
    /// Two links were added between the same pair of nodes.
    DuplicateLink(NodeId, NodeId),
    /// A protocol was installed on a node that does not exist.
    NoSuchNode(NodeId),
    /// An operation referenced a link that does not exist.
    NoSuchLink(LinkId),
    /// The network had no nodes.
    EmptyNetwork,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownNode(n) => write!(f, "link references unknown node {n}"),
            BuildError::SelfLoop(n) => write!(f, "self-loop at node {n}"),
            BuildError::DuplicateLink(a, b) => {
                write!(f, "duplicate link between {a} and {b}")
            }
            BuildError::NoSuchNode(n) => write!(f, "no such node {n}"),
            BuildError::NoSuchLink(l) => write!(f, "no such link {l}"),
            BuildError::EmptyNetwork => write!(f, "network has no nodes"),
        }
    }
}

impl Error for BuildError {}

/// The event-budget watchdog tripped: a budgeted run processed its maximum
/// number of events before reaching the requested simulated time.
///
/// Raised by [`crate::simulator::Simulator::run_until_budgeted`] when a
/// scenario livelocks (e.g. a protocol stuck in a zero-delay timer loop or
/// a persistent forwarding loop kept alive by retransmissions) instead of
/// letting the process spin forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventBudgetExceeded {
    /// Total events the engine had processed when the watchdog fired.
    pub events: u64,
    /// Simulated time at which the budget ran out.
    pub at: SimTime,
}

impl fmt::Display for EventBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "event budget exhausted after {} events at t={}",
            self.events, self.at
        )
    }
}

impl Error for EventBudgetExceeded {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = BuildError::DuplicateLink(NodeId::new(1), NodeId::new(2));
        assert_eq!(e.to_string(), "duplicate link between n1 and n2");
        let e = BuildError::EmptyNetwork;
        assert_eq!(e.to_string(), "network has no nodes");
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<BuildError>();
    }
}
