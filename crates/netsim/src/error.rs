//! Error types.

use std::error::Error;
use std::fmt;

use crate::ident::{LinkId, NodeId};

/// Errors raised while assembling a simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A link referenced a node that was never added.
    UnknownNode(NodeId),
    /// A link connected a node to itself.
    SelfLoop(NodeId),
    /// Two links were added between the same pair of nodes.
    DuplicateLink(NodeId, NodeId),
    /// A protocol was installed on a node that does not exist.
    NoSuchNode(NodeId),
    /// An operation referenced a link that does not exist.
    NoSuchLink(LinkId),
    /// The network had no nodes.
    EmptyNetwork,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownNode(n) => write!(f, "link references unknown node {n}"),
            BuildError::SelfLoop(n) => write!(f, "self-loop at node {n}"),
            BuildError::DuplicateLink(a, b) => {
                write!(f, "duplicate link between {a} and {b}")
            }
            BuildError::NoSuchNode(n) => write!(f, "no such node {n}"),
            BuildError::NoSuchLink(l) => write!(f, "no such link {l}"),
            BuildError::EmptyNetwork => write!(f, "network has no nodes"),
        }
    }
}

impl Error for BuildError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = BuildError::DuplicateLink(NodeId::new(1), NodeId::new(2));
        assert_eq!(e.to_string(), "duplicate link between n1 and n2");
        let e = BuildError::EmptyNetwork;
        assert_eq!(e.to_string(), "network has no nodes");
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<BuildError>();
    }
}
