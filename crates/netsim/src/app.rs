//! Application agents: end-to-end endpoints riding on top of the routers.
//!
//! The paper measures raw IP delivery; its §6 future work asks how
//! *end-to-end transport* (windows, retransmission) behaves during routing
//! convergence. Application agents make that measurable: an agent lives on
//! a node, sends data packets through the normal FIB data plane, receives
//! the packets addressed to its node, and arms timers — enough to build
//! ARQ transports, request/response services, or adaptive probes.

use crate::packet::Packet;
use crate::protocol::TimerToken;
use crate::simulator::AppContext;

/// An application endpoint hosted on one node.
///
/// All methods have empty defaults. Timers share the [`TimerToken`]
/// namespace with routing protocols but are dispatched separately; an
/// agent only ever sees its own timers.
pub trait AppAgent {
    /// A short name for traces and debugging.
    fn name(&self) -> &'static str;

    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        let _ = ctx;
    }

    /// Called when a data packet destined to this node arrives. The packet
    /// has already been counted as delivered by the engine.
    fn on_packet(&mut self, ctx: &mut AppContext<'_>, packet: &Packet) {
        let _ = (ctx, packet);
    }

    /// Called when a timer armed through the context fires.
    fn on_timer(&mut self, ctx: &mut AppContext<'_>, token: TimerToken) {
        let _ = (ctx, token);
    }

    /// Upcast, so callers can downcast a finished agent to read its
    /// collected statistics after the run.
    fn as_any(&self) -> &dyn std::any::Any;
}
