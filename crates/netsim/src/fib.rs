//! The forwarding information base (FIB).
//!
//! The data plane consults the FIB on every hop; routing protocols write to
//! it through their context. Keeping it separate from protocol routing
//! tables mirrors real routers and lets the trace record exactly when the
//! *forwarding* behavior (as opposed to the control state) changed — the
//! distinction §5.4 of the paper relies on.

use serde::{Deserialize, Serialize};

use crate::ident::NodeId;

/// A dense destination-indexed next-hop table.
///
/// # Examples
///
/// ```
/// use netsim::fib::Fib;
/// use netsim::ident::NodeId;
///
/// let mut fib = Fib::new(4);
/// fib.set(NodeId::new(3), NodeId::new(1));
/// assert_eq!(fib.next_hop(NodeId::new(3)), Some(NodeId::new(1)));
/// assert_eq!(fib.next_hop(NodeId::new(2)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fib {
    entries: Vec<Option<NodeId>>,
}

impl Fib {
    /// Creates an empty FIB able to address `num_nodes` destinations.
    #[must_use]
    pub fn new(num_nodes: usize) -> Self {
        Fib {
            entries: vec![None; num_nodes],
        }
    }

    /// Returns the next hop toward `dest`, or `None` if unreachable.
    #[must_use]
    pub fn next_hop(&self, dest: NodeId) -> Option<NodeId> {
        self.entries.get(dest.index()).copied().flatten()
    }

    /// Installs a next hop for `dest`, returning the previous entry.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range.
    pub fn set(&mut self, dest: NodeId, next_hop: NodeId) -> Option<NodeId> {
        let slot = &mut self.entries[dest.index()];
        slot.replace(next_hop)
    }

    /// Removes the entry for `dest`, returning the previous next hop.
    ///
    /// # Panics
    ///
    /// Panics if `dest` is out of range.
    pub fn remove(&mut self, dest: NodeId) -> Option<NodeId> {
        self.entries[dest.index()].take()
    }

    /// Number of reachable destinations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Returns `true` if no destination is reachable.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|e| e.is_none())
    }

    /// Iterates over `(destination, next_hop)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|nh| (NodeId::new(i as u32), nh)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_lookup() {
        let mut fib = Fib::new(3);
        assert_eq!(fib.set(NodeId::new(2), NodeId::new(1)), None);
        assert_eq!(fib.next_hop(NodeId::new(2)), Some(NodeId::new(1)));
        assert_eq!(
            fib.set(NodeId::new(2), NodeId::new(0)),
            Some(NodeId::new(1))
        );
    }

    #[test]
    fn remove_clears_entry() {
        let mut fib = Fib::new(3);
        fib.set(NodeId::new(1), NodeId::new(2));
        assert_eq!(fib.remove(NodeId::new(1)), Some(NodeId::new(2)));
        assert_eq!(fib.remove(NodeId::new(1)), None);
        assert!(fib.is_empty());
    }

    #[test]
    fn out_of_range_lookup_is_none() {
        let fib = Fib::new(2);
        assert_eq!(fib.next_hop(NodeId::new(99)), None);
    }

    #[test]
    fn len_counts_installed_routes() {
        let mut fib = Fib::new(5);
        assert_eq!(fib.len(), 0);
        fib.set(NodeId::new(0), NodeId::new(1));
        fib.set(NodeId::new(4), NodeId::new(1));
        assert_eq!(fib.len(), 2);
        assert_eq!(fib.iter().count(), 2);
    }
}
