//! Data packets and the taxonomy of packet drops.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ident::{NodeId, PacketId};
use crate::time::SimTime;

/// The default IP TTL used by the study's traffic sources.
pub const DEFAULT_TTL: u8 = 127;

/// A data packet traversing the simulated network hop by hop.
///
/// # Examples
///
/// ```
/// use netsim::packet::{Packet, DEFAULT_TTL};
/// use netsim::ident::{NodeId, PacketId};
/// use netsim::time::SimTime;
///
/// let p = Packet::new(PacketId::new(0), NodeId::new(0), NodeId::new(48),
///                     SimTime::from_secs(40), 1000);
/// assert_eq!(p.ttl, DEFAULT_TTL);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique identifier within the run.
    pub id: PacketId,
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Remaining time-to-live; decremented at every forwarding hop.
    pub ttl: u8,
    /// Number of hops traversed so far.
    pub hops: u32,
    /// The simulated time at which the source injected the packet.
    pub sent_at: SimTime,
    /// Payload size in bytes (used for serialization delay).
    pub size_bytes: u32,
    /// Opaque application tag (0 for plain traffic); transports encode
    /// flow ids, sequence numbers and ACK flags here.
    pub tag: u64,
}

impl Packet {
    /// Creates a packet with the study's default TTL of 127.
    #[must_use]
    pub fn new(id: PacketId, src: NodeId, dst: NodeId, sent_at: SimTime, size_bytes: u32) -> Self {
        Packet {
            id,
            src,
            dst,
            ttl: DEFAULT_TTL,
            hops: 0,
            sent_at,
            size_bytes,
            tag: 0,
        }
    }

    /// Creates a packet with an explicit TTL.
    #[must_use]
    pub fn with_ttl(mut self, ttl: u8) -> Self {
        self.ttl = ttl;
        self
    }

    /// Attaches an application tag.
    #[must_use]
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }
}

/// Why a data packet was discarded.
///
/// These categories drive the paper's Figures 3 and 4: `NoRoute` counts the
/// "drops due to no reachability" of §5.1 and `TtlExpired` the loop-induced
/// drops of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DropReason {
    /// The router had no forwarding entry for the destination
    /// (the path switch-over period of §4.1).
    NoRoute,
    /// The TTL reached zero, i.e. the packet was caught in a transient
    /// forwarding loop (§5.2).
    TtlExpired,
    /// The packet was transmitted onto a link that had failed but whose
    /// failure had not yet been detected (Figure 1(b) of the paper).
    LinkDown,
    /// The output queue was full (drop-tail).
    QueueOverflow,
    /// The frame was lost to a stochastic link impairment
    /// (see [`crate::impairment::Impairment`]).
    Impaired,
}

impl DropReason {
    /// All drop reasons, in reporting order.
    pub const ALL: [DropReason; 5] = [
        DropReason::NoRoute,
        DropReason::TtlExpired,
        DropReason::LinkDown,
        DropReason::QueueOverflow,
        DropReason::Impaired,
    ];
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DropReason::NoRoute => "no-route",
            DropReason::TtlExpired => "ttl-expired",
            DropReason::LinkDown => "link-down",
            DropReason::QueueOverflow => "queue-overflow",
            DropReason::Impaired => "impaired",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet::new(
            PacketId::new(1),
            NodeId::new(0),
            NodeId::new(5),
            SimTime::from_secs(1),
            1000,
        )
    }

    #[test]
    fn new_packet_has_default_ttl_and_zero_hops() {
        let p = sample();
        assert_eq!(p.ttl, DEFAULT_TTL);
        assert_eq!(p.hops, 0);
    }

    #[test]
    fn with_ttl_overrides() {
        assert_eq!(sample().with_ttl(4).ttl, 4);
    }

    #[test]
    fn tags_default_to_zero() {
        assert_eq!(sample().tag, 0);
        assert_eq!(sample().with_tag(99).tag, 99);
    }

    #[test]
    fn drop_reason_display_names_are_stable() {
        let names: Vec<String> = DropReason::ALL.iter().map(|r| r.to_string()).collect();
        assert_eq!(
            names,
            ["no-route", "ttl-expired", "link-down", "queue-overflow", "impaired"]
        );
    }
}
