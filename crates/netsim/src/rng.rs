//! Deterministic random number generation for simulations.
//!
//! Every simulation run draws all randomness from a single [`SimRng`] seeded
//! from the experiment seed. Because the event loop processes events in a
//! deterministic order, a run is a pure function of its configuration and
//! seed.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimDuration;

/// A seeded random number generator owned by the simulator.
///
/// # Examples
///
/// ```
/// use netsim::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gen_range_u64(0, 100), b.gen_range_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent sub-generator, e.g. one per simulated run.
    ///
    /// The derivation mixes `salt` into the stream so sibling sub-generators
    /// are decorrelated.
    #[must_use]
    pub fn derive(&mut self, salt: u64) -> SimRng {
        let base: u64 = self.inner.gen();
        SimRng::seed_from(base ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range_u64: empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Returns a uniform index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn gen_index(&mut self, len: usize) -> usize {
        assert!(len > 0, "gen_index: empty collection");
        self.inner.gen_range(0..len)
    }

    /// Returns a uniform float in `[0, 1)`.
    pub fn gen_unit(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Returns a uniform duration in `[lo, hi]` (inclusive of both ends at
    /// nanosecond granularity).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_duration(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "gen_duration: lo {lo} exceeds hi {hi}");
        if lo == hi {
            return lo;
        }
        SimDuration::from_nanos(self.inner.gen_range(lo.as_nanos()..=hi.as_nanos()))
    }

    /// Picks a uniformly random element of a slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.gen_index(items.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range_u64(0, 1000), b.gen_range_u64(0, 1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..16).map(|_| a.gen_range_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen_range_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_is_deterministic_and_salted() {
        let mut root1 = SimRng::seed_from(9);
        let mut root2 = SimRng::seed_from(9);
        let mut c1 = root1.derive(5);
        let mut c2 = root2.derive(5);
        assert_eq!(c1.gen_range_u64(0, 1 << 32), c2.gen_range_u64(0, 1 << 32));

        let mut root3 = SimRng::seed_from(9);
        let mut d = root3.derive(6);
        // Different salt gives a different stream (overwhelmingly likely).
        assert_ne!(
            (0..8).map(|_| c1.gen_range_u64(0, 1 << 32)).collect::<Vec<_>>(),
            (0..8).map(|_| d.gen_range_u64(0, 1 << 32)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_duration_respects_bounds() {
        let mut rng = SimRng::seed_from(3);
        let lo = SimDuration::from_secs(1);
        let hi = SimDuration::from_secs(5);
        for _ in 0..1000 {
            let d = rng.gen_duration(lo, hi);
            assert!(d >= lo && d <= hi);
        }
        assert_eq!(rng.gen_duration(lo, lo), lo);
    }

    #[test]
    fn gen_unit_in_range() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            let u = rng.gen_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn gen_index_panics_on_empty() {
        SimRng::seed_from(0).gen_index(0);
    }
}
