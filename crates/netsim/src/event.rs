//! The simulator's event calendar.
//!
//! A binary heap keyed on `(time, sequence)` where the sequence number makes
//! ordering stable: two events scheduled for the same instant fire in the
//! order they were scheduled. This is what makes runs deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::ident::{LinkId, NodeId};
use crate::impairment::Impairment;
use crate::link::Frame;
use crate::packet::Packet;
use crate::protocol::{RoutingProtocol, TimerId};
use crate::time::SimTime;

/// A fresh protocol instance carried by a [`EventKind::NodeRestart`] event.
///
/// Wrapped so the event enum stays `Debug` even though
/// [`RoutingProtocol`] implementations need not be.
pub(crate) struct FreshProtocol(pub(crate) Box<dyn RoutingProtocol>);

impl std::fmt::Debug for FreshProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FreshProtocol({})", self.0.name())
    }
}

/// An event to be processed by the simulation engine.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// The transmitter of `channel` finished serializing its current frame.
    /// `epoch` guards against stale events after a link failure cleared the
    /// transmitter.
    FrameSerialized {
        channel: crate::ident::ChannelId,
        epoch: u64,
    },
    /// A frame finished propagating and arrives at the channel's head node.
    FrameArrived {
        channel: crate::ident::ChannelId,
        frame: Frame,
    },
    /// A protocol timer fired at `node`.
    TimerFired { node: NodeId, timer: TimerId },
    /// Both directions of `link` go down.
    LinkFail { link: LinkId },
    /// Both directions of `link` come back up.
    LinkRecover { link: LinkId },
    /// `node` locally detects that its attachment to `link` changed state.
    LinkStateDetected { node: NodeId, link: LinkId, up: bool },
    /// A traffic source injects a data packet at its attachment node.
    InjectPacket { packet: Packet },
    /// The impairment of both channels of `link` changes to `impairment`
    /// (the onset or the end of a lossy period).
    SetImpairment { link: LinkId, impairment: Impairment },
    /// `node` reboots with cold routing state: its FIB is wiped, its
    /// pending protocol timers die and `protocol` replaces the crashed
    /// instance.
    NodeRestart { node: NodeId, protocol: FreshProtocol },
}

#[derive(Debug)]
struct Scheduled {
    time: SimTime,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, breaking ties by schedule order.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    now: SimTime,
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue::default()
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `kind` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub(crate) fn schedule(&mut self, at: SimTime, kind: EventKind) {
        assert!(
            at >= self.now,
            "attempt to schedule an event at {at} before now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled {
            time: at,
            seq,
            kind,
        });
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        Some((ev.time, ev.kind))
    }

    /// Timestamp of the next event without popping it.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Advances the clock to `t` without processing anything (the end of a
    /// bounded `run_until` window), so external interactions after the run
    /// happen at the window boundary rather than at the last event.
    pub(crate) fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            debug_assert!(self.peek_time().is_none_or(|next| next >= t));
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::ChannelId;

    fn marker(ch: u32) -> EventKind {
        EventKind::FrameSerialized {
            channel: ChannelId::new(ch),
            epoch: 0,
        }
    }

    fn channel_of(kind: &EventKind) -> u32 {
        match kind {
            EventKind::FrameSerialized { channel, .. } => channel.index() as u32,
            _ => panic!("unexpected event"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), marker(3));
        q.schedule(SimTime::from_secs(1), marker(1));
        q.schedule(SimTime::from_secs(2), marker(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| channel_of(&k))
            .collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            q.schedule(t, marker(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| channel_of(&k))
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), marker(0));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), marker(0));
        q.pop();
        q.schedule(SimTime::from_secs(1), marker(1));
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(700), marker(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(700)));
        assert_eq!(q.len(), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(700));
        assert!(q.pop().is_none());
    }
}
