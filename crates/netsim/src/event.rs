//! The simulator's event calendar.
//!
//! Ordering is keyed on `(time, sequence)` where the sequence number makes
//! ordering stable: two events scheduled for the same instant fire in the
//! order they were scheduled. This is what makes runs deterministic.
//!
//! Internally the queue is an *indexed* binary heap: the heap itself holds
//! only small fixed-size keys (`time`, `seq`, slab slot), while the
//! [`EventKind`] payloads — which carry whole frames, packets and even
//! boxed protocol instances — sit still in a slab with a free list. Heap
//! sift operations therefore move 24-byte keys instead of the large event
//! enum, and popped slots are recycled so a steady-state run stops
//! allocating once the calendar reaches its high-water mark.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::ident::{LinkId, NodeId};
use crate::impairment::Impairment;
use crate::link::Frame;
use crate::packet::Packet;
use crate::protocol::{RoutingProtocol, TimerId};
use crate::time::SimTime;

/// A fresh protocol instance carried by a [`EventKind::NodeRestart`] event.
///
/// Wrapped so the event enum stays `Debug` even though
/// [`RoutingProtocol`] implementations need not be.
pub(crate) struct FreshProtocol(pub(crate) Box<dyn RoutingProtocol>);

impl std::fmt::Debug for FreshProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FreshProtocol({})", self.0.name())
    }
}

/// An event to be processed by the simulation engine.
#[derive(Debug)]
pub(crate) enum EventKind {
    /// The transmitter of `channel` finished serializing its current frame.
    /// `epoch` guards against stale events after a link failure cleared the
    /// transmitter.
    FrameSerialized {
        channel: crate::ident::ChannelId,
        epoch: u64,
    },
    /// A frame finished propagating and arrives at the channel's head node.
    FrameArrived {
        channel: crate::ident::ChannelId,
        frame: Frame,
    },
    /// A protocol timer fired at `node`.
    TimerFired { node: NodeId, timer: TimerId },
    /// Both directions of `link` go down.
    LinkFail { link: LinkId },
    /// Both directions of `link` come back up.
    LinkRecover { link: LinkId },
    /// `node` locally detects that its attachment to `link` changed state.
    LinkStateDetected { node: NodeId, link: LinkId, up: bool },
    /// A traffic source injects a data packet at its attachment node.
    InjectPacket { packet: Packet },
    /// The impairment of both channels of `link` changes to `impairment`
    /// (the onset or the end of a lossy period).
    SetImpairment { link: LinkId, impairment: Impairment },
    /// `node` reboots with cold routing state: its FIB is wiped, its
    /// pending protocol timers die and `protocol` replaces the crashed
    /// instance.
    NodeRestart { node: NodeId, protocol: FreshProtocol },
}

/// The fixed-size heap key: everything ordering needs, nothing more.
#[derive(Debug, Clone, Copy)]
struct HeapKey {
    time: SimTime,
    seq: u64,
    slot: u32,
}

impl PartialEq for HeapKey {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl Eq for HeapKey {}

impl PartialOrd for HeapKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapKey {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, breaking ties by schedule order.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Slots pre-allocated on construction; the busiest paper runs keep a few
/// thousand events in flight, so most runs never grow the calendar.
const INITIAL_CAPACITY: usize = 1024;

/// A deterministic future-event list.
#[derive(Debug)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<HeapKey>,
    /// Payload slab indexed by `HeapKey::slot`; `None` marks a free slot.
    slab: Vec<Option<EventKind>>,
    /// Recyclable slab slots (popped events release theirs).
    free: Vec<u32>,
    next_seq: u64,
    now: SimTime,
    /// Peak number of simultaneously pending events.
    high_water: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl EventQueue {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(INITIAL_CAPACITY),
            slab: Vec::with_capacity(INITIAL_CAPACITY),
            free: Vec::with_capacity(INITIAL_CAPACITY),
            next_seq: 0,
            now: SimTime::ZERO,
            high_water: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    pub(crate) fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `kind` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub(crate) fn schedule(&mut self, at: SimTime, kind: EventKind) {
        assert!(
            at >= self.now,
            "attempt to schedule an event at {at} before now {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slab[slot as usize] = Some(kind);
                slot
            }
            None => {
                let slot = u32::try_from(self.slab.len()).expect("event slab overflow");
                self.slab.push(Some(kind));
                slot
            }
        };
        self.heap.push(HeapKey {
            time: at,
            seq,
            slot,
        });
        self.high_water = self.high_water.max(self.heap.len() as u64);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub(crate) fn pop(&mut self) -> Option<(SimTime, EventKind)> {
        let key = self.heap.pop()?;
        debug_assert!(key.time >= self.now, "event queue went backwards");
        self.now = key.time;
        let kind = self.slab[key.slot as usize]
            .take()
            .expect("heap key points at an occupied slab slot");
        self.free.push(key.slot);
        Some((key.time, kind))
    }

    /// Timestamp of the next event without popping it.
    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    /// Peak number of simultaneously pending events over the queue's life.
    pub(crate) fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Advances the clock to `t` without processing anything (the end of a
    /// bounded `run_until` window), so external interactions after the run
    /// happen at the window boundary rather than at the last event.
    pub(crate) fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            debug_assert!(self.peek_time().is_none_or(|next| next >= t));
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::ChannelId;

    fn marker(ch: u32) -> EventKind {
        EventKind::FrameSerialized {
            channel: ChannelId::new(ch),
            epoch: 0,
        }
    }

    fn channel_of(kind: &EventKind) -> u32 {
        match kind {
            EventKind::FrameSerialized { channel, .. } => channel.index() as u32,
            _ => panic!("unexpected event"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), marker(3));
        q.schedule(SimTime::from_secs(1), marker(1));
        q.schedule(SimTime::from_secs(2), marker(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| channel_of(&k))
            .collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5);
        for i in 0..10 {
            q.schedule(t, marker(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, k)| channel_of(&k))
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), marker(0));
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), marker(0));
        q.pop();
        q.schedule(SimTime::from_secs(1), marker(1));
    }

    #[test]
    fn slab_slots_are_recycled() {
        let mut q = EventQueue::new();
        // Interleave schedule/pop so the in-flight count stays at one; the
        // slab must not grow beyond that high-water mark.
        for i in 0..100 {
            q.schedule(SimTime::from_secs(i + 1), marker(i as u32));
            let (_, kind) = q.pop().unwrap();
            assert_eq!(channel_of(&kind), i as u32);
        }
        assert_eq!(q.len(), 0);
        assert_eq!(q.slab.len(), 1, "one slot recycled a hundred times");
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(700), marker(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(700)));
        assert_eq!(q.len(), 1);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_millis(700));
        assert!(q.pop().is_none());
    }
}
