//! Run traces.
//!
//! The simulator records everything the paper's post-hoc analysis needs:
//! per-packet lifecycles (including every forwarding hop, for loop
//! forensics), every FIB change (for convergence timing), control-plane
//! message counts (for routing load) and link events. Metrics are computed
//! from the trace by the `convergence` crate, never online, so a single run
//! can answer every question the paper asks.

use serde::{Deserialize, Serialize};

use crate::ident::{LinkId, NodeId, PacketId};
use crate::packet::DropReason;
use crate::time::SimTime;

/// One record in a simulation trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A traffic source handed a packet to its first router.
    PacketInjected {
        /// Event time.
        time: SimTime,
        /// Packet identifier.
        id: PacketId,
        /// Source router.
        src: NodeId,
        /// Destination router.
        dst: NodeId,
    },
    /// `node` forwarded the packet toward `next_hop`.
    PacketForwarded {
        /// Event time.
        time: SimTime,
        /// Packet identifier.
        id: PacketId,
        /// Forwarding router.
        node: NodeId,
        /// Chosen next hop.
        next_hop: NodeId,
    },
    /// The packet reached its destination.
    PacketDelivered {
        /// Event time.
        time: SimTime,
        /// Packet identifier.
        id: PacketId,
        /// Delivering router (== destination).
        node: NodeId,
        /// Hops traversed.
        hops: u32,
        /// Injection time, for delay computation.
        sent_at: SimTime,
    },
    /// The packet was discarded.
    PacketDropped {
        /// Event time.
        time: SimTime,
        /// Packet identifier.
        id: PacketId,
        /// Router at which the drop occurred.
        node: NodeId,
        /// Why it was dropped.
        reason: DropReason,
        /// Injection time.
        sent_at: SimTime,
    },
    /// A FIB entry changed (including initial installation, `old == None`).
    RouteChanged {
        /// Event time.
        time: SimTime,
        /// Router whose FIB changed.
        node: NodeId,
        /// Destination whose entry changed.
        dest: NodeId,
        /// Previous next hop.
        old: Option<NodeId>,
        /// New next hop (`None` = destination became unreachable).
        new: Option<NodeId>,
    },
    /// A control message was handed to the output link.
    ControlSent {
        /// Event time.
        time: SimTime,
        /// Sending router.
        from: NodeId,
        /// Receiving router.
        to: NodeId,
        /// Wire size in bytes.
        bytes: u32,
    },
    /// A link physically failed.
    LinkFailed {
        /// Event time.
        time: SimTime,
        /// The failed link.
        link: LinkId,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// A link physically recovered.
    LinkRecovered {
        /// Event time.
        time: SimTime,
        /// The recovered link.
        link: LinkId,
        /// One endpoint.
        a: NodeId,
        /// The other endpoint.
        b: NodeId,
    },
    /// `node` detected the state change of its link to `neighbor`.
    LinkStateDetected {
        /// Event time.
        time: SimTime,
        /// Detecting router.
        node: NodeId,
        /// Neighbor across the affected link.
        neighbor: NodeId,
        /// New perceived state.
        up: bool,
    },
    /// The impairment applied to a link changed (e.g. a lossy period
    /// started or ended).
    ImpairmentChanged {
        /// Event time.
        time: SimTime,
        /// The affected link.
        link: LinkId,
        /// The new loss probability in parts per million.
        loss_ppm: u32,
    },
    /// A router rebooted with cold routing state.
    NodeRestarted {
        /// Event time.
        time: SimTime,
        /// The rebooted router.
        node: NodeId,
    },
}

impl TraceEvent {
    /// Renders the record as one stable text line for golden-trace
    /// fixtures: kind, raw nanosecond timestamp, then the fields in
    /// declaration order. The format is part of the fixture contract —
    /// changing it invalidates recorded goldens.
    #[must_use]
    pub fn render_line(&self) -> String {
        fn opt(node: &Option<NodeId>) -> String {
            node.map_or_else(|| "-".to_string(), |n| n.to_string())
        }
        match self {
            TraceEvent::PacketInjected { time, id, src, dst } => format!(
                "inject t={} id={id} src={src} dst={dst}",
                time.as_nanos()
            ),
            TraceEvent::PacketForwarded {
                time,
                id,
                node,
                next_hop,
            } => format!(
                "forward t={} id={id} node={node} next={next_hop}",
                time.as_nanos()
            ),
            TraceEvent::PacketDelivered {
                time,
                id,
                node,
                hops,
                sent_at,
            } => format!(
                "deliver t={} id={id} node={node} hops={hops} sent={}",
                time.as_nanos(),
                sent_at.as_nanos()
            ),
            TraceEvent::PacketDropped {
                time,
                id,
                node,
                reason,
                sent_at,
            } => format!(
                "drop t={} id={id} node={node} reason={reason:?} sent={}",
                time.as_nanos(),
                sent_at.as_nanos()
            ),
            TraceEvent::RouteChanged {
                time,
                node,
                dest,
                old,
                new,
            } => format!(
                "route t={} node={node} dest={dest} old={} new={}",
                time.as_nanos(),
                opt(old),
                opt(new)
            ),
            TraceEvent::ControlSent {
                time,
                from,
                to,
                bytes,
            } => format!(
                "control t={} from={from} to={to} bytes={bytes}",
                time.as_nanos()
            ),
            TraceEvent::LinkFailed { time, link, a, b } => {
                format!("linkfail t={} link={link} a={a} b={b}", time.as_nanos())
            }
            TraceEvent::LinkRecovered { time, link, a, b } => {
                format!("linkrecover t={} link={link} a={a} b={b}", time.as_nanos())
            }
            TraceEvent::LinkStateDetected {
                time,
                node,
                neighbor,
                up,
            } => format!(
                "detect t={} node={node} neighbor={neighbor} up={up}",
                time.as_nanos()
            ),
            TraceEvent::ImpairmentChanged {
                time,
                link,
                loss_ppm,
            } => format!(
                "impair t={} link={link} loss_ppm={loss_ppm}",
                time.as_nanos()
            ),
            TraceEvent::NodeRestarted { time, node } => {
                format!("restart t={} node={node}", time.as_nanos())
            }
        }
    }

    /// The timestamp of this record.
    #[must_use]
    pub fn time(&self) -> SimTime {
        match self {
            TraceEvent::PacketInjected { time, .. }
            | TraceEvent::PacketForwarded { time, .. }
            | TraceEvent::PacketDelivered { time, .. }
            | TraceEvent::PacketDropped { time, .. }
            | TraceEvent::RouteChanged { time, .. }
            | TraceEvent::ControlSent { time, .. }
            | TraceEvent::LinkFailed { time, .. }
            | TraceEvent::LinkRecovered { time, .. }
            | TraceEvent::LinkStateDetected { time, .. }
            | TraceEvent::ImpairmentChanged { time, .. }
            | TraceEvent::NodeRestarted { time, .. } => *time,
        }
    }
}

/// What the recorder keeps.
///
/// Hop-level records dominate trace volume; they can be disabled for
/// performance benchmarking where only aggregates matter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Record a [`TraceEvent::PacketForwarded`] per hop (needed for loop
    /// forensics and transient-path enumeration).
    pub record_hops: bool,
    /// Record a [`TraceEvent::ControlSent`] per routing message.
    pub record_control: bool,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            record_hops: true,
            record_control: true,
        }
    }
}

/// An append-only record of everything observable in a run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds a trace from pre-recorded events (replay, synthesis in
    /// tests, or deserialized archives).
    ///
    /// # Panics
    ///
    /// Panics if the events are not in non-decreasing time order.
    #[must_use]
    pub fn from_events(events: Vec<TraceEvent>) -> Self {
        assert!(
            events.windows(2).all(|w| w[0].time() <= w[1].time()),
            "trace events must be in time order"
        );
        Trace { events }
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        debug_assert!(
            self.events.last().is_none_or(|e| e.time() <= event.time()),
            "trace must be appended in time order"
        );
        self.events.push(event);
    }

    /// All records in time order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// Renders the whole trace as stable text, one
    /// [`TraceEvent::render_line`] per record — the byte stream compared
    /// (and compressed) by golden-trace regression tests.
    #[must_use]
    pub fn render_lines(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.render_line());
            out.push('\n');
        }
        out
    }

    /// Counts records by kind — a quick sanity profile of a run.
    #[must_use]
    pub fn census(&self) -> TraceCensus {
        let mut census = TraceCensus::default();
        for event in &self.events {
            match event {
                TraceEvent::PacketInjected { .. } => census.injected += 1,
                TraceEvent::PacketForwarded { .. } => census.forwarded += 1,
                TraceEvent::PacketDelivered { .. } => census.delivered += 1,
                TraceEvent::PacketDropped { .. } => census.dropped += 1,
                TraceEvent::RouteChanged { .. } => census.route_changes += 1,
                TraceEvent::ControlSent { .. } => census.control_sent += 1,
                TraceEvent::LinkFailed { .. } => census.link_failures += 1,
                TraceEvent::LinkRecovered { .. } => census.link_recoveries += 1,
                TraceEvent::LinkStateDetected { .. } => census.detections += 1,
                TraceEvent::ImpairmentChanged { .. } => census.impairment_changes += 1,
                TraceEvent::NodeRestarted { .. } => census.node_restarts += 1,
            }
        }
        census
    }
}

/// Per-kind record counts of a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceCensus {
    /// Packets injected by sources.
    pub injected: u64,
    /// Hop-level forwarding records.
    pub forwarded: u64,
    /// Deliveries.
    pub delivered: u64,
    /// Drops (all causes).
    pub dropped: u64,
    /// FIB changes.
    pub route_changes: u64,
    /// Control messages offered to links.
    pub control_sent: u64,
    /// Physical link failures.
    pub link_failures: u64,
    /// Physical link recoveries.
    pub link_recoveries: u64,
    /// Per-endpoint failure/recovery detections.
    pub detections: u64,
    /// Link impairment changes (lossy-period onsets and ends).
    pub impairment_changes: u64,
    /// Cold-state router reboots.
    pub node_restarts: u64,
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_preserves_order_and_contents() {
        let mut t = Trace::new();
        t.push(TraceEvent::LinkFailed {
            time: SimTime::from_secs(1),
            link: LinkId::new(0),
            a: NodeId::new(0),
            b: NodeId::new(1),
        });
        t.push(TraceEvent::LinkRecovered {
            time: SimTime::from_secs(2),
            link: LinkId::new(0),
            a: NodeId::new(0),
            b: NodeId::new(1),
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].time(), SimTime::from_secs(1));
        assert_eq!(t.iter().count(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn event_time_covers_all_variants() {
        let t = SimTime::from_millis(5);
        let ev = TraceEvent::PacketDropped {
            time: t,
            id: PacketId::new(0),
            node: NodeId::new(0),
            reason: DropReason::NoRoute,
            sent_at: SimTime::ZERO,
        };
        assert_eq!(ev.time(), t);
    }

    #[test]
    fn census_counts_by_kind() {
        let t = Trace::from_events(vec![
            TraceEvent::LinkFailed {
                time: SimTime::from_secs(1),
                link: LinkId::new(0),
                a: NodeId::new(0),
                b: NodeId::new(1),
            },
            TraceEvent::LinkStateDetected {
                time: SimTime::from_secs(1),
                node: NodeId::new(0),
                neighbor: NodeId::new(1),
                up: false,
            },
            TraceEvent::RouteChanged {
                time: SimTime::from_secs(1),
                node: NodeId::new(0),
                dest: NodeId::new(1),
                old: None,
                new: None,
            },
        ]);
        let census = t.census();
        assert_eq!(census.link_failures, 1);
        assert_eq!(census.detections, 1);
        assert_eq!(census.route_changes, 1);
        assert_eq!(census.injected, 0);
    }

    #[test]
    fn default_config_records_everything() {
        let cfg = TraceConfig::default();
        assert!(cfg.record_hops);
        assert!(cfg.record_control);
    }

    #[test]
    fn render_lines_is_stable_text() {
        let t = Trace::from_events(vec![
            TraceEvent::PacketInjected {
                time: SimTime::from_millis(1),
                id: PacketId::new(3),
                src: NodeId::new(0),
                dst: NodeId::new(5),
            },
            TraceEvent::RouteChanged {
                time: SimTime::from_millis(2),
                node: NodeId::new(1),
                dest: NodeId::new(5),
                old: None,
                new: Some(NodeId::new(2)),
            },
            TraceEvent::PacketDropped {
                time: SimTime::from_millis(3),
                id: PacketId::new(3),
                node: NodeId::new(2),
                reason: DropReason::NoRoute,
                sent_at: SimTime::from_millis(1),
            },
        ]);
        let text = t.render_lines();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "inject t=1000000 id=p3 src=n0 dst=n5");
        assert_eq!(lines[1], "route t=2000000 node=n1 dest=n5 old=- new=n2");
        assert_eq!(
            lines[2],
            "drop t=3000000 id=p3 node=n2 reason=NoRoute sent=1000000"
        );
        assert_eq!(t.render_lines(), text);
    }
}
