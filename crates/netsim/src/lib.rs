//! # netsim — a deterministic packet-level network simulator
//!
//! This crate is the substrate beneath the routing-convergence study: a
//! discrete-event simulator playing the role of IRLSim in the original
//! paper. It models routers with forwarding tables, links with bandwidth,
//! propagation delay and drop-tail queues, hop-by-hop IP-style forwarding
//! with TTL, link failures with detection latency, and an event-driven
//! hosting interface for routing protocols.
//!
//! Runs are bit-for-bit reproducible: simulated time is integer nanoseconds,
//! event ties break in schedule order, and all randomness flows from one
//! seeded generator.
//!
//! ## Quickstart
//!
//! ```
//! use netsim::link::LinkConfig;
//! use netsim::simulator::SimulatorBuilder;
//! use netsim::time::SimTime;
//! use netsim::ident::NodeId;
//! use netsim::protocol::RoutingProtocol;
//!
//! /// A protocol that statically routes everything to its first neighbor.
//! struct Hotwire;
//! impl RoutingProtocol for Hotwire {
//!     fn name(&self) -> &'static str { "hotwire" }
//!     fn as_any(&self) -> &dyn std::any::Any { self }
//!     fn on_start(&mut self, ctx: &mut netsim::simulator::ProtocolContext<'_>) {
//!         let neighbors = ctx.neighbors();
//!         if let Some(&next) = neighbors.first() {
//!             for d in 0..ctx.num_nodes() {
//!                 let dest = NodeId::new(d as u32);
//!                 if dest != ctx.node() { ctx.install_route(dest, next); }
//!             }
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), netsim::error::BuildError> {
//! let mut b = SimulatorBuilder::new();
//! let n0 = b.add_node();
//! let n1 = b.add_node();
//! b.add_link(n0, n1, LinkConfig::default())?;
//! let mut sim = b.build()?;
//! sim.install_protocol(n0, Box::new(Hotwire))?;
//! sim.install_protocol(n1, Box::new(Hotwire))?;
//! sim.start();
//! sim.schedule_default_packet(SimTime::from_millis(10), n0, n1);
//! sim.run_until(SimTime::from_secs(1));
//! assert_eq!(sim.stats().packets_delivered, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod app;
pub mod dense;
pub mod error;
pub mod event;
pub mod fib;
pub mod ident;
pub mod impairment;
pub mod link;
pub mod packet;
pub mod protocol;
pub mod rng;
pub mod simulator;
pub mod time;
mod timers;
pub mod trace;

pub use app::AppAgent;
pub use dense::{DenseMap, DenseSet};
pub use error::{BuildError, EventBudgetExceeded};
pub use fib::Fib;
pub use ident::{ChannelId, LinkId, NodeId, PacketId};
pub use impairment::Impairment;
pub use link::LinkConfig;
pub use packet::{DropReason, Packet, DEFAULT_TTL};
pub use protocol::{Payload, RoutingProtocol, SharedPayload, TimerId, TimerToken};
pub use rng::SimRng;
pub use simulator::{AppContext, ForwardingPath, ProtocolContext, SimStats, Simulator, SimulatorBuilder};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceConfig, TraceEvent};
