//! The simulation engine: world assembly, the event loop, the data plane
//! and the protocol context.

use std::sync::Arc;

use crate::app::AppAgent;
use crate::error::{BuildError, EventBudgetExceeded};
use crate::event::{EventKind, EventQueue, FreshProtocol};
use crate::fib::Fib;
use crate::ident::{ChannelId, LinkId, NodeId, PacketId};
use crate::impairment::{Impairment, PPM_SCALE};
use crate::link::{Channel, ControlFrame, EnqueueOutcome, Frame, LinkConfig};
use crate::packet::{DropReason, Packet, DEFAULT_TTL};
use crate::protocol::{RoutingProtocol, SharedPayload, TimerId, TimerToken};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::timers::{TimerEntry, TimerSlab, TimerTarget};
use crate::trace::{Trace, TraceConfig, TraceEvent};

/// A router in the simulated network.
#[derive(Debug)]
struct Node {
    /// Neighbor node, outgoing channel toward it, the undirected link, and
    /// this node's *perceived* state of that link (updates lag physical
    /// state by the detection delay).
    adjacency: Vec<Adjacency>,
    fib: Fib,
}

#[derive(Debug, Clone, Copy)]
struct Adjacency {
    neighbor: NodeId,
    out_channel: ChannelId,
    link: LinkId,
    cost: u32,
    perceived_up: bool,
}

/// An undirected link: two channels plus bookkeeping.
#[derive(Debug, Clone, Copy)]
struct LinkInfo {
    a: NodeId,
    b: NodeId,
    ab: ChannelId,
    ba: ChannelId,
    config: LinkConfig,
    up: bool,
}

/// Aggregate counters updated online (cheap, always on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events processed by the engine.
    pub events_processed: u64,
    /// Data packets injected by traffic sources.
    pub packets_injected: u64,
    /// Data packets delivered to their destination.
    pub packets_delivered: u64,
    /// Data packets dropped (all causes).
    pub packets_dropped: u64,
    /// Control messages offered to links.
    pub control_messages_sent: u64,
    /// Control bytes offered to links.
    pub control_bytes_sent: u64,
    /// Control messages lost to link failure or queue overflow.
    pub control_messages_lost: u64,
    /// Frames (data or datagram control) lost to stochastic impairment.
    pub frames_impaired: u64,
    /// Retransmissions of reliable control frames forced by impairment
    /// loss (each shows up as extra delivery delay, never as a drop).
    pub control_retransmits: u64,
    /// Peak number of simultaneously pending events in the calendar.
    pub queue_high_water: u64,
    /// Control sends whose payload `Arc` was already shared with another
    /// handle at send time — each one is a deep payload clone the old
    /// `Box<dyn Payload>` fan-out would have performed.
    pub control_payloads_shared: u64,
}

/// Result of walking the FIBs from a source toward a destination.
///
/// Used by experiment runners to find the live forwarding path (to pick a
/// link to fail) and by metrics to track transient paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForwardingPath {
    /// A loop-free path `src..=dst` exists right now.
    Complete(Vec<NodeId>),
    /// Walking the FIBs revisited a node; the walk up to (and including)
    /// the repeated node is returned.
    Loop(Vec<NodeId>),
    /// Some router on the walk had no FIB entry; the partial walk is
    /// returned.
    Broken(Vec<NodeId>),
}

impl ForwardingPath {
    /// The node sequence regardless of outcome.
    #[must_use]
    pub fn nodes(&self) -> &[NodeId] {
        match self {
            ForwardingPath::Complete(p) | ForwardingPath::Loop(p) | ForwardingPath::Broken(p) => p,
        }
    }

    /// Returns `true` for a complete loop-free path.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        matches!(self, ForwardingPath::Complete(_))
    }
}

/// Builds a [`Simulator`].
///
/// # Examples
///
/// ```
/// use netsim::simulator::SimulatorBuilder;
/// use netsim::link::LinkConfig;
///
/// let mut b = SimulatorBuilder::new();
/// let n0 = b.add_node();
/// let n1 = b.add_node();
/// b.add_link(n0, n1, LinkConfig::default())?;
/// let sim = b.build()?;
/// assert_eq!(sim.num_nodes(), 2);
/// # Ok::<(), netsim::error::BuildError>(())
/// ```
#[derive(Debug)]
pub struct SimulatorBuilder {
    num_nodes: u32,
    links: Vec<(NodeId, NodeId, LinkConfig)>,
    seed: u64,
    trace_config: TraceConfig,
}

impl Default for SimulatorBuilder {
    fn default() -> Self {
        SimulatorBuilder::new()
    }
}

impl SimulatorBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        SimulatorBuilder {
            num_nodes: 0,
            links: Vec::new(),
            seed: 0,
            trace_config: TraceConfig::default(),
        }
    }

    /// Adds a router and returns its identifier.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.num_nodes);
        self.num_nodes += 1;
        id
    }

    /// Adds `count` routers, returning their identifiers.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Adds an undirected link between `a` and `b`.
    ///
    /// # Errors
    ///
    /// Returns an error for self-loops, unknown endpoints or duplicates.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        config: LinkConfig,
    ) -> Result<LinkId, BuildError> {
        if a == b {
            return Err(BuildError::SelfLoop(a));
        }
        for &n in &[a, b] {
            if n.index() >= self.num_nodes as usize {
                return Err(BuildError::UnknownNode(n));
            }
        }
        if self
            .links
            .iter()
            .any(|&(x, y, _)| (x, y) == (a, b) || (x, y) == (b, a))
        {
            return Err(BuildError::DuplicateLink(a, b));
        }
        let id = LinkId::new(self.links.len() as u32);
        self.links.push((a, b, config));
        Ok(id)
    }

    /// Sets the RNG seed for the run.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Configures trace verbosity.
    pub fn trace_config(&mut self, config: TraceConfig) -> &mut Self {
        self.trace_config = config;
        self
    }

    /// Assembles the simulator.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::EmptyNetwork`] if no node was added.
    pub fn build(self) -> Result<Simulator, BuildError> {
        if self.num_nodes == 0 {
            return Err(BuildError::EmptyNetwork);
        }
        let n = self.num_nodes as usize;
        let mut nodes: Vec<Node> = (0..n)
            .map(|_| Node {
                adjacency: Vec::new(),
                fib: Fib::new(n),
            })
            .collect();
        let mut channels = Vec::with_capacity(self.links.len() * 2);
        let mut links = Vec::with_capacity(self.links.len());
        for (i, &(a, b, config)) in self.links.iter().enumerate() {
            let link = LinkId::new(i as u32);
            let ab = ChannelId::new(channels.len() as u32);
            channels.push(Channel::new(a, b, config));
            let ba = ChannelId::new(channels.len() as u32);
            channels.push(Channel::new(b, a, config));
            links.push(LinkInfo {
                a,
                b,
                ab,
                ba,
                config,
                up: true,
            });
            nodes[a.index()].adjacency.push(Adjacency {
                neighbor: b,
                out_channel: ab,
                link,
                cost: config.cost,
                perceived_up: true,
            });
            nodes[b.index()].adjacency.push(Adjacency {
                neighbor: a,
                out_channel: ba,
                link,
                cost: config.cost,
                perceived_up: true,
            });
        }
        Ok(Simulator {
            nodes,
            channels,
            links,
            protocols: (0..n).map(|_| None).collect(),
            apps: (0..n).map(|_| None).collect(),
            queue: EventQueue::new(),
            timers: TimerSlab::new(),
            next_packet: 0,
            rng: SimRng::seed_from(self.seed),
            // A dedicated stream for impairment decisions, seeded
            // independently of the main stream: enabling or disabling an
            // impairment never perturbs protocol/traffic randomness.
            impairment_rng: SimRng::seed_from(self.seed ^ 0x1a7e_5eed_0f00_cafe),
            trace: Trace::new(),
            trace_config: self.trace_config,
            stats: SimStats::default(),
            started: false,
            recorder: None,
        })
    }
}

/// The assembled network plus its event loop.
pub struct Simulator {
    nodes: Vec<Node>,
    channels: Vec<Channel>,
    links: Vec<LinkInfo>,
    protocols: Vec<Option<Box<dyn RoutingProtocol>>>,
    apps: Vec<Option<Box<dyn AppAgent>>>,
    queue: EventQueue,
    timers: TimerSlab,
    next_packet: u64,
    rng: SimRng,
    impairment_rng: SimRng,
    trace: Trace,
    trace_config: TraceConfig,
    stats: SimStats,
    started: bool,
    /// Optional span recorder: engine phases are measured against it when
    /// attached, and every check below is a branch on `Option::is_some`,
    /// so unobserved runs pay (almost) nothing.
    recorder: Option<Box<obs::span::Recorder>>,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("now", &self.now())
            .field("pending_events", &self.queue.len())
            .finish()
    }
}

impl Simulator {
    /// Number of routers.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of undirected links.
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Engine counters.
    #[must_use]
    pub fn stats(&self) -> SimStats {
        let mut stats = self.stats;
        stats.queue_high_water = self.queue.high_water();
        stats
    }

    /// Attaches a span recorder. Engine activity from here on is measured
    /// against it: each processed event opens an
    /// [`obs::span::EVENT_DISPATCH`] span at its simulated timestamp, with
    /// nested [`obs::span::PROTOCOL_PROCESSING`] and
    /// [`obs::span::TRACE_RECORDING`] spans inside. With the recorder's
    /// default manual clock the recording is a deterministic function of
    /// the run; an external (wall-clock) recorder turns the same spans
    /// into a profile.
    pub fn set_recorder(&mut self, recorder: Box<obs::span::Recorder>) {
        self.recorder = Some(recorder);
    }

    /// Detaches and returns the recorder, if one was attached.
    pub fn take_recorder(&mut self) -> Option<Box<obs::span::Recorder>> {
        self.recorder.take()
    }

    /// Mutable access to the attached recorder (for callers recording
    /// their own counters alongside engine spans).
    pub fn recorder_mut(&mut self) -> Option<&mut obs::span::Recorder> {
        self.recorder.as_deref_mut()
    }

    /// The trace recorded so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the simulator, returning its trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Installs an application agent on `node`.
    ///
    /// If the simulation is already running, the agent's `on_start` fires
    /// immediately — agents can join mid-run (e.g. a transport flow that
    /// begins after routing warm-up).
    ///
    /// # Errors
    ///
    /// Returns an error if the node does not exist.
    pub fn install_app(
        &mut self,
        node: NodeId,
        agent: Box<dyn AppAgent>,
    ) -> Result<(), BuildError> {
        let slot = self
            .apps
            .get_mut(node.index())
            .ok_or(BuildError::NoSuchNode(node))?;
        *slot = Some(agent);
        if self.started {
            self.dispatch_app(node, |app, ctx| app.on_start(ctx));
        }
        Ok(())
    }

    /// Removes and returns the application agent of `node` (after a run,
    /// to read its collected statistics).
    pub fn take_app(&mut self, node: NodeId) -> Option<Box<dyn AppAgent>> {
        self.apps.get_mut(node.index())?.take()
    }

    /// Read access to the protocol instance on `node` (forensics: downcast
    /// via [`RoutingProtocol::as_any`]).
    #[must_use]
    pub fn protocol(&self, node: NodeId) -> Option<&dyn RoutingProtocol> {
        self.protocols.get(node.index())?.as_deref()
    }

    /// Installs a protocol instance on `node`.
    ///
    /// # Errors
    ///
    /// Returns an error if the node does not exist.
    pub fn install_protocol(
        &mut self,
        node: NodeId,
        protocol: Box<dyn RoutingProtocol>,
    ) -> Result<(), BuildError> {
        let slot = self
            .protocols
            .get_mut(node.index())
            .ok_or(BuildError::NoSuchNode(node))?;
        *slot = Some(protocol);
        Ok(())
    }

    /// The neighbors of `node` in insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    #[must_use]
    pub fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        self.nodes[node.index()]
            .adjacency
            .iter()
            .map(|a| a.neighbor)
            .collect()
    }

    /// The undirected link between `a` and `b`, if one exists.
    #[must_use]
    pub fn link_between(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.nodes.get(a.index())?.adjacency.iter().find_map(|adj| {
            (adj.neighbor == b).then_some(adj.link)
        })
    }

    /// The two endpoints of `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` does not exist.
    #[must_use]
    pub fn link_endpoints(&self, link: LinkId) -> (NodeId, NodeId) {
        let info = self.links[link.index()];
        (info.a, info.b)
    }

    /// Read access to a node's FIB.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist.
    #[must_use]
    pub fn fib(&self, node: NodeId) -> &Fib {
        &self.nodes[node.index()].fib
    }

    /// Walks the FIBs from `src` toward `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either node does not exist.
    #[must_use]
    pub fn forwarding_path(&self, src: NodeId, dst: NodeId) -> ForwardingPath {
        let mut path = vec![src];
        let mut visited = vec![false; self.nodes.len()];
        visited[src.index()] = true;
        let mut at = src;
        while at != dst {
            match self.nodes[at.index()].fib.next_hop(dst) {
                None => return ForwardingPath::Broken(path),
                Some(next) => {
                    path.push(next);
                    if visited[next.index()] {
                        return ForwardingPath::Loop(path);
                    }
                    visited[next.index()] = true;
                    at = next;
                }
            }
        }
        ForwardingPath::Complete(path)
    }

    /// Starts all protocols (in node-id order).
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) {
        assert!(!self.started, "Simulator::start called twice");
        self.started = true;
        for i in 0..self.nodes.len() {
            self.dispatch(NodeId::new(i as u32), |proto, ctx| proto.on_start(ctx));
        }
        for i in 0..self.nodes.len() {
            self.dispatch_app(NodeId::new(i as u32), |app, ctx| app.on_start(ctx));
        }
    }

    /// Schedules a data packet injection at `at`.
    ///
    /// Returns the packet id for trace correlation.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past or either node is unknown.
    pub fn schedule_packet(
        &mut self,
        at: SimTime,
        src: NodeId,
        dst: NodeId,
        size_bytes: u32,
        ttl: u8,
    ) -> PacketId {
        assert!(src.index() < self.nodes.len(), "unknown source {src}");
        assert!(dst.index() < self.nodes.len(), "unknown destination {dst}");
        let id = PacketId::new(self.next_packet);
        self.next_packet += 1;
        let packet = Packet::new(id, src, dst, at, size_bytes).with_ttl(ttl);
        self.queue.schedule(at, EventKind::InjectPacket { packet });
        id
    }

    /// Convenience: schedules a packet with the study defaults
    /// (1000 bytes, TTL 127).
    pub fn schedule_default_packet(&mut self, at: SimTime, src: NodeId, dst: NodeId) -> PacketId {
        self.schedule_packet(at, src, dst, 1000, DEFAULT_TTL)
    }

    /// Schedules a physical failure of `link` at `at`.
    ///
    /// # Errors
    ///
    /// Returns an error if the link does not exist.
    pub fn schedule_link_failure(&mut self, at: SimTime, link: LinkId) -> Result<(), BuildError> {
        if link.index() >= self.links.len() {
            return Err(BuildError::NoSuchLink(link));
        }
        self.queue.schedule(at, EventKind::LinkFail { link });
        Ok(())
    }

    /// Schedules a physical recovery of `link` at `at`.
    ///
    /// # Errors
    ///
    /// Returns an error if the link does not exist.
    pub fn schedule_link_recovery(&mut self, at: SimTime, link: LinkId) -> Result<(), BuildError> {
        if link.index() >= self.links.len() {
            return Err(BuildError::NoSuchLink(link));
        }
        self.queue.schedule(at, EventKind::LinkRecover { link });
        Ok(())
    }

    /// Schedules a change of `link`'s impairment at `at` (both directions).
    ///
    /// Used to model lossy periods: schedule a non-trivial impairment at
    /// the onset and [`Impairment::NONE`] at the end.
    ///
    /// # Errors
    ///
    /// Returns an error if the link does not exist.
    pub fn schedule_link_impairment(
        &mut self,
        at: SimTime,
        link: LinkId,
        impairment: Impairment,
    ) -> Result<(), BuildError> {
        if link.index() >= self.links.len() {
            return Err(BuildError::NoSuchLink(link));
        }
        self.queue
            .schedule(at, EventKind::SetImpairment { link, impairment });
        Ok(())
    }

    /// Immediately changes `link`'s impairment (both directions).
    ///
    /// # Errors
    ///
    /// Returns an error if the link does not exist.
    pub fn set_link_impairment(
        &mut self,
        link: LinkId,
        impairment: Impairment,
    ) -> Result<(), BuildError> {
        if link.index() >= self.links.len() {
            return Err(BuildError::NoSuchLink(link));
        }
        self.apply_impairment(link, impairment);
        Ok(())
    }

    /// Schedules a crash-with-restart of `node`: at `at` every attached
    /// link physically fails (the node falls silent), and after `down` the
    /// links recover while the node reboots with *cold* routing state — an
    /// empty FIB, no pending protocol timers, and `fresh` replacing the
    /// crashed protocol instance.
    ///
    /// Neighbors experience the crash exactly like a set of link failures:
    /// detection lags by each link's `detection_delay`.
    ///
    /// # Errors
    ///
    /// Returns an error if the node does not exist.
    pub fn schedule_node_crash_restart(
        &mut self,
        at: SimTime,
        node: NodeId,
        down: SimDuration,
        fresh: Box<dyn RoutingProtocol>,
    ) -> Result<(), BuildError> {
        if node.index() >= self.nodes.len() {
            return Err(BuildError::NoSuchNode(node));
        }
        let links: Vec<LinkId> = self.nodes[node.index()]
            .adjacency
            .iter()
            .map(|a| a.link)
            .collect();
        for link in links {
            self.queue.schedule(at, EventKind::LinkFail { link });
            self.queue
                .schedule(at + down, EventKind::LinkRecover { link });
        }
        self.queue.schedule(
            at + down,
            EventKind::NodeRestart {
                node,
                protocol: FreshProtocol(fresh),
            },
        );
        Ok(())
    }

    /// Runs the event loop until the calendar is empty or the next event is
    /// after `until`, then advances the clock to `until` so follow-up
    /// interactions (installing agents, scheduling traffic) happen at the
    /// window boundary.
    pub fn run_until(&mut self, until: SimTime) {
        assert!(self.started, "call Simulator::start before run_until");
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            let Some((t, kind)) = self.queue.pop() else {
                break;
            };
            self.stats.events_processed += 1;
            self.obs_event_start(t);
            self.handle(kind);
            self.obs_exit();
        }
        self.queue.advance_to(until);
    }

    /// Like [`Simulator::run_until`], but guarded by an event-budget
    /// watchdog: once the engine's *lifetime* event count
    /// ([`SimStats::events_processed`]) reaches `max_events`, the loop
    /// stops and reports how far it got. The simulation is left in a
    /// consistent (if unfinished) state and can still be inspected.
    ///
    /// # Errors
    ///
    /// Returns [`EventBudgetExceeded`] if the budget ran out before
    /// `until` was reached.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Simulator::start`].
    pub fn run_until_budgeted(
        &mut self,
        until: SimTime,
        max_events: u64,
    ) -> Result<(), EventBudgetExceeded> {
        assert!(self.started, "call Simulator::start before run_until_budgeted");
        while let Some(t) = self.queue.peek_time() {
            if t > until {
                break;
            }
            if self.stats.events_processed >= max_events {
                return Err(EventBudgetExceeded {
                    events: self.stats.events_processed,
                    at: self.now(),
                });
            }
            let Some((t, kind)) = self.queue.pop() else {
                break;
            };
            self.stats.events_processed += 1;
            self.obs_event_start(t);
            self.handle(kind);
            self.obs_exit();
        }
        self.queue.advance_to(until);
        Ok(())
    }

    /// Runs until the calendar drains completely; the clock stays at the
    /// last processed event.
    pub fn run_to_completion(&mut self) {
        assert!(self.started, "call Simulator::start before run_to_completion");
        while let Some((t, kind)) = self.queue.pop() {
            self.stats.events_processed += 1;
            self.obs_event_start(t);
            self.handle(kind);
            self.obs_exit();
        }
    }

    // ---- internal machinery ----------------------------------------------

    /// Opens the per-event dispatch span, first advancing the recorder's
    /// (manual) clock to the event's simulated timestamp.
    #[inline]
    fn obs_event_start(&mut self, t: SimTime) {
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.set_time(t.as_nanos());
            rec.enter(obs::span::EVENT_DISPATCH);
        }
    }

    /// Opens a span on the attached recorder, if any.
    #[inline]
    fn obs_enter(&mut self, name: &'static str) {
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.enter(name);
        }
    }

    /// Closes the innermost span on the attached recorder, if any.
    #[inline]
    fn obs_exit(&mut self) {
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.exit();
        }
    }

    /// Appends to the trace, measured as a [`obs::span::TRACE_RECORDING`]
    /// span when a recorder is attached.
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        if self.recorder.is_some() {
            self.obs_enter(obs::span::TRACE_RECORDING);
            self.trace.push(event);
            self.obs_exit();
        } else {
            self.trace.push(event);
        }
    }

    fn handle(&mut self, kind: EventKind) {
        match kind {
            EventKind::InjectPacket { packet } => {
                self.stats.packets_injected += 1;
                self.record(TraceEvent::PacketInjected {
                    time: self.now(),
                    id: packet.id,
                    src: packet.src,
                    dst: packet.dst,
                });
                self.forward_packet(packet.src, packet);
            }
            EventKind::FrameSerialized { channel, epoch } => {
                self.on_frame_serialized(channel, epoch);
            }
            EventKind::FrameArrived { channel, frame } => self.on_frame_arrived(channel, frame),
            EventKind::TimerFired { node, timer } => {
                if let Some(entry) = self.timers.take(timer) {
                    debug_assert_eq!(entry.owner, node);
                    match entry.target {
                        TimerTarget::Protocol => {
                            self.dispatch(node, |proto, ctx| proto.on_timer(ctx, entry.token));
                        }
                        TimerTarget::App => {
                            self.dispatch_app(node, |app, ctx| app.on_timer(ctx, entry.token));
                        }
                    }
                }
            }
            EventKind::LinkFail { link } => self.on_link_fail(link),
            EventKind::LinkRecover { link } => self.on_link_recover(link),
            EventKind::LinkStateDetected { node, link, up } => {
                self.on_link_state_detected(node, link, up);
            }
            EventKind::SetImpairment { link, impairment } => {
                self.apply_impairment(link, impairment);
            }
            EventKind::NodeRestart { node, protocol } => {
                self.on_node_restart(node, protocol.0);
            }
        }
    }

    fn apply_impairment(&mut self, link: LinkId, impairment: Impairment) {
        let info = self.links[link.index()];
        self.links[link.index()].config.impairment = impairment;
        self.channels[info.ab.index()].config.impairment = impairment;
        self.channels[info.ba.index()].config.impairment = impairment;
        self.record(TraceEvent::ImpairmentChanged {
            time: self.now(),
            link,
            loss_ppm: impairment.loss_ppm,
        });
    }

    fn on_node_restart(&mut self, node: NodeId, fresh: Box<dyn RoutingProtocol>) {
        let now = self.now();
        // Cold boot: the FIB comes up empty, with every wiped entry
        // recorded so convergence metrics see the forwarding-state loss.
        for dest in 0..self.nodes.len() {
            let dest = NodeId::new(dest as u32);
            let old = self.nodes[node.index()].fib.remove(dest);
            if old.is_some() {
                self.record(TraceEvent::RouteChanged {
                    time: now,
                    node,
                    dest,
                    old,
                    new: None,
                });
            }
        }
        // The crashed instance's pending timers die with it. (Application
        // agents survive a router reboot: transport endpoints live above
        // the forwarding plane.)
        self.timers
            .retain(|e| !(e.owner == node && e.target == TimerTarget::Protocol));
        self.protocols[node.index()] = Some(fresh);
        self.record(TraceEvent::NodeRestarted { time: now, node });
        self.dispatch(node, |proto, ctx| proto.on_start(ctx));
    }

    fn on_frame_serialized(&mut self, channel: ChannelId, epoch: u64) {
        let now = self.now();
        let ch = &mut self.channels[channel.index()];
        if ch.epoch != epoch {
            // The transmission this event belonged to was wiped by a link
            // failure; the frame was already accounted as lost.
            return;
        }
        let Some((frame, next_delay)) = ch.finish_transmit() else {
            // Stale serialization event for an already-idle channel; the
            // epoch guard above makes this unreachable, but an idle
            // channel is simply nothing to deliver, not a crash.
            return;
        };
        if let Some(d) = next_delay {
            let epoch = ch.epoch;
            self.queue
                .schedule(now + d, EventKind::FrameSerialized { channel, epoch });
        }
        let ch = &self.channels[channel.index()];
        if !ch.up {
            self.lose_frame(frame, self.channels[channel.index()].from);
            return;
        }
        let imp = ch.config.impairment;
        let base_arrival = now + ch.config.propagation_delay;
        if imp.is_noop() {
            // The clean-link fast path draws nothing from the impairment
            // RNG, keeping unimpaired runs bit-identical.
            self.queue
                .schedule(base_arrival, EventKind::FrameArrived { channel, frame });
            return;
        }
        self.impaired_departure(channel, frame, base_arrival, imp);
    }

    /// Applies loss, jitter and reordering to a frame leaving the
    /// transmitter of an impaired channel.
    fn impaired_departure(
        &mut self,
        channel: ChannelId,
        frame: Frame,
        base_arrival: SimTime,
        imp: Impairment,
    ) {
        /// Bound on consecutive losses of one reliable frame, so a
        /// 100%-loss link cannot spin the retransmission loop forever.
        const MAX_RETRANSMITS: u32 = 30;

        let reliable = matches!(&frame, Frame::Control(c) if c.reliable);
        let mut extra = SimDuration::ZERO;
        if imp.loss_ppm > 0 {
            if reliable {
                // The reliable session never surrenders the frame to loss:
                // each lost copy costs one retransmission delay, and the
                // retransmitted copy faces the same Bernoulli trial.
                let mut tries = 0;
                while tries < MAX_RETRANSMITS && self.draw_ppm() < imp.loss_ppm {
                    extra += imp.retransmit_delay;
                    self.stats.control_retransmits += 1;
                    tries += 1;
                }
            } else if self.draw_ppm() < imp.loss_ppm {
                self.stats.frames_impaired += 1;
                let from = self.channels[channel.index()].from;
                match frame {
                    Frame::Data(packet) => {
                        self.record_drop(packet, from, DropReason::Impaired);
                    }
                    Frame::Control(_) => self.stats.control_messages_lost += 1,
                }
                return;
            }
        }
        if imp.jitter > SimDuration::ZERO {
            extra += self
                .impairment_rng
                .gen_duration(SimDuration::ZERO, imp.jitter);
        }
        if imp.reorder_ppm > 0 && self.draw_ppm() < imp.reorder_ppm {
            extra += imp.reorder_extra;
        }
        let mut arrival = base_arrival + extra;
        if reliable {
            // Emulated TCP delivers in order: a frame sent after a
            // retransmitted (or jittered) predecessor cannot overtake it.
            let ch = &mut self.channels[channel.index()];
            if arrival < ch.reliable_ready_at {
                arrival = ch.reliable_ready_at;
            }
            ch.reliable_ready_at = arrival;
        }
        self.queue
            .schedule(arrival, EventKind::FrameArrived { channel, frame });
    }

    /// One impairment Bernoulli draw in `[0, PPM_SCALE)`.
    fn draw_ppm(&mut self) -> u32 {
        self.impairment_rng.gen_range_u64(0, u64::from(PPM_SCALE)) as u32
    }

    fn on_frame_arrived(&mut self, channel: ChannelId, frame: Frame) {
        let (up, to, from) = {
            let ch = &self.channels[channel.index()];
            (ch.up, ch.to, ch.from)
        };
        if !up {
            // Failed while the frame was propagating.
            self.lose_frame(frame, from);
            return;
        }
        match frame {
            Frame::Data(packet) => self.forward_packet(to, packet),
            Frame::Control(ctrl) => {
                self.dispatch(to, |proto, ctx| {
                    proto.on_message(ctx, ctrl.from, &*ctrl.payload);
                });
            }
        }
    }

    fn lose_frame(&mut self, frame: Frame, at: NodeId) {
        match frame {
            Frame::Data(packet) => self.record_drop(packet, at, DropReason::LinkDown),
            Frame::Control(_) => self.stats.control_messages_lost += 1,
        }
    }

    fn record_drop(&mut self, packet: Packet, at: NodeId, reason: DropReason) {
        self.stats.packets_dropped += 1;
        self.record(TraceEvent::PacketDropped {
            time: self.now(),
            id: packet.id,
            node: at,
            reason,
            sent_at: packet.sent_at,
        });
    }

    /// Hop-by-hop forwarding: deliver locally, or decrement TTL, look up the
    /// FIB and push the packet onto the outgoing channel.
    fn forward_packet(&mut self, at: NodeId, mut packet: Packet) {
        if packet.dst == at {
            self.stats.packets_delivered += 1;
            self.record(TraceEvent::PacketDelivered {
                time: self.now(),
                id: packet.id,
                node: at,
                hops: packet.hops,
                sent_at: packet.sent_at,
            });
            if self.apps[at.index()].is_some() {
                self.dispatch_app(at, |app, ctx| app.on_packet(ctx, &packet));
            }
            return;
        }
        if packet.ttl <= 1 {
            self.record_drop(packet, at, DropReason::TtlExpired);
            return;
        }
        packet.ttl -= 1;
        let Some(next_hop) = self.nodes[at.index()].fib.next_hop(packet.dst) else {
            self.record_drop(packet, at, DropReason::NoRoute);
            return;
        };
        let Some(out) = self.nodes[at.index()]
            .adjacency
            .iter()
            .find(|a| a.neighbor == next_hop)
            .map(|a| a.out_channel)
        else {
            // A protocol installed a next hop that is not a neighbor; treat
            // as no route rather than corrupting the run.
            debug_assert!(false, "FIB at {at} points to non-neighbor {next_hop}");
            self.record_drop(packet, at, DropReason::NoRoute);
            return;
        };
        packet.hops += 1;
        if self.trace_config.record_hops {
            self.record(TraceEvent::PacketForwarded {
                time: self.now(),
                id: packet.id,
                node: at,
                next_hop,
            });
        }
        self.offer_frame(out, Frame::Data(packet), at);
    }

    fn offer_frame(&mut self, channel: ChannelId, frame: Frame, from: NodeId) {
        let now = self.now();
        let epoch = self.channels[channel.index()].epoch;
        match self.channels[channel.index()].offer(frame) {
            EnqueueOutcome::StartTransmit(d) => {
                self.queue
                    .schedule(now + d, EventKind::FrameSerialized { channel, epoch });
            }
            EnqueueOutcome::Queued => {}
            EnqueueOutcome::Dropped(frame) => match frame {
                Frame::Data(packet) => self.record_drop(packet, from, DropReason::QueueOverflow),
                Frame::Control(_) => self.stats.control_messages_lost += 1,
            },
        }
    }

    fn on_link_fail(&mut self, link: LinkId) {
        let now = self.now();
        let info = self.links[link.index()];
        if !info.up {
            return;
        }
        self.links[link.index()].up = false;
        self.record(TraceEvent::LinkFailed {
            time: now,
            link,
            a: info.a,
            b: info.b,
        });
        for ch_id in [info.ab, info.ba] {
            let lost = {
                let ch = &mut self.channels[ch_id.index()];
                ch.up = false;
                ch.clear()
            };
            let from = self.channels[ch_id.index()].from;
            for frame in lost {
                self.lose_frame(frame, from);
            }
        }
        let detect = now + info.config.detection_delay;
        for node in [info.a, info.b] {
            self.queue.schedule(
                detect,
                EventKind::LinkStateDetected {
                    node,
                    link,
                    up: false,
                },
            );
        }
    }

    fn on_link_recover(&mut self, link: LinkId) {
        let now = self.now();
        let info = self.links[link.index()];
        if info.up {
            return;
        }
        self.links[link.index()].up = true;
        self.channels[info.ab.index()].up = true;
        self.channels[info.ba.index()].up = true;
        self.record(TraceEvent::LinkRecovered {
            time: now,
            link,
            a: info.a,
            b: info.b,
        });
        let detect = now + info.config.detection_delay;
        for node in [info.a, info.b] {
            self.queue.schedule(
                detect,
                EventKind::LinkStateDetected {
                    node,
                    link,
                    up: true,
                },
            );
        }
    }

    fn on_link_state_detected(&mut self, node: NodeId, link: LinkId, up: bool) {
        let mut neighbor = None;
        for adj in &mut self.nodes[node.index()].adjacency {
            if adj.link == link {
                adj.perceived_up = up;
                neighbor = Some(adj.neighbor);
                break;
            }
        }
        let Some(neighbor) = neighbor else { return };
        self.record(TraceEvent::LinkStateDetected {
            time: self.now(),
            node,
            neighbor,
            up,
        });
        if up {
            self.dispatch(node, |proto, ctx| proto.on_link_up(ctx, neighbor));
        } else {
            self.dispatch(node, |proto, ctx| proto.on_link_down(ctx, neighbor));
        }
    }

    /// Temporarily removes the node's protocol, runs `f` with a context, and
    /// reinstalls it. This is what lets protocol code mutate the world
    /// without aliasing itself.
    fn dispatch<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn RoutingProtocol, &mut ProtocolContext<'_>),
    {
        let Some(mut proto) = self.protocols[node.index()].take() else {
            return;
        };
        self.obs_enter(obs::span::PROTOCOL_PROCESSING);
        {
            let mut ctx = ProtocolContext { sim: self, node };
            f(proto.as_mut(), &mut ctx);
        }
        self.obs_exit();
        self.protocols[node.index()] = Some(proto);
    }

    /// [`Simulator::dispatch`], for application agents.
    fn dispatch_app<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn AppAgent, &mut AppContext<'_>),
    {
        let Some(mut app) = self.apps[node.index()].take() else {
            return;
        };
        self.obs_enter(obs::span::PROTOCOL_PROCESSING);
        {
            let mut ctx = AppContext { sim: self, node };
            f(app.as_mut(), &mut ctx);
        }
        self.obs_exit();
        self.apps[node.index()] = Some(app);
    }
}

/// The capabilities handed to a protocol event handler.
///
/// Everything a protocol may legitimately observe or do goes through this
/// context: it sees only local state (its own FIB, its own adjacency and
/// *perceived* link states), never the global topology.
pub struct ProtocolContext<'a> {
    sim: &'a mut Simulator,
    node: NodeId,
}

impl std::fmt::Debug for ProtocolContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProtocolContext")
            .field("node", &self.node)
            .field("now", &self.sim.now())
            .finish()
    }
}

impl ProtocolContext<'_> {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The node this protocol instance runs on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Total number of routers (= destinations) in the network.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.sim.num_nodes()
    }

    /// All configured neighbors, regardless of perceived link state.
    #[must_use]
    pub fn neighbors(&self) -> Vec<NodeId> {
        self.sim.neighbors(self.node)
    }

    /// Whether this node currently believes its link to `neighbor` is up.
    #[must_use]
    pub fn neighbor_up(&self, neighbor: NodeId) -> bool {
        self.sim.nodes[self.node.index()]
            .adjacency
            .iter()
            .any(|a| a.neighbor == neighbor && a.perceived_up)
    }

    /// The routing cost of the link to `neighbor`.
    ///
    /// # Panics
    ///
    /// Panics if `neighbor` is not adjacent.
    #[must_use]
    pub fn link_cost(&self, neighbor: NodeId) -> u32 {
        self.sim.nodes[self.node.index()]
            .adjacency
            .iter()
            .find(|a| a.neighbor == neighbor)
            .unwrap_or_else(|| panic!("{} is not a neighbor of {}", neighbor, self.node))
            .cost
    }

    /// Sends a datagram control message (may be lost on failure/overflow).
    ///
    /// The payload is a shared handle: fanning one update out to several
    /// neighbors clones the `Arc`, not the payload.
    pub fn send(&mut self, to: NodeId, payload: SharedPayload) {
        self.send_inner(to, payload, false);
    }

    /// Sends a control message over a reliable in-order session (BGP/TCP
    /// emulation: immune to queue overflow, reset by link failure).
    pub fn send_reliable(&mut self, to: NodeId, payload: SharedPayload) {
        self.send_inner(to, payload, true);
    }

    fn send_inner(&mut self, to: NodeId, payload: SharedPayload, reliable: bool) {
        let out = self.sim.nodes[self.node.index()]
            .adjacency
            .iter()
            .find(|a| a.neighbor == to)
            .map(|a| a.out_channel)
            .unwrap_or_else(|| panic!("{} is not a neighbor of {}", to, self.node));
        let bytes = (payload.size_bytes() + 20) as u32;
        self.sim.stats.control_messages_sent += 1;
        self.sim.stats.control_bytes_sent += u64::from(bytes);
        if Arc::strong_count(&payload) > 1 {
            self.sim.stats.control_payloads_shared += 1;
        }
        if self.sim.trace_config.record_control {
            self.sim.record(TraceEvent::ControlSent {
                time: self.sim.now(),
                from: self.node,
                to,
                bytes,
            });
        }
        let frame = Frame::Control(ControlFrame {
            from: self.node,
            to,
            payload,
            reliable,
        });
        self.sim.offer_frame(out, frame, self.node);
    }

    /// Arms a one-shot timer `after` from now; the token is returned in
    /// [`RoutingProtocol::on_timer`].
    pub fn set_timer(&mut self, after: SimDuration, token: TimerToken) -> TimerId {
        let id = self.sim.timers.insert(TimerEntry {
            owner: self.node,
            token,
            target: TimerTarget::Protocol,
        });
        let at = self.sim.now() + after;
        self.sim.queue.schedule(
            at,
            EventKind::TimerFired {
                node: self.node,
                timer: id,
            },
        );
        id
    }

    /// Cancels a pending timer; cancelling an already-fired timer is a
    /// harmless no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        let _ = self.sim.timers.take(id);
    }

    /// Installs `next_hop` as the FIB entry for `dest`, recording the change.
    pub fn install_route(&mut self, dest: NodeId, next_hop: NodeId) {
        let old = self.sim.nodes[self.node.index()].fib.set(dest, next_hop);
        if old != Some(next_hop) {
            self.sim.record(TraceEvent::RouteChanged {
                time: self.sim.now(),
                node: self.node,
                dest,
                old,
                new: Some(next_hop),
            });
        }
    }

    /// Removes the FIB entry for `dest`, recording the change.
    pub fn remove_route(&mut self, dest: NodeId) {
        let old = self.sim.nodes[self.node.index()].fib.remove(dest);
        if old.is_some() {
            self.sim.record(TraceEvent::RouteChanged {
                time: self.sim.now(),
                node: self.node,
                dest,
                old,
                new: None,
            });
        }
    }

    /// The currently installed next hop for `dest`, if any.
    #[must_use]
    pub fn route(&self, dest: NodeId) -> Option<NodeId> {
        self.sim.nodes[self.node.index()].fib.next_hop(dest)
    }

    /// The run's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.sim.rng
    }
}

/// The capabilities handed to an application agent.
///
/// Agents send *data packets* through the normal forwarding plane — they
/// cannot touch routing state, which keeps the transport/routing layer
/// separation honest.
pub struct AppContext<'a> {
    sim: &'a mut Simulator,
    node: NodeId,
}

impl std::fmt::Debug for AppContext<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppContext")
            .field("node", &self.node)
            .field("now", &self.sim.now())
            .finish()
    }
}

impl AppContext<'_> {
    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The node this agent runs on.
    #[must_use]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends a data packet toward `dst` through the FIB, returning its id.
    pub fn send_data(&mut self, dst: NodeId, size_bytes: u32, ttl: u8, tag: u64) -> PacketId {
        let id = PacketId::new(self.sim.next_packet);
        self.sim.next_packet += 1;
        let packet = Packet::new(id, self.node, dst, self.sim.now(), size_bytes)
            .with_ttl(ttl)
            .with_tag(tag);
        self.sim.stats.packets_injected += 1;
        self.sim.record(TraceEvent::PacketInjected {
            time: self.sim.now(),
            id,
            src: self.node,
            dst,
        });
        self.sim.forward_packet(self.node, packet);
        id
    }

    /// Arms a one-shot timer; the token returns in
    /// [`AppAgent::on_timer`].
    pub fn set_timer(&mut self, after: SimDuration, token: TimerToken) -> TimerId {
        let id = self.sim.timers.insert(TimerEntry {
            owner: self.node,
            token,
            target: TimerTarget::App,
        });
        let at = self.sim.now() + after;
        self.sim.queue.schedule(
            at,
            EventKind::TimerFired {
                node: self.node,
                timer: id,
            },
        );
        id
    }

    /// Cancels a pending timer; harmless if it already fired.
    pub fn cancel_timer(&mut self, id: TimerId) {
        let _ = self.sim.timers.take(id);
    }

    /// The run's deterministic random number generator.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.sim.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forwarding_path_accessors() {
        let nodes = vec![NodeId::new(0), NodeId::new(1)];
        let complete = ForwardingPath::Complete(nodes.clone());
        assert!(complete.is_complete());
        assert_eq!(complete.nodes(), &nodes[..]);
        let broken = ForwardingPath::Broken(nodes.clone());
        assert!(!broken.is_complete());
        assert_eq!(broken.nodes(), &nodes[..]);
        let looped = ForwardingPath::Loop(nodes.clone());
        assert!(!looped.is_complete());
    }

    #[test]
    fn builder_assigns_dense_node_ids() {
        let mut b = SimulatorBuilder::new();
        let ids = b.add_nodes(5);
        assert_eq!(
            ids,
            (0..5).map(NodeId::new).collect::<Vec<_>>()
        );
    }

    #[test]
    fn neighbors_follow_link_insertion_order() {
        let mut b = SimulatorBuilder::new();
        let n = b.add_nodes(4);
        b.add_link(n[0], n[2], LinkConfig::default()).unwrap();
        b.add_link(n[0], n[1], LinkConfig::default()).unwrap();
        b.add_link(n[0], n[3], LinkConfig::default()).unwrap();
        let sim = b.build().unwrap();
        assert_eq!(sim.neighbors(n[0]), vec![n[2], n[1], n[3]]);
        assert_eq!(sim.neighbors(n[1]), vec![n[0]]);
    }

    #[test]
    fn link_lookup_is_symmetric() {
        let mut b = SimulatorBuilder::new();
        let n = b.add_nodes(3);
        let link = b.add_link(n[0], n[1], LinkConfig::default()).unwrap();
        let sim = b.build().unwrap();
        assert_eq!(sim.link_between(n[0], n[1]), Some(link));
        assert_eq!(sim.link_between(n[1], n[0]), Some(link));
        assert_eq!(sim.link_between(n[0], n[2]), None);
        assert_eq!(sim.link_endpoints(link), (n[0], n[1]));
    }

    #[test]
    fn stats_start_at_zero() {
        let mut b = SimulatorBuilder::new();
        b.add_node();
        let sim = b.build().unwrap();
        assert_eq!(sim.stats(), SimStats::default());
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.num_nodes(), 1);
        assert_eq!(sim.num_links(), 0);
    }

    #[test]
    fn scheduling_failures_on_unknown_links_errors() {
        let mut b = SimulatorBuilder::new();
        b.add_node();
        let mut sim = b.build().unwrap();
        let bogus = LinkId::new(9);
        assert!(sim.schedule_link_failure(SimTime::from_secs(1), bogus).is_err());
        assert!(sim.schedule_link_recovery(SimTime::from_secs(1), bogus).is_err());
    }
}
