//! Simulated time.
//!
//! Time is kept as an integer number of nanoseconds since the start of the
//! simulation, which keeps every run bit-for-bit deterministic (no floating
//! point accumulation error). [`SimTime`] is a point on the simulated clock
//! and [`SimDuration`] is a span between two points.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in nanoseconds from simulation start.
///
/// # Examples
///
/// ```
/// use netsim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_secs_f64(), 2.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in nanoseconds.
///
/// # Examples
///
/// ```
/// use netsim::time::SimDuration;
///
/// let d = SimDuration::from_millis(1) * 5;
/// assert_eq!(d, SimDuration::from_micros(5_000));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from whole nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates a time from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates a time from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Returns the raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time in seconds as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration::from_secs_f64: invalid seconds value {secs}"
        );
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Returns the raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in seconds as a float (for reporting only).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` if this is the zero duration.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(40);
        let d = SimDuration::from_millis(1500);
        assert_eq!((t + d).as_nanos(), 41_500_000_000);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_negative_span() {
        let _ = SimTime::from_secs(1).since(SimTime::from_secs(2));
    }

    #[test]
    fn duration_conversions_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(
            SimDuration::from_millis(1),
            SimDuration::from_micros(1000)
        );
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(SimDuration::from_secs_f64(0.25).as_nanos(), 250_000_000);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_secs(30).to_string(), "30.000000s");
    }

    #[test]
    fn ordering_follows_clock() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
    }
}
