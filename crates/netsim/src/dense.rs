//! Dense, node-indexed containers for protocol hot paths.
//!
//! The simulated node space is dense (`NodeId` 0..N assigned by the
//! builder), so per-neighbor and per-destination protocol state never
//! needs an ordered tree: a `Vec` indexed by `NodeId` gives O(1) access
//! with no per-entry allocation and no pointer chasing. [`DenseMap`] and
//! [`DenseSet`] are drop-in replacements for the `BTreeMap<NodeId, V>` /
//! `BTreeSet<NodeId>` they displace: iteration is always in ascending
//! id order, so every send loop and tie-break that used to rely on tree
//! order is byte-identical under the dense representation.
//!
//! Both containers also keep a sorted index of occupied ids, so
//! iteration costs O(occupied) rather than O(id-space) — a map holding a
//! node's 4 neighbors out of 49 ids visits 4 entries, not 49 slots.
//! Maintaining the index costs a binary search on insert/remove of a
//! *new* id, which protocol tables do rarely (link events), while they
//! look up and iterate constantly.

use std::fmt;

use crate::ident::NodeId;

/// A map keyed by [`NodeId`] over a dense id space, stored as a slot
/// vector.
///
/// Iteration order is ascending node id — the same order a
/// `BTreeMap<NodeId, V>` yields — which is what keeps deterministic
/// traces byte-identical when protocol tables migrate to this type.
///
/// # Examples
///
/// ```
/// use netsim::dense::DenseMap;
/// use netsim::ident::NodeId;
///
/// let mut m: DenseMap<&str> = DenseMap::new();
/// m.insert(NodeId::new(3), "c");
/// m.insert(NodeId::new(1), "a");
/// let keys: Vec<NodeId> = m.keys().collect();
/// assert_eq!(keys, vec![NodeId::new(1), NodeId::new(3)]);
/// assert_eq!(m.get(NodeId::new(1)), Some(&"a"));
/// ```
#[derive(Clone)]
pub struct DenseMap<V> {
    slots: Vec<Option<V>>,
    /// Sorted indices of occupied slots (the iteration order).
    keys: Vec<u32>,
}

impl<V> Default for DenseMap<V> {
    fn default() -> Self {
        DenseMap::new()
    }
}

impl<V> DenseMap<V> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        DenseMap {
            slots: Vec::new(),
            keys: Vec::new(),
        }
    }

    /// An empty map with room for ids `0..n` without reallocation.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        DenseMap {
            slots: Vec::with_capacity(n),
            keys: Vec::new(),
        }
    }

    /// Number of occupied entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no entry is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Marks `ix` occupied in the sorted key index.
    fn index_insert(&mut self, ix: usize) {
        let ix = ix as u32;
        if let Err(pos) = self.keys.binary_search(&ix) {
            self.keys.insert(pos, ix);
        }
    }

    /// Inserts or replaces the value for `id`, returning the old value.
    pub fn insert(&mut self, id: NodeId, value: V) -> Option<V> {
        let ix = id.index();
        if ix >= self.slots.len() {
            self.slots.resize_with(ix + 1, || None);
        }
        let old = self.slots[ix].replace(value);
        if old.is_none() {
            self.index_insert(ix);
        }
        old
    }

    /// The value for `id`, if present.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<&V> {
        self.slots.get(id.index())?.as_ref()
    }

    /// Mutable access to the value for `id`, if present.
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut V> {
        self.slots.get_mut(id.index())?.as_mut()
    }

    /// Mutable access to the value for `id`, inserting `default()` first
    /// when the slot is vacant (the `entry(..).or_insert_with(..)` idiom).
    pub fn get_or_insert_with(&mut self, id: NodeId, default: impl FnOnce() -> V) -> &mut V {
        let ix = id.index();
        if ix >= self.slots.len() {
            self.slots.resize_with(ix + 1, || None);
        }
        if self.slots[ix].is_none() {
            self.slots[ix] = Some(default());
            self.index_insert(ix);
        }
        self.slots[ix].as_mut().expect("slot populated above")
    }

    /// Removes and returns the value for `id`.
    pub fn remove(&mut self, id: NodeId) -> Option<V> {
        let ix = id.index();
        let old = self.slots.get_mut(ix)?.take();
        if old.is_some() {
            if let Ok(pos) = self.keys.binary_search(&(ix as u32)) {
                self.keys.remove(pos);
            }
        }
        old
    }

    /// Whether `id` has a value.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.get(id).is_some()
    }

    /// Drops every entry, keeping the allocation.
    pub fn clear(&mut self) {
        for &ix in &self.keys {
            self.slots[ix as usize] = None;
        }
        self.keys.clear();
    }

    /// Keeps only the entries for which `keep` returns `true`, visiting
    /// them in ascending id order.
    pub fn retain(&mut self, mut keep: impl FnMut(NodeId, &mut V) -> bool) {
        let slots = &mut self.slots;
        self.keys.retain(|&ix| {
            let slot = &mut slots[ix as usize];
            let kept = slot
                .as_mut()
                .is_some_and(|value| keep(NodeId::new(ix), value));
            if !kept {
                *slot = None;
            }
            kept
        });
    }

    /// Iterates `(id, &value)` pairs in ascending id order — O(occupied),
    /// not O(id-space): only the occupied-key index is walked.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &V)> {
        self.keys.iter().filter_map(|&ix| {
            self.slots[ix as usize]
                .as_ref()
                .map(|v| (NodeId::new(ix), v))
        })
    }

    /// Iterates `(id, &mut value)` pairs in ascending id order.
    ///
    /// Scans the slot vector (O(id-space)): handing out disjoint `&mut`
    /// borrows through the key index would need unsafe slot splitting,
    /// and no caller is hot enough to warrant it.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut V)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(ix, slot)| slot.as_mut().map(|v| (NodeId::new(ix as u32), v)))
    }

    /// Iterates occupied ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Iterates values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }
}

impl<V: fmt::Debug> fmt::Debug for DenseMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<V: PartialEq> PartialEq for DenseMap<V> {
    fn eq(&self, other: &Self) -> bool {
        // Logical equality: trailing vacant slots left by removals must
        // not distinguish two maps with the same entries.
        self.keys == other.keys && self.iter().eq(other.iter())
    }
}

impl<V: Eq> Eq for DenseMap<V> {}

impl<V> FromIterator<(NodeId, V)> for DenseMap<V> {
    fn from_iter<I: IntoIterator<Item = (NodeId, V)>>(iter: I) -> Self {
        let mut map = DenseMap::new();
        for (id, value) in iter {
            map.insert(id, value);
        }
        map
    }
}

/// A set of [`NodeId`]s over a dense id space, stored as a bit-ish
/// vector. Iteration is in ascending id order, matching
/// `BTreeSet<NodeId>`.
#[derive(Clone, Default)]
pub struct DenseSet {
    bits: Vec<bool>,
    /// Sorted member ids (the iteration order).
    keys: Vec<u32>,
}

impl DenseSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        DenseSet::default()
    }

    /// Number of members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Adds `id`; returns `true` if it was newly inserted.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let ix = id.index();
        if ix >= self.bits.len() {
            self.bits.resize(ix + 1, false);
        }
        let fresh = !self.bits[ix];
        self.bits[ix] = true;
        if fresh {
            if let Err(pos) = self.keys.binary_search(&(ix as u32)) {
                self.keys.insert(pos, ix as u32);
            }
        }
        fresh
    }

    /// Removes `id`; returns `true` if it was a member.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let Some(bit) = self.bits.get_mut(id.index()) else {
            return false;
        };
        let was = *bit;
        *bit = false;
        if was {
            if let Ok(pos) = self.keys.binary_search(&(id.index() as u32)) {
                self.keys.remove(pos);
            }
        }
        was
    }

    /// Whether `id` is a member.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.bits.get(id.index()).copied().unwrap_or(false)
    }

    /// Drops every member, keeping the allocation.
    pub fn clear(&mut self) {
        for &ix in &self.keys {
            self.bits[ix as usize] = false;
        }
        self.keys.clear();
    }

    /// Iterates members in ascending id order — O(members), not
    /// O(id-space).
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.keys.iter().map(|&ix| NodeId::new(ix))
    }
}

impl fmt::Debug for DenseSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl PartialEq for DenseSet {
    fn eq(&self, other: &Self) -> bool {
        self.keys == other.keys
    }
}

impl Eq for DenseSet {}

impl FromIterator<NodeId> for DenseSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = DenseSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn map_iterates_in_id_order() {
        let mut m = DenseMap::new();
        m.insert(n(7), 'c');
        m.insert(n(0), 'a');
        m.insert(n(3), 'b');
        let pairs: Vec<_> = m.iter().collect();
        assert_eq!(pairs, vec![(n(0), &'a'), (n(3), &'b'), (n(7), &'c')]);
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn map_insert_remove_round_trip() {
        let mut m = DenseMap::new();
        assert_eq!(m.insert(n(2), 10), None);
        assert_eq!(m.insert(n(2), 11), Some(10));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(n(2)), Some(11));
        assert_eq!(m.remove(n(2)), None);
        assert!(m.is_empty());
        assert_eq!(m.get(n(99)), None);
    }

    #[test]
    fn map_get_or_insert_with_fills_vacant_slots() {
        let mut m: DenseMap<Vec<u32>> = DenseMap::new();
        m.get_or_insert_with(n(4), Vec::new).push(1);
        m.get_or_insert_with(n(4), Vec::new).push(2);
        assert_eq!(m.get(n(4)), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn map_equality_ignores_trailing_vacancies() {
        let mut a = DenseMap::new();
        a.insert(n(1), 5);
        a.insert(n(9), 6);
        a.remove(n(9));
        let mut b = DenseMap::new();
        b.insert(n(1), 5);
        assert_eq!(a, b);
        b.insert(n(2), 7);
        assert_ne!(a, b);
    }

    #[test]
    fn map_retain_visits_in_order() {
        let mut m: DenseMap<u32> = (0..6).map(|i| (n(i), i)).collect();
        let mut seen = Vec::new();
        m.retain(|id, v| {
            seen.push(id);
            *v % 2 == 0
        });
        assert_eq!(seen, (0..6).map(n).collect::<Vec<_>>());
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![n(0), n(2), n(4)]);
    }

    #[test]
    fn set_behaves_like_btreeset() {
        let mut s = DenseSet::new();
        assert!(s.insert(n(5)));
        assert!(!s.insert(n(5)));
        assert!(s.insert(n(1)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![n(1), n(5)]);
        assert!(s.contains(n(1)));
        assert!(!s.contains(n(2)));
        assert!(s.remove(n(1)));
        assert!(!s.remove(n(1)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn set_equality_is_logical() {
        let mut a = DenseSet::new();
        a.insert(n(3));
        a.insert(n(40));
        a.remove(n(40));
        let b: DenseSet = [n(3)].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn map_clear_keeps_nothing() {
        let mut m: DenseMap<u8> = (0..4).map(|i| (n(i), i as u8)).collect();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
    }
}
