//! Identifiers for simulated objects.
//!
//! All identifiers are small dense integers assigned by the
//! [`SimulatorBuilder`](crate::simulator::SimulatorBuilder); they double as
//! indices into the simulator's internal arenas.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a router in the simulated network.
///
/// In this study every node is simultaneously a router and a destination
/// (the paper models one router per autonomous system).
///
/// # Examples
///
/// ```
/// use netsim::ident::NodeId;
///
/// let n = NodeId::new(7);
/// assert_eq!(n.index(), 7);
/// assert_eq!(n.to_string(), "n7");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct NodeId(u32);

/// Identifier of an undirected link (a pair of directed channels).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct LinkId(u32);

/// Identifier of one direction of a link.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct ChannelId(u32);

/// Identifier of a data packet, unique within one simulation run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct PacketId(u64);

macro_rules! impl_id {
    ($ty:ident, $raw:ty, $prefix:literal) => {
        impl $ty {
            /// Creates an identifier from a raw index.
            #[must_use]
            pub const fn new(index: $raw) -> Self {
                $ty(index)
            }

            /// Returns the raw index.
            #[must_use]
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$raw> for $ty {
            fn from(raw: $raw) -> Self {
                $ty(raw)
            }
        }
    };
}

impl_id!(NodeId, u32, "n");
impl_id!(LinkId, u32, "l");
impl_id!(ChannelId, u32, "c");
impl_id!(PacketId, u64, "p");

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_through_index() {
        assert_eq!(NodeId::new(3).index(), 3);
        assert_eq!(LinkId::new(9).index(), 9);
        assert_eq!(ChannelId::new(11).index(), 11);
        assert_eq!(PacketId::new(1 << 40).index(), 1 << 40);
    }

    #[test]
    fn display_prefixes_distinguish_kinds() {
        assert_eq!(NodeId::new(1).to_string(), "n1");
        assert_eq!(LinkId::new(1).to_string(), "l1");
        assert_eq!(ChannelId::new(1).to_string(), "c1");
        assert_eq!(PacketId::new(1).to_string(), "p1");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(PacketId::new(5) > PacketId::new(4));
    }
}
