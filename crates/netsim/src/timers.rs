//! Pending-timer bookkeeping: a generational slot slab.
//!
//! Every protocol message arrival re-arms at least one timer, so timer
//! insert/cancel sits on the hot path. The old `BTreeMap<u64, entry>`
//! allocated a tree node per pending timer and paid a log-time walk per
//! operation; the slab stores entries in recycled `Vec` slots with O(1)
//! arm, cancel and fire. A [`TimerId`] packs the slot index (low 32
//! bits) with a per-slot generation (high 32 bits), so a stale id —
//! a fired event for a cancelled timer whose slot was since reused —
//! never matches the new occupant.

use crate::ident::NodeId;
use crate::protocol::{TimerId, TimerToken};

/// Whether a pending timer belongs to the node's routing protocol or its
/// application agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TimerTarget {
    Protocol,
    App,
}

/// One armed timer.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TimerEntry {
    pub(crate) owner: NodeId,
    pub(crate) token: TimerToken,
    pub(crate) target: TimerTarget,
}

/// Slot-recycling store of armed timers.
#[derive(Debug, Default)]
pub(crate) struct TimerSlab {
    slots: Vec<Option<TimerEntry>>,
    /// Bumped each time a slot is re-armed, invalidating stale ids.
    gens: Vec<u32>,
    free: Vec<u32>,
}

impl TimerSlab {
    pub(crate) fn new() -> Self {
        TimerSlab::default()
    }

    /// Arms a timer, returning its id.
    pub(crate) fn insert(&mut self, entry: TimerEntry) -> TimerId {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = Some(entry);
                self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("timer slab overflow");
                self.slots.push(Some(entry));
                self.gens.push(0);
                slot
            }
        };
        TimerId((u64::from(self.gens[slot as usize]) << 32) | u64::from(slot))
    }

    /// Disarms `id` and returns its entry; `None` when the timer already
    /// fired, was cancelled, or the slot was reused since.
    pub(crate) fn take(&mut self, id: TimerId) -> Option<TimerEntry> {
        let slot = (id.0 & u64::from(u32::MAX)) as usize;
        let gen = (id.0 >> 32) as u32;
        if self.gens.get(slot) != Some(&gen) {
            return None;
        }
        let entry = self.slots.get_mut(slot)?.take()?;
        self.free.push(slot as u32);
        Some(entry)
    }

    /// Disarms every timer for which `keep` returns `false` (node crash:
    /// the dying instance's timers go with it). Visits slots in index
    /// order.
    pub(crate) fn retain(&mut self, mut keep: impl FnMut(&TimerEntry) -> bool) {
        for (ix, slot) in self.slots.iter_mut().enumerate() {
            if let Some(entry) = slot {
                if !keep(entry) {
                    *slot = None;
                    self.free.push(ix as u32);
                }
            }
        }
    }

    /// Number of currently armed timers.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(owner: u32, token: u64) -> TimerEntry {
        TimerEntry {
            owner: NodeId::new(owner),
            token: TimerToken(token),
            target: TimerTarget::Protocol,
        }
    }

    #[test]
    fn arm_fire_round_trip() {
        let mut slab = TimerSlab::new();
        let id = slab.insert(entry(1, 42));
        let fired = slab.take(id).expect("armed timer fires");
        assert_eq!(fired.owner, NodeId::new(1));
        assert_eq!(fired.token, TimerToken(42));
        assert!(slab.take(id).is_none(), "second take is a no-op");
    }

    #[test]
    fn slots_are_recycled_without_id_collisions() {
        let mut slab = TimerSlab::new();
        let a = slab.insert(entry(1, 1));
        assert!(slab.take(a).is_some());
        let b = slab.insert(entry(2, 2));
        assert_ne!(a, b, "recycled slot must carry a new generation");
        // The stale id cannot cancel the slot's new occupant.
        assert!(slab.take(a).is_none());
        assert_eq!(slab.take(b).expect("b armed").owner, NodeId::new(2));
        assert_eq!(slab.len(), 0);
    }

    #[test]
    fn retain_disarms_matching_timers() {
        let mut slab = TimerSlab::new();
        let a = slab.insert(entry(1, 1));
        let b = slab.insert(entry(2, 2));
        slab.retain(|e| e.owner != NodeId::new(1));
        assert!(slab.take(a).is_none());
        assert!(slab.take(b).is_some());
    }

    #[test]
    fn high_slot_churn_stays_compact() {
        let mut slab = TimerSlab::new();
        for i in 0..1000 {
            let id = slab.insert(entry(0, i));
            assert!(slab.take(id).is_some());
        }
        assert_eq!(slab.slots.len(), 1, "one slot recycled a thousand times");
    }
}
