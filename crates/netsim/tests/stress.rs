//! Stress tests: random topologies, random failure/recovery schedules,
//! random traffic — the engine must stay conservative and deterministic
//! through arbitrary event interleavings.

use netsim::ident::NodeId;
use netsim::link::LinkConfig;
use netsim::protocol::RoutingProtocol;
use netsim::rng::SimRng;
use netsim::simulator::{ProtocolContext, Simulator, SimulatorBuilder};
use netsim::time::SimTime;
use proptest::prelude::*;

/// A protocol that always routes via its lowest-id *perceived-up*
/// neighbor — deliberately wrong as routing, but it exercises FIB churn on
/// every link event.
struct LowestUp;

impl LowestUp {
    fn refresh(ctx: &mut ProtocolContext<'_>) {
        let mut ups: Vec<NodeId> = ctx
            .neighbors()
            .into_iter()
            .filter(|&n| ctx.neighbor_up(n))
            .collect();
        ups.sort_unstable();
        match ups.first() {
            Some(&next) => {
                for d in 0..ctx.num_nodes() as u32 {
                    let dest = NodeId::new(d);
                    if dest != ctx.node() {
                        ctx.install_route(dest, next);
                    }
                }
            }
            None => {
                for d in 0..ctx.num_nodes() as u32 {
                    let dest = NodeId::new(d);
                    if dest != ctx.node() {
                        ctx.remove_route(dest);
                    }
                }
            }
        }
    }
}

impl RoutingProtocol for LowestUp {
    fn name(&self) -> &'static str {
        "lowest-up"
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        Self::refresh(ctx);
    }
    fn on_link_down(&mut self, ctx: &mut ProtocolContext<'_>, _n: NodeId) {
        Self::refresh(ctx);
    }
    fn on_link_up(&mut self, ctx: &mut ProtocolContext<'_>, _n: NodeId) {
        Self::refresh(ctx);
    }
}

fn random_world(seed: u64, nodes: usize, extra_links: usize) -> Simulator {
    let mut rng = SimRng::seed_from(seed);
    let mut b = SimulatorBuilder::new();
    let ids = b.add_nodes(nodes);
    // Spanning chain keeps it connected, then random chords.
    for w in ids.windows(2) {
        b.add_link(w[0], w[1], LinkConfig::default()).unwrap();
    }
    for _ in 0..extra_links {
        let a = ids[rng.gen_index(nodes)];
        let c = ids[rng.gen_index(nodes)];
        if a != c {
            let _ = b.add_link(a, c, LinkConfig::default());
        }
    }
    b.seed(seed);
    let mut sim = b.build().unwrap();
    for &n in &ids {
        sim.install_protocol(n, Box::new(LowestUp)).unwrap();
    }
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary interleavings of failures, recoveries and traffic never
    /// panic, never lose accounting, and replay identically.
    #[test]
    fn chaos_is_conservative_and_deterministic(
        seed in 0u64..5_000,
        nodes in 4usize..12,
        extra in 0usize..10,
        toggles in prop::collection::vec((1u64..60_000, 0usize..24), 0..12),
        packets in prop::collection::vec((1u64..60_000, 0usize..12, 0usize..12), 0..40),
    ) {
        let run = || {
            let mut sim = random_world(seed, nodes, extra);
            sim.start();
            let num_links = sim.num_links();
            for &(at_ms, link_ix) in &toggles {
                let link = netsim::ident::LinkId::new((link_ix % num_links) as u32);
                // Alternate fail/recover based on parity of the time; the
                // engine must tolerate redundant transitions.
                if at_ms % 2 == 0 {
                    sim.schedule_link_failure(SimTime::from_millis(at_ms), link).unwrap();
                } else {
                    sim.schedule_link_recovery(SimTime::from_millis(at_ms), link).unwrap();
                }
            }
            for &(at_ms, s, d) in &packets {
                let src = NodeId::new((s % nodes) as u32);
                let dst = NodeId::new((d % nodes) as u32);
                if src != dst {
                    sim.schedule_default_packet(SimTime::from_millis(at_ms), src, dst);
                }
            }
            sim.run_until(SimTime::from_secs(120));
            sim.run_to_completion();
            let stats = sim.stats();
            prop_assert_eq!(
                stats.packets_injected,
                stats.packets_delivered + stats.packets_dropped
            );
            Ok(format!("{stats:?}|{}", sim.trace().len()))
        };
        prop_assert_eq!(run()?, run()?);
    }

    /// Rapid fail/recover cycles on one link leave the channel usable.
    #[test]
    fn flapping_link_ends_usable(seed in 0u64..2_000, cycles in 1u64..12) {
        let mut sim = random_world(seed, 4, 0);
        sim.start();
        let link = netsim::ident::LinkId::new(0);
        for c in 0..cycles {
            let base = 1_000 + c * 400;
            sim.schedule_link_failure(SimTime::from_millis(base), link).unwrap();
            sim.schedule_link_recovery(SimTime::from_millis(base + 200), link).unwrap();
        }
        // Long after the flapping (and its detections) settle, traffic
        // flows over the link again.
        let quiet = 1_000 + cycles * 400 + 1_000;
        sim.schedule_default_packet(
            SimTime::from_millis(quiet),
            NodeId::new(0),
            NodeId::new(1),
        );
        sim.run_to_completion();
        prop_assert_eq!(sim.stats().packets_delivered, 1);
    }
}
