//! End-to-end tests of the application-agent layer.

use netsim::app::AppAgent;
use netsim::ident::NodeId;
use netsim::link::LinkConfig;
use netsim::packet::Packet;
use netsim::protocol::{RoutingProtocol, TimerToken};
use netsim::simulator::{AppContext, ProtocolContext, Simulator, SimulatorBuilder};
use netsim::time::{SimDuration, SimTime};

/// Static next-hop routes along a line toward both ends.
struct LineRoutes {
    nodes: Vec<NodeId>,
    index: usize,
}

impl RoutingProtocol for LineRoutes {
    fn name(&self) -> &'static str {
        "line"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        for (d, &dest) in self.nodes.iter().enumerate() {
            if d == self.index {
                continue;
            }
            let next = if d > self.index {
                self.nodes[self.index + 1]
            } else {
                self.nodes[self.index - 1]
            };
            ctx.install_route(dest, next);
        }
    }
}

fn line_with_routes(k: usize) -> (Simulator, Vec<NodeId>) {
    let mut b = SimulatorBuilder::new();
    let nodes = b.add_nodes(k);
    for w in nodes.windows(2) {
        b.add_link(w[0], w[1], LinkConfig::default()).unwrap();
    }
    let mut sim = b.build().unwrap();
    for (index, &node) in nodes.iter().enumerate() {
        sim.install_protocol(
            node,
            Box::new(LineRoutes {
                nodes: nodes.clone(),
                index,
            }),
        )
        .unwrap();
    }
    (sim, nodes)
}

/// Replies to every received packet with a same-size packet tagged +1.
struct Echo {
    received: Vec<u64>,
}

impl AppAgent for Echo {
    fn name(&self) -> &'static str {
        "echo"
    }

    fn on_packet(&mut self, ctx: &mut AppContext<'_>, packet: &Packet) {
        self.received.push(packet.tag);
        if packet.tag < 100 {
            // Reply once (tags >= 100 are replies).
            ctx.send_data(packet.src, packet.size_bytes, 64, packet.tag + 100);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Sends `count` pings to a peer at start, records replies.
struct Pinger {
    peer: NodeId,
    count: u64,
    replies: Vec<u64>,
}

impl AppAgent for Pinger {
    fn name(&self) -> &'static str {
        "pinger"
    }

    fn on_start(&mut self, ctx: &mut AppContext<'_>) {
        for i in 0..self.count {
            ctx.send_data(self.peer, 500, 64, i);
        }
    }

    fn on_packet(&mut self, _ctx: &mut AppContext<'_>, packet: &Packet) {
        self.replies.push(packet.tag);
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[test]
fn request_reply_round_trip() {
    let (mut sim, nodes) = line_with_routes(4);
    sim.install_app(
        nodes[0],
        Box::new(Pinger {
            peer: nodes[3],
            count: 5,
            replies: Vec::new(),
        }),
    )
    .unwrap();
    sim.install_app(nodes[3], Box::new(Echo { received: Vec::new() })).unwrap();
    sim.start();
    sim.run_to_completion();

    let pinger = sim.take_app(nodes[0]).unwrap();
    let pinger = pinger.as_any().downcast_ref::<Pinger>().unwrap();
    assert_eq!(pinger.replies, vec![100, 101, 102, 103, 104]);

    let echo = sim.take_app(nodes[3]).unwrap();
    let echo = echo.as_any().downcast_ref::<Echo>().unwrap();
    assert_eq!(echo.received, vec![0, 1, 2, 3, 4]);

    // 5 pings + 5 replies, all counted as data packets.
    assert_eq!(sim.stats().packets_injected, 10);
    assert_eq!(sim.stats().packets_delivered, 10);
}

#[test]
fn mid_run_installation_starts_immediately() {
    struct StartStamp {
        at: Option<SimTime>,
    }
    impl AppAgent for StartStamp {
        fn name(&self) -> &'static str {
            "stamp"
        }
        fn on_start(&mut self, ctx: &mut AppContext<'_>) {
            self.at = Some(ctx.now());
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    let (mut sim, nodes) = line_with_routes(2);
    sim.start();
    sim.run_until(SimTime::from_secs(7));
    sim.install_app(nodes[0], Box::new(StartStamp { at: None })).unwrap();
    let agent = sim.take_app(nodes[0]).unwrap();
    let stamp = agent.as_any().downcast_ref::<StartStamp>().unwrap();
    assert_eq!(stamp.at, Some(SimTime::from_secs(7)));
}

#[test]
fn app_timers_are_separate_from_protocol_timers() {
    // A protocol and an app on the same node arm timers with the SAME
    // token; each must receive only its own.
    struct TimerProto {
        fired: u32,
    }
    impl RoutingProtocol for TimerProto {
        fn name(&self) -> &'static str {
            "timer-proto"
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
        fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
            ctx.set_timer(SimDuration::from_secs(1), TimerToken::compose(7, 7));
        }
        fn on_timer(&mut self, _ctx: &mut ProtocolContext<'_>, token: TimerToken) {
            assert_eq!(token, TimerToken::compose(7, 7));
            self.fired += 1;
        }
    }
    struct TimerApp {
        fired: u32,
    }
    impl AppAgent for TimerApp {
        fn name(&self) -> &'static str {
            "timer-app"
        }
        fn on_start(&mut self, ctx: &mut AppContext<'_>) {
            ctx.set_timer(SimDuration::from_secs(2), TimerToken::compose(7, 7));
        }
        fn on_timer(&mut self, _ctx: &mut AppContext<'_>, token: TimerToken) {
            assert_eq!(token, TimerToken::compose(7, 7));
            self.fired += 1;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }

    let mut b = SimulatorBuilder::new();
    let node = b.add_node();
    let mut sim = b.build().unwrap();
    sim.install_protocol(node, Box::new(TimerProto { fired: 0 })).unwrap();
    sim.install_app(node, Box::new(TimerApp { fired: 0 })).unwrap();
    sim.start();
    sim.run_to_completion();

    let proto = sim.protocol(node).unwrap();
    assert_eq!(proto.as_any().downcast_ref::<TimerProto>().unwrap().fired, 1);
    let app = sim.take_app(node).unwrap();
    assert_eq!(app.as_any().downcast_ref::<TimerApp>().unwrap().fired, 1);
}

#[test]
fn app_cancel_timer_prevents_firing() {
    struct CancelApp {
        fired: bool,
    }
    impl AppAgent for CancelApp {
        fn name(&self) -> &'static str {
            "cancel"
        }
        fn on_start(&mut self, ctx: &mut AppContext<'_>) {
            let id = ctx.set_timer(SimDuration::from_secs(1), TimerToken::compose(1, 1));
            ctx.cancel_timer(id);
        }
        fn on_timer(&mut self, _ctx: &mut AppContext<'_>, _token: TimerToken) {
            self.fired = true;
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let mut b = SimulatorBuilder::new();
    let node = b.add_node();
    let mut sim = b.build().unwrap();
    sim.install_app(node, Box::new(CancelApp { fired: false })).unwrap();
    sim.start();
    sim.run_to_completion();
    let app = sim.take_app(node).unwrap();
    assert!(!app.as_any().downcast_ref::<CancelApp>().unwrap().fired);
}

#[test]
fn app_packets_respect_the_forwarding_plane() {
    // An app on a node whose FIB lacks the destination sees its packet
    // dropped NoRoute, not silently teleported.
    struct Blind {
        peer: NodeId,
    }
    impl AppAgent for Blind {
        fn name(&self) -> &'static str {
            "blind"
        }
        fn on_start(&mut self, ctx: &mut AppContext<'_>) {
            ctx.send_data(self.peer, 100, 64, 0);
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let mut b = SimulatorBuilder::new();
    let nodes = b.add_nodes(2);
    b.add_link(nodes[0], nodes[1], LinkConfig::default()).unwrap();
    let mut sim = b.build().unwrap();
    // No routing protocol installed: empty FIBs.
    sim.install_app(nodes[0], Box::new(Blind { peer: nodes[1] })).unwrap();
    sim.start();
    sim.run_to_completion();
    assert_eq!(sim.stats().packets_dropped, 1);
    assert_eq!(sim.stats().packets_delivered, 0);
}
