//! End-to-end tests of the simulation engine using small static-routing
//! protocols.

use netsim::ident::NodeId;
use netsim::link::LinkConfig;
use netsim::packet::DropReason;
use netsim::protocol::{Payload, RoutingProtocol, TimerToken};
use netsim::simulator::{ForwardingPath, ProtocolContext, Simulator, SimulatorBuilder};
use netsim::time::{SimDuration, SimTime};
use netsim::trace::TraceEvent;

/// Routes every destination via a fixed next hop chosen by a routing map
/// provided at construction; removes routes via a neighbor when the link to
/// it goes down.
struct StaticRoutes {
    routes: Vec<(NodeId, NodeId)>,
}

impl RoutingProtocol for StaticRoutes {
    fn name(&self) -> &'static str {
        "static"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        for &(dest, next) in &self.routes {
            ctx.install_route(dest, next);
        }
    }

    fn on_link_down(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        let via: Vec<NodeId> = self
            .routes
            .iter()
            .filter(|&&(_, nh)| nh == neighbor)
            .map(|&(d, _)| d)
            .collect();
        for dest in via {
            ctx.remove_route(dest);
        }
    }
}

/// Builds a line topology n0 - n1 - ... - n{k-1} with static shortest-path
/// routes toward the last node.
fn line(k: usize, config: LinkConfig) -> (Simulator, Vec<NodeId>) {
    let mut b = SimulatorBuilder::new();
    let nodes = b.add_nodes(k);
    for w in nodes.windows(2) {
        b.add_link(w[0], w[1], config).unwrap();
    }
    let mut sim = b.build().unwrap();
    let last = *nodes.last().unwrap();
    for (i, &n) in nodes.iter().enumerate() {
        let mut routes = Vec::new();
        if n != last {
            routes.push((last, nodes[i + 1]));
        }
        if i > 0 {
            routes.push((nodes[0], nodes[i - 1]));
        }
        sim.install_protocol(n, Box::new(StaticRoutes { routes })).unwrap();
    }
    (sim, nodes)
}

fn drops_by_reason(sim: &Simulator, reason: DropReason) -> usize {
    sim.trace()
        .iter()
        .filter(|e| matches!(e, TraceEvent::PacketDropped { reason: r, .. } if *r == reason))
        .count()
}

#[test]
fn packets_cross_a_line_with_correct_latency() {
    let (mut sim, nodes) = line(5, LinkConfig::default());
    sim.start();
    let t0 = SimTime::from_secs(1);
    sim.schedule_default_packet(t0, nodes[0], nodes[4]);
    sim.run_until(SimTime::from_secs(2));
    assert_eq!(sim.stats().packets_delivered, 1);
    let delivered = sim
        .trace()
        .iter()
        .find_map(|e| match e {
            TraceEvent::PacketDelivered { time, hops, .. } => Some((*time, *hops)),
            _ => None,
        })
        .expect("delivery event");
    assert_eq!(delivered.1, 4);
    // 4 hops x (0.8 ms serialization of 1000 B at 10 Mb/s + 1 ms propagation).
    let per_hop = SimDuration::from_micros(800) + SimDuration::from_millis(1);
    assert_eq!(delivered.0, t0 + per_hop * 4);
}

#[test]
fn ttl_expires_in_forwarding_loop() {
    // Two nodes pointing at each other for an unreachable destination.
    let mut b = SimulatorBuilder::new();
    let nodes = b.add_nodes(3);
    b.add_link(nodes[0], nodes[1], LinkConfig::default()).unwrap();
    // nodes[2] is disconnected; n0 and n1 each think the other reaches it.
    let mut sim = b.build().unwrap();
    sim.install_protocol(
        nodes[0],
        Box::new(StaticRoutes {
            routes: vec![(nodes[2], nodes[1])],
        }),
    )
    .unwrap();
    sim.install_protocol(
        nodes[1],
        Box::new(StaticRoutes {
            routes: vec![(nodes[2], nodes[0])],
        }),
    )
    .unwrap();
    sim.start();
    sim.schedule_packet(SimTime::from_millis(1), nodes[0], nodes[2], 1000, 64);
    sim.run_to_completion();
    assert_eq!(drops_by_reason(&sim, DropReason::TtlExpired), 1);
    // The packet bounced until its TTL ran out: 63 forwards recorded.
    let hops = sim
        .trace()
        .iter()
        .filter(|e| matches!(e, TraceEvent::PacketForwarded { .. }))
        .count();
    assert_eq!(hops, 63);
}

#[test]
fn no_route_drop_when_fib_is_empty() {
    let mut b = SimulatorBuilder::new();
    let nodes = b.add_nodes(2);
    b.add_link(nodes[0], nodes[1], LinkConfig::default()).unwrap();
    let mut sim = b.build().unwrap();
    sim.install_protocol(nodes[0], Box::new(StaticRoutes { routes: vec![] }))
        .unwrap();
    sim.install_protocol(nodes[1], Box::new(StaticRoutes { routes: vec![] }))
        .unwrap();
    sim.start();
    sim.schedule_default_packet(SimTime::from_millis(1), nodes[0], nodes[1]);
    sim.run_to_completion();
    assert_eq!(drops_by_reason(&sim, DropReason::NoRoute), 1);
    assert_eq!(sim.stats().packets_delivered, 0);
}

#[test]
fn link_failure_loses_in_flight_packets_until_detected() {
    let config = LinkConfig::default();
    let (mut sim, nodes) = line(2, config);
    sim.start();
    let link = sim.link_between(nodes[0], nodes[1]).unwrap();
    let t_fail = SimTime::from_secs(1);
    sim.schedule_link_failure(t_fail, link).unwrap();
    // One packet before the failure, several during the detection window,
    // one after detection.
    sim.schedule_default_packet(SimTime::from_millis(500), nodes[0], nodes[1]);
    for ms in [1010u64, 1020, 1030, 1040] {
        sim.schedule_default_packet(SimTime::from_millis(ms), nodes[0], nodes[1]);
    }
    sim.schedule_default_packet(SimTime::from_millis(1500), nodes[0], nodes[1]);
    sim.run_to_completion();
    assert_eq!(sim.stats().packets_delivered, 1);
    assert_eq!(drops_by_reason(&sim, DropReason::LinkDown), 4);
    // After 50 ms detection the static protocol removed the route.
    assert_eq!(drops_by_reason(&sim, DropReason::NoRoute), 1);
}

#[test]
fn detection_events_fire_on_both_endpoints() {
    let (mut sim, nodes) = line(2, LinkConfig::default());
    sim.start();
    let link = sim.link_between(nodes[0], nodes[1]).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(1), link).unwrap();
    sim.run_to_completion();
    let detections: Vec<(NodeId, bool)> = sim
        .trace()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::LinkStateDetected { node, up, time, .. } => {
                assert_eq!(*time, SimTime::from_millis(1050));
                Some((*node, *up))
            }
            _ => None,
        })
        .collect();
    assert_eq!(detections, vec![(nodes[0], false), (nodes[1], false)]);
}

#[test]
fn recovery_restores_forwarding() {
    let (mut sim, nodes) = line(2, LinkConfig::default());
    sim.start();
    let link = sim.link_between(nodes[0], nodes[1]).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(1), link).unwrap();
    sim.schedule_link_recovery(SimTime::from_secs(2), link).unwrap();
    sim.schedule_default_packet(SimTime::from_secs(3), nodes[0], nodes[1]);
    sim.run_to_completion();
    // StaticRoutes removed the route on link-down and never reinstalls it,
    // so the packet is dropped NoRoute — but the physical link recovered.
    assert_eq!(drops_by_reason(&sim, DropReason::NoRoute), 1);
    let recovered = sim
        .trace()
        .iter()
        .any(|e| matches!(e, TraceEvent::LinkRecovered { .. }));
    assert!(recovered);
}

#[test]
fn queue_overflow_drops_excess_packets() {
    let config = LinkConfig {
        bandwidth_bps: 10_000, // 0.8 s to serialize one 1000 B packet
        queue_capacity: 2,
        ..LinkConfig::default()
    };
    let (mut sim, nodes) = line(2, config);
    sim.start();
    // 6 packets injected back-to-back: 1 transmitting + 2 queued + 3 dropped.
    for i in 0..6u64 {
        sim.schedule_default_packet(
            SimTime::from_millis(100 + i),
            nodes[0],
            nodes[1],
        );
    }
    sim.run_to_completion();
    assert_eq!(drops_by_reason(&sim, DropReason::QueueOverflow), 3);
    assert_eq!(sim.stats().packets_delivered, 3);
}

#[test]
fn forwarding_path_walks_fibs() {
    let (mut sim, nodes) = line(4, LinkConfig::default());
    sim.start();
    sim.run_until(SimTime::from_millis(1));
    match sim.forwarding_path(nodes[0], nodes[3]) {
        ForwardingPath::Complete(p) => assert_eq!(p, nodes),
        other => panic!("expected complete path, got {other:?}"),
    }
}

#[test]
fn same_seed_reproduces_identical_traces() {
    let run = |seed: u64| {
        let mut b = SimulatorBuilder::new();
        let nodes = b.add_nodes(3);
        b.add_link(nodes[0], nodes[1], LinkConfig::default()).unwrap();
        b.add_link(nodes[1], nodes[2], LinkConfig::default()).unwrap();
        b.seed(seed);
        let mut sim = b.build().unwrap();
        for (i, &n) in nodes.iter().enumerate() {
            let mut routes = Vec::new();
            if i < 2 {
                routes.push((nodes[2], nodes[i + 1]));
            }
            sim.install_protocol(n, Box::new(StaticRoutes { routes })).unwrap();
        }
        sim.start();
        for i in 0..50u64 {
            sim.schedule_default_packet(SimTime::from_millis(10 * i), nodes[0], nodes[2]);
        }
        sim.run_to_completion();
        format!("{:?}", sim.trace().events())
    };
    assert_eq!(run(7), run(7));
    assert_eq!(run(9), run(9));
}

/// A protocol that pings itself with timers and floods a counter message.
#[derive(Default)]
struct TimerEcho {
    fired: Vec<u64>,
}

#[derive(Debug)]
struct Ping(u64);

impl Payload for Ping {
    fn size_bytes(&self) -> usize {
        8
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl RoutingProtocol for TimerEcho {
    fn name(&self) -> &'static str {
        "timer-echo"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        ctx.set_timer(SimDuration::from_secs(1), TimerToken::compose(1, 11));
        let cancelled = ctx.set_timer(SimDuration::from_secs(2), TimerToken::compose(1, 22));
        ctx.cancel_timer(cancelled);
        ctx.set_timer(SimDuration::from_secs(3), TimerToken::compose(1, 33));
    }

    fn on_timer(&mut self, ctx: &mut ProtocolContext<'_>, token: TimerToken) {
        self.fired.push(token.arg());
        for n in ctx.neighbors() {
            ctx.send(n, std::sync::Arc::new(Ping(token.arg())));
        }
    }

    fn on_message(&mut self, _ctx: &mut ProtocolContext<'_>, _from: NodeId, payload: &dyn Payload) {
        let ping = payload.as_any().downcast_ref::<Ping>().expect("ping");
        self.fired.push(1000 + ping.0);
    }
}

#[test]
fn timers_fire_and_cancelled_timers_do_not() {
    let mut b = SimulatorBuilder::new();
    let nodes = b.add_nodes(2);
    b.add_link(nodes[0], nodes[1], LinkConfig::default()).unwrap();
    let mut sim = b.build().unwrap();
    sim.install_protocol(nodes[0], Box::new(TimerEcho::default())).unwrap();
    sim.install_protocol(nodes[1], Box::new(TimerEcho::default())).unwrap();
    sim.start();
    sim.run_to_completion();
    // Each node fired timers 11 and 33 (22 was cancelled) and received the
    // neighbor's two pings.
    assert_eq!(sim.stats().control_messages_sent, 4);
    assert_eq!(sim.stats().control_messages_lost, 0);
}

#[test]
fn control_messages_are_counted_and_sized() {
    let mut b = SimulatorBuilder::new();
    let nodes = b.add_nodes(2);
    b.add_link(nodes[0], nodes[1], LinkConfig::default()).unwrap();
    let mut sim = b.build().unwrap();
    sim.install_protocol(nodes[0], Box::new(TimerEcho::default())).unwrap();
    sim.install_protocol(nodes[1], Box::new(TimerEcho::default())).unwrap();
    sim.start();
    sim.run_to_completion();
    // 4 messages x (8-byte payload + 20-byte header).
    assert_eq!(sim.stats().control_bytes_sent, 4 * 28);
    let traced: u64 = sim
        .trace()
        .iter()
        .filter_map(|e| match e {
            TraceEvent::ControlSent { bytes, .. } => Some(u64::from(*bytes)),
            _ => None,
        })
        .sum();
    assert_eq!(traced, 4 * 28);
}

#[test]
fn builder_rejects_malformed_topologies() {
    use netsim::error::BuildError;
    let mut b = SimulatorBuilder::new();
    let n0 = b.add_node();
    let n1 = b.add_node();
    assert_eq!(
        b.add_link(n0, n0, LinkConfig::default()),
        Err(BuildError::SelfLoop(n0))
    );
    assert_eq!(
        b.add_link(n0, NodeId::new(99), LinkConfig::default()),
        Err(BuildError::UnknownNode(NodeId::new(99)))
    );
    b.add_link(n0, n1, LinkConfig::default()).unwrap();
    assert_eq!(
        b.add_link(n1, n0, LinkConfig::default()),
        Err(BuildError::DuplicateLink(n1, n0))
    );
    assert!(SimulatorBuilder::new().build().is_err());
}

#[test]
fn packet_conservation_holds() {
    // sent = delivered + dropped when the run drains completely.
    let (mut sim, nodes) = line(6, LinkConfig::default());
    sim.start();
    let link = sim.link_between(nodes[2], nodes[3]).unwrap();
    sim.schedule_link_failure(SimTime::from_secs(1), link).unwrap();
    for i in 0..200u64 {
        sim.schedule_default_packet(SimTime::from_millis(900 + i), nodes[0], nodes[5]);
    }
    sim.run_to_completion();
    let s = sim.stats();
    assert_eq!(s.packets_injected, 200);
    assert_eq!(s.packets_injected, s.packets_delivered + s.packets_dropped);
}
