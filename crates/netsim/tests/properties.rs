//! Property-based tests of the simulation engine's invariants.

use netsim::ident::NodeId;
use netsim::link::LinkConfig;
use netsim::protocol::RoutingProtocol;
use netsim::simulator::{ProtocolContext, Simulator, SimulatorBuilder};
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

/// Shortest-path static routes on a ring of `n` nodes.
struct RingRoutes {
    n: u32,
}

impl RoutingProtocol for RingRoutes {
    fn name(&self) -> &'static str {
        "ring"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        let me = ctx.node().index() as u32;
        for dest in 0..self.n {
            if dest == me {
                continue;
            }
            // Clockwise distance vs counterclockwise.
            let cw = (dest + self.n - me) % self.n;
            let ccw = self.n - cw;
            let next = if cw <= ccw {
                (me + 1) % self.n
            } else {
                (me + self.n - 1) % self.n
            };
            ctx.install_route(NodeId::new(dest), NodeId::new(next));
        }
    }

    fn on_link_down(&mut self, ctx: &mut ProtocolContext<'_>, neighbor: NodeId) {
        // Reroute everything previously sent via the dead neighbor the
        // other way around the ring.
        let me = ctx.node();
        let other: Vec<NodeId> = ctx
            .neighbors()
            .into_iter()
            .filter(|&x| x != neighbor)
            .collect();
        let Some(&other) = other.first() else { return };
        for dest in 0..self.n {
            let dest = NodeId::new(dest);
            if dest != me && ctx.route(dest) == Some(neighbor) {
                ctx.install_route(dest, other);
            }
        }
    }
}

fn ring(n: u32, seed: u64) -> (Simulator, Vec<NodeId>) {
    let mut b = SimulatorBuilder::new();
    let nodes = b.add_nodes(n as usize);
    for i in 0..n {
        b.add_link(
            nodes[i as usize],
            nodes[((i + 1) % n) as usize],
            LinkConfig::default(),
        )
        .unwrap();
    }
    b.seed(seed);
    let mut sim = b.build().unwrap();
    for &node in &nodes {
        sim.install_protocol(node, Box::new(RingRoutes { n })).unwrap();
    }
    sim.start();
    (sim, nodes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Injected packets are always conserved: delivered + dropped.
    #[test]
    fn packet_conservation(n in 3u32..12, packets in 1usize..80, seed in 0u64..1000) {
        let (mut sim, nodes) = ring(n, seed);
        for i in 0..packets {
            let src = nodes[i % nodes.len()];
            let dst = nodes[(i * 7 + 3) % nodes.len()];
            if src != dst {
                sim.schedule_default_packet(
                    SimTime::from_millis(10 + i as u64),
                    src,
                    dst,
                );
            }
        }
        sim.run_to_completion();
        let s = sim.stats();
        prop_assert_eq!(s.packets_injected, s.packets_delivered + s.packets_dropped);
        // No failures: nothing should be dropped on a static ring.
        prop_assert_eq!(s.packets_dropped, 0);
    }

    /// Drops are classified by failure phase: packets launched onto a
    /// dead-but-undetected link are `LinkDown`; after detection (the
    /// static protocol removes the route without an alternate), they are
    /// `NoRoute`; packets before the failure are delivered.
    #[test]
    fn drop_classification_tracks_failure_phases(
        n in 4u32..10,
        fail_ix in 0u32..10,
        seed in 0u64..100,
    ) {
        use netsim::packet::DropReason;
        use netsim::trace::TraceEvent;

        let (mut sim, nodes) = ring(n, seed);
        let a = nodes[(fail_ix % n) as usize];
        let b = nodes[((fail_ix + 1) % n) as usize];
        let link = sim.link_between(a, b).unwrap();
        let t_fail = SimTime::from_secs(1);
        sim.schedule_link_failure(t_fail, link).unwrap();

        // One packet well before, one inside the 50 ms detection window,
        // one well after detection. RingRoutes removes dead routes but has
        // no alternate for the adjacent pair... except via the other side,
        // which it *does* install — so use a helper protocol-free check:
        // count per-reason drops for the packets sent on the dead link.
        sim.schedule_default_packet(SimTime::from_millis(500), a, b);
        sim.schedule_default_packet(SimTime::from_millis(1_020), a, b);
        sim.run_to_completion();

        let reasons: Vec<DropReason> = sim
            .trace()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::PacketDropped { reason, .. } => Some(*reason),
                _ => None,
            })
            .collect();
        // The pre-failure packet was delivered directly.
        prop_assert!(sim.stats().packets_delivered >= 1);
        // The in-window packet died on the wire.
        prop_assert_eq!(reasons, vec![DropReason::LinkDown]);
    }

    /// The same seed gives bit-identical stats and traces.
    #[test]
    fn determinism(n in 3u32..10, seed in 0u64..500) {
        let run = |seed: u64| {
            let (mut sim, nodes) = ring(n, seed);
            for i in 0..20u64 {
                sim.schedule_default_packet(
                    SimTime::from_millis(i * 13),
                    nodes[0],
                    nodes[(n / 2) as usize],
                );
            }
            sim.run_to_completion();
            (sim.stats(), format!("{:?}", sim.trace().events().len()))
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Per-hop latency equals serialization + propagation at every size.
    #[test]
    fn latency_model(size in 100u32..10_000) {
        let mut b = SimulatorBuilder::new();
        let nodes = b.add_nodes(2);
        let config = LinkConfig::default();
        b.add_link(nodes[0], nodes[1], config).unwrap();
        let mut sim = b.build().unwrap();
        sim.install_protocol(nodes[0], Box::new(RingRoutes { n: 2 })).unwrap();
        sim.install_protocol(nodes[1], Box::new(RingRoutes { n: 2 })).unwrap();
        sim.start();
        let t0 = SimTime::from_millis(5);
        sim.schedule_packet(t0, nodes[0], nodes[1], size, 64);
        sim.run_to_completion();
        let delivered_at = sim
            .trace()
            .iter()
            .find_map(|e| match e {
                netsim::trace::TraceEvent::PacketDelivered { time, .. } => Some(*time),
                _ => None,
            })
            .expect("delivered");
        let expected = t0
            + config.serialization_delay(size as usize)
            + config.propagation_delay;
        prop_assert_eq!(delivered_at, expected);
    }

    /// TTL bounds the number of forwarding hops exactly.
    #[test]
    fn ttl_bounds_hops(ttl in 2u8..20) {
        // Two-node loop for an unreachable destination.
        let mut b = SimulatorBuilder::new();
        let nodes = b.add_nodes(3);
        b.add_link(nodes[0], nodes[1], LinkConfig::default()).unwrap();
        let mut sim = b.build().unwrap();

        struct Bounce {
            peer: NodeId,
            dest: NodeId,
        }
        impl RoutingProtocol for Bounce {
            fn name(&self) -> &'static str {
                "bounce"
            }

            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
                ctx.install_route(self.dest, self.peer);
            }
        }
        sim.install_protocol(nodes[0], Box::new(Bounce { peer: nodes[1], dest: nodes[2] }))
            .unwrap();
        sim.install_protocol(nodes[1], Box::new(Bounce { peer: nodes[0], dest: nodes[2] }))
            .unwrap();
        sim.start();
        sim.schedule_packet(SimTime::from_millis(1), nodes[0], nodes[2], 500, ttl);
        sim.run_to_completion();
        let hops = sim
            .trace()
            .iter()
            .filter(|e| matches!(e, netsim::trace::TraceEvent::PacketForwarded { .. }))
            .count();
        prop_assert_eq!(hops as u8, ttl - 1);
        prop_assert_eq!(sim.stats().packets_dropped, 1);
    }

    /// Timers fire exactly once, in order, at the requested instants.
    #[test]
    fn timer_ordering(delays in prop::collection::vec(1u64..5000, 1..20)) {
        struct Timers {
            delays: Vec<u64>,
            fired: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
        }
        impl RoutingProtocol for Timers {
            fn name(&self) -> &'static str {
                "timers"
            }

            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
            fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
                for (i, &d) in self.delays.iter().enumerate() {
                    ctx.set_timer(
                        SimDuration::from_millis(d),
                        netsim::protocol::TimerToken::compose(1, i as u64),
                    );
                }
            }
            fn on_timer(
                &mut self,
                ctx: &mut ProtocolContext<'_>,
                _token: netsim::protocol::TimerToken,
            ) {
                self.fired.borrow_mut().push(ctx.now().as_nanos() / 1_000_000);
            }
        }
        let fired = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut b = SimulatorBuilder::new();
        let node = b.add_node();
        let mut sim = b.build().unwrap();
        sim.install_protocol(
            node,
            Box::new(Timers {
                delays: delays.clone(),
                fired: fired.clone(),
            }),
        )
        .unwrap();
        sim.start();
        sim.run_to_completion();
        let mut expected = delays;
        expected.sort_unstable();
        prop_assert_eq!(fired.borrow().clone(), expected);
    }
}

/// A TTL-bounded flooding protocol used to compare the two control-plane
/// fan-out strategies: `share = true` builds one payload `Arc` and clones
/// the handle per neighbor (the pattern the engine's payload-sharing
/// counter tracks); `share = false` deep-copies the payload into a fresh
/// allocation per link. The observable behavior must be identical.
struct Flood {
    share: bool,
}

#[derive(Debug, Clone)]
struct Rumor {
    origin: u32,
    ttl: u8,
}

impl netsim::protocol::Payload for Rumor {
    fn size_bytes(&self) -> usize {
        16
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

impl Flood {
    fn flood(&self, ctx: &mut ProtocolContext<'_>, rumor: Rumor) {
        if self.share {
            let payload: netsim::protocol::SharedPayload = std::sync::Arc::new(rumor);
            for n in ctx.neighbors() {
                ctx.send(n, payload.clone());
            }
        } else {
            for n in ctx.neighbors() {
                ctx.send(n, std::sync::Arc::new(rumor.clone()));
            }
        }
    }
}

impl RoutingProtocol for Flood {
    fn name(&self) -> &'static str {
        "flood"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        let rumor = Rumor {
            origin: ctx.node().index() as u32,
            ttl: 3,
        };
        self.flood(ctx, rumor);
    }

    fn on_message(
        &mut self,
        ctx: &mut ProtocolContext<'_>,
        _from: NodeId,
        payload: &dyn netsim::protocol::Payload,
    ) {
        let rumor = payload.as_any().downcast_ref::<Rumor>().expect("rumor");
        if rumor.ttl > 0 {
            let next = Rumor {
                origin: rumor.origin,
                ttl: rumor.ttl - 1,
            };
            self.flood(ctx, next);
        }
    }

    fn on_link_down(&mut self, ctx: &mut ProtocolContext<'_>, _neighbor: NodeId) {
        let rumor = Rumor {
            origin: 1000 + ctx.node().index() as u32,
            ttl: 2,
        };
        self.flood(ctx, rumor);
    }

    fn on_link_up(&mut self, ctx: &mut ProtocolContext<'_>, _neighbor: NodeId) {
        let rumor = Rumor {
            origin: 2000 + ctx.node().index() as u32,
            ttl: 2,
        };
        self.flood(ctx, rumor);
    }
}

/// Runs a ring of flooding nodes with a mid-run link flap and returns the
/// full trace rendering plus the engine's payload-sharing counter.
fn flood_run(n: u32, seed: u64, fail_ix: u32, share: bool) -> (String, u64) {
    let mut b = SimulatorBuilder::new();
    let nodes = b.add_nodes(n as usize);
    let mut links = Vec::new();
    for i in 0..n {
        links.push(
            b.add_link(
                nodes[i as usize],
                nodes[((i + 1) % n) as usize],
                LinkConfig::default(),
            )
            .unwrap(),
        );
    }
    b.seed(seed);
    let mut sim = b.build().unwrap();
    for &node in &nodes {
        sim.install_protocol(node, Box::new(Flood { share })).unwrap();
    }
    let flapped = links[(fail_ix % n) as usize];
    sim.schedule_link_failure(SimTime::from_secs(2), flapped).unwrap();
    sim.schedule_link_recovery(SimTime::from_secs(4), flapped).unwrap();
    sim.start();
    sim.run_to_completion();
    (
        format!("{:?}", sim.trace().events()),
        sim.stats().control_payloads_shared,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sharing one payload `Arc` across a flood's fan-out vs deep-copying
    /// the payload per link must produce byte-identical trace-event
    /// streams — payload identity is an allocation detail that must never
    /// leak into observable behavior. The sharing counters prove the two
    /// runs really exercised different allocation paths.
    #[test]
    fn arc_fanout_matches_per_link_clone(
        n in 3u32..10,
        seed in 0u64..500,
        fail_ix in 0u32..10,
    ) {
        let (shared_trace, shared_count) = flood_run(n, seed, fail_ix, true);
        let (cloned_trace, cloned_count) = flood_run(n, seed, fail_ix, false);
        prop_assert_eq!(shared_trace, cloned_trace);
        prop_assert!(shared_count > 0, "the sharing path never fired");
        prop_assert_eq!(cloned_count, 0u64, "per-link clones must not count as shared");
    }
}
