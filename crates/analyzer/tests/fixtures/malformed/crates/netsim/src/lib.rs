#![forbid(unsafe_code)]
// simlint: allow(unordered-map)
use std::collections::BTreeMap;

pub fn fine() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}
