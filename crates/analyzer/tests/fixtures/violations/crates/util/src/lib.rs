#![forbid(unsafe_code)]
use std::collections::HashMap;

pub fn fine_here() -> usize {
    HashMap::<u64, u64>::new().len()
}
