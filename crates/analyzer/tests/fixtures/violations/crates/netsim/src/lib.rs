#![forbid(unsafe_code)]
use std::collections::HashMap;
use std::time::Instant;

pub fn bad_map() -> usize {
    HashMap::<u64, u64>::new().len()
}

pub fn bad_clock() -> Instant {
    Instant::now()
}

pub fn bad_rng() -> u64 {
    thread_rng().next_u64()
}
