use std::collections::BTreeMap;

pub fn read(map: &BTreeMap<u32, u32>, k: u32) -> u32 {
    let p: *const u32 = &map[&k];
    unsafe { *p }
}
