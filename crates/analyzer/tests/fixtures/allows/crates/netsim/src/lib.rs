#![forbid(unsafe_code)]
// simlint: allow(unordered-map, reason = "fixture: iteration never observed")
use std::collections::HashMap;

pub fn tolerated() -> usize {
    // simlint: allow(unordered-map, reason = "fixture: iteration never observed")
    HashMap::<u64, u64>::new().len()
}
