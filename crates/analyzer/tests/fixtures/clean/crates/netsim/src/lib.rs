#![forbid(unsafe_code)]
use std::collections::BTreeMap;

pub fn ordered() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}
