#![forbid(unsafe_code)]

pub fn first(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn second(v: Option<u32>) -> u32 {
    v.expect("fixture")
}
