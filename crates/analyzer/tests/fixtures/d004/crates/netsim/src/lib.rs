#![forbid(unsafe_code)]
use std::collections::{BTreeMap, HashMap}; // simlint: allow(unordered-map, reason = "fixture: D004 focus")

pub type NodeId = u32;
pub type PacketId = u64;

pub struct Tables {
    // Two deliberate D004 sites; the fixture baseline tolerates one.
    pub first: BTreeMap<NodeId, u32>,
    pub second: HashMap<NodeId, u32>, // simlint: allow(unordered-map, reason = "fixture: D004 focus")
    // Keyed by something else: not a D004 site.
    pub by_packet: BTreeMap<PacketId, u32>,
    // simlint: allow(node-keyed-map, reason = "fixture: waived site")
    pub waived: BTreeMap<NodeId, u32>,
}
