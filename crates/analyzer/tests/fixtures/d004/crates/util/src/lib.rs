#![forbid(unsafe_code)]
use std::collections::BTreeMap;

pub type NodeId = u32;

// Not a sim crate: D004 does not apply here.
pub struct Outside {
    pub map: BTreeMap<NodeId, u32>,
}
