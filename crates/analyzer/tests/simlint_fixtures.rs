//! End-to-end fixture tests: every rule fires on a small fixture
//! workspace under `tests/fixtures/`, every suppression mechanism holds,
//! and the `simlint` binary's exit codes match its contract.
//!
//! The fixture trees are excluded from real workspace analysis (the
//! walker skips directories named `fixtures`), so the deliberate
//! violations below never fail the repository's own simlint run.

use std::path::{Path, PathBuf};
use std::process::Command;

use analyzer::baseline::Baseline;
use analyzer::rules::RuleId;
use analyzer::workspace::{analyze, Analysis};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn analyzed(name: &str) -> Analysis {
    analyze(&fixture(name)).expect("fixture analyzes")
}

fn rules_fired(a: &Analysis) -> Vec<RuleId> {
    a.findings.iter().map(|f| f.rule).collect()
}

#[test]
fn clean_fixture_produces_no_findings() {
    let a = analyzed("clean");
    assert!(a.findings.is_empty(), "unexpected: {:?}", a.findings);
    assert!(a.r001.is_empty());
    assert!(a.d004.is_empty());
}

#[test]
fn hashmap_in_sim_crate_fires_d001() {
    let a = analyzed("violations");
    let d001: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::D001)
        .collect();
    assert_eq!(d001.len(), 2, "use line + call line: {d001:?}");
    assert!(d001.iter().all(|f| f.path == "crates/netsim/src/lib.rs"));
}

#[test]
fn hashmap_outside_sim_crates_is_not_d001() {
    let a = analyzed("violations");
    assert!(
        !a.findings
            .iter()
            .any(|f| f.path.starts_with("crates/util/")),
        "crate `util` is not a sim crate; D001 must not fire there"
    );
}

#[test]
fn wall_clock_fires_d002() {
    let a = analyzed("violations");
    let d002: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::D002)
        .collect();
    assert_eq!(d002.len(), 1, "{d002:?}");
    assert!(d002[0].message.contains("Instant::now"));
}

#[test]
fn unseeded_rng_fires_d003() {
    let a = analyzed("violations");
    let d003: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::D003)
        .collect();
    assert_eq!(d003.len(), 1, "{d003:?}");
    assert!(d003[0].message.contains("thread_rng"));
}

#[test]
fn missing_forbid_attribute_and_unsafe_code_fire_s001() {
    let a = analyzed("s001");
    let s001: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.rule == RuleId::S001)
        .collect();
    // One finding for the missing `#![forbid(unsafe_code)]` attribute,
    // one for the `unsafe` block itself.
    assert_eq!(s001.len(), 2, "{s001:?}");
}

#[test]
fn allow_annotations_suppress_d001() {
    let a = analyzed("allows");
    assert!(a.findings.is_empty(), "unexpected: {:?}", a.findings);
}

#[test]
fn annotation_without_reason_fires_a001() {
    let a = analyzed("malformed");
    assert_eq!(rules_fired(&a), vec![RuleId::A001]);
    assert!(a.findings[0].message.contains("missing reason"));
}

#[test]
fn unwrap_and_expect_sites_are_counted_for_r001() {
    let a = analyzed("ratchet");
    assert_eq!(
        a.r001.get("crates/netsim/src/lib.rs").map(Vec::len),
        Some(2)
    );
    // R001 sites are ratchet-governed, not hard findings.
    assert!(a.findings.is_empty(), "unexpected: {:?}", a.findings);
}

#[test]
fn ratchet_rejects_count_increases_and_notes_improvements() {
    let a = analyzed("ratchet");

    let tight = Baseline::parse("[r001]\n\"crates/netsim/src/lib.rs\" = 1\n").unwrap();
    let (regressions, _) = a.ratchet(&tight);
    assert_eq!(regressions.len(), 1);
    assert!(regressions[0].message.contains("baseline tolerates 1"));

    let exact = Baseline::parse("[r001]\n\"crates/netsim/src/lib.rs\" = 2\n").unwrap();
    let (regressions, improvements) = a.ratchet(&exact);
    assert!(regressions.is_empty());
    assert!(improvements.is_empty());

    let loose = Baseline::parse("[r001]\n\"crates/netsim/src/lib.rs\" = 3\n").unwrap();
    let (regressions, improvements) = a.ratchet(&loose);
    assert!(regressions.is_empty());
    assert_eq!(improvements.len(), 1, "slack must prompt a ratchet-down");
}

#[test]
fn new_files_are_held_to_zero() {
    let a = analyzed("ratchet");
    let (regressions, _) = a.ratchet(&Baseline::default());
    assert_eq!(regressions.len(), 1, "no baseline entry means zero budget");
}

#[test]
fn node_keyed_maps_are_counted_for_d004() {
    let a = analyzed("d004");
    // Two live sites (the D004-waived one and the PacketId-keyed map do
    // not count); the non-sim `util` crate is out of scope entirely.
    assert_eq!(a.d004.get("crates/netsim/src/lib.rs").map(Vec::len), Some(2));
    assert!(!a.d004.contains_key("crates/util/src/lib.rs"));
    // D004 sites are ratchet-governed, not hard findings.
    assert!(a.findings.is_empty(), "unexpected: {:?}", a.findings);
}

#[test]
fn d004_ratchet_enforces_baseline_counts() {
    let a = analyzed("d004");

    let tight = Baseline::parse("[d004]\n\"crates/netsim/src/lib.rs\" = 1\n").unwrap();
    let (regressions, _) = a.ratchet(&tight);
    assert_eq!(regressions.len(), 1);
    assert_eq!(regressions[0].rule, RuleId::D004);
    assert!(regressions[0].message.contains("baseline tolerates 1"));

    let exact = Baseline::parse("[d004]\n\"crates/netsim/src/lib.rs\" = 2\n").unwrap();
    let (regressions, improvements) = a.ratchet(&exact);
    assert!(regressions.is_empty());
    assert!(improvements.is_empty());

    let (regressions, _) = a.ratchet(&Baseline::default());
    assert_eq!(regressions.len(), 1, "no baseline entry means zero budget");
}

fn run_simlint(root: &Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_simlint"))
        .args(["--root", root.to_str().unwrap()])
        .output()
        .expect("simlint runs")
}

#[test]
fn binary_exits_zero_on_clean_tree() {
    let out = run_simlint(&fixture("clean"));
    assert!(out.status.success(), "{out:?}");
}

#[test]
fn binary_exits_nonzero_when_hashmap_and_wall_clock_enter_netsim() {
    let out = run_simlint(&fixture("violations"));
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[D001]"), "{stdout}");
    assert!(stdout.contains("error[D002]"), "{stdout}");
}

#[test]
fn binary_enforces_committed_ratchet_baseline() {
    // The fixture's committed baseline tolerates 1 site; the tree has 2.
    let out = run_simlint(&fixture("ratchet"));
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[R001]"), "{stdout}");
}

#[test]
fn binary_enforces_committed_d004_baseline() {
    // Two node-keyed maps, the committed baseline tolerates one.
    let out = run_simlint(&fixture("d004"));
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("error[D004]"), "{stdout}");
    assert!(stdout.contains("DenseMap"), "help must point at the dense types: {stdout}");
}
