//! # analyzer — `simlint`, the workspace's own static-analysis pass
//!
//! The paper's packet-delivery figures are reproducible only because
//! every sweep is bit-deterministic under any `--jobs` value. The test
//! suite *asserts* that invariant; this crate *enforces* the source-level
//! discipline behind it, with a dependency-free lexical analyzer (the
//! workspace builds offline, so no `syn`/rustc plumbing):
//!
//! * **D001 `unordered-map`** — no `HashMap`/`HashSet` in sim/protocol
//!   crates, whose iteration order could leak into traces and CSVs;
//! * **D002 `wall-clock`** — no `Instant::now`/`SystemTime::now` outside
//!   `crates/bench`: simulation logic runs on [`SimTime`] only;
//! * **D003 `unseeded-rng`** — no `thread_rng`/`from_entropy`/`OsRng`
//!   outside tests and benches: all randomness flows from the run seed;
//! * **D004 `node-keyed-map`** — no `BTreeMap`/`HashMap` keyed by
//!   `NodeId` in sim-crate library code: node ids are dense indices, so
//!   the `netsim::dense` slot types replace the tree walk per lookup
//!   (governed by the [`baseline`] ratchet, like R001);
//! * **R001 `panic`** — no `unwrap()`/`expect(`/`panic!` in library code
//!   (tests, benches, examples and binaries are exempt), governed by the
//!   committed [`baseline`] ratchet: existing debt is tolerated, new debt
//!   fails, counts only ever go down;
//! * **S001 `unsafe`** — every library crate root carries
//!   `#![forbid(unsafe_code)]` and no `unsafe` token appears in lib code.
//!
//! Hard rules are suppressed per line with
//! `// simlint: allow(<rule>, reason = "...")` — the reason is mandatory
//! and malformed annotations are themselves diagnosed (**A001**).
//!
//! [`SimTime`]: https://docs.rs/netsim
//!
//! ```
//! use analyzer::lexer::lex;
//! use analyzer::rules::{check_file, classify};
//!
//! let ctx = classify("crates/netsim/src/demo.rs").ok_or("scope")?;
//! let report = check_file(&ctx, &lex("use std::collections::HashMap;"));
//! assert_eq!(report.findings.len(), 1);
//! # Ok::<(), &'static str>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod workspace;
