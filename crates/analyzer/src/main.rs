//! `simlint` — run the workspace static-analysis pass.
//!
//! ```text
//! simlint [--root <dir>] [--baseline write|check] [--quiet]
//! ```
//!
//! Exit codes: `0` clean, `1` violations, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use analyzer::baseline::Baseline;
use analyzer::workspace::{analyze, render_finding};

struct Options {
    root: Option<PathBuf>,
    write_baseline: bool,
    quiet: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        write_baseline: false,
        quiet: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let value = args.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(value));
            }
            "--baseline" => match args.next().as_deref() {
                Some("write") => opts.write_baseline = true,
                Some("check") => opts.write_baseline = false,
                other => return Err(format!("--baseline expects write|check, got {other:?}")),
            },
            "--quiet" | "-q" => opts.quiet = true,
            "--help" | "-h" => {
                return Err("usage: simlint [--root <dir>] [--baseline write|check] [--quiet]"
                    .to_string())
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

/// Walks up from the current directory to the first `Cargo.toml`
/// declaring `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let Some(root) = opts.root.or_else(find_workspace_root) else {
        eprintln!("simlint: no workspace root found (looked for Cargo.toml with [workspace])");
        return ExitCode::from(2);
    };

    let analysis = match analyze(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simlint: analysis failed: {e}");
            return ExitCode::from(2);
        }
    };

    let baseline_path = root.join("crates/analyzer/baseline.toml");
    if opts.write_baseline {
        let current = analysis.counts();
        if let Err(e) = std::fs::write(&baseline_path, current.render()) {
            eprintln!("simlint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        let r001: usize = current.r001.values().sum();
        let d004: usize = current.d004.values().sum();
        println!(
            "simlint: wrote {} ({r001} tolerated R001 sites, {d004} tolerated D004 sites)",
            baseline_path.display()
        );
    }

    let baseline = if opts.write_baseline {
        analysis.counts()
    } else {
        match Baseline::load(&baseline_path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("simlint: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let (regressions, improvements) = analysis.ratchet(&baseline);
    let mut failures = analysis.findings.clone();
    failures.extend(regressions);

    for finding in &failures {
        print!("{}", render_finding(finding));
    }
    if !opts.quiet {
        for note in &improvements {
            eprintln!("note: {note}");
        }
    }

    if failures.is_empty() {
        if !opts.quiet {
            let r001: usize = analysis.r001.values().map(Vec::len).sum();
            let d004: usize = analysis.d004.values().map(Vec::len).sum();
            println!(
                "simlint: clean ({r001} tolerated R001 sites, {d004} tolerated D004 sites, \
                 ratchet ok)"
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("simlint: {} violation(s)", failures.len());
        ExitCode::FAILURE
    }
}
