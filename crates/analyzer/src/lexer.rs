//! A comment- and string-literal-aware lexical pass over Rust source.
//!
//! The analyzer never parses Rust properly (the workspace is offline, so
//! no `syn`); instead this module splits a source file into three aligned
//! per-line views:
//!
//! * **code** — the source with every comment and every string/char
//!   literal body blanked out, so token searches cannot be fooled by
//!   `"panic!"` inside a string or `// HashMap` inside a comment;
//! * **comments** — the text of every comment on that line (where
//!   `// simlint: allow(...)` annotations live);
//! * **test membership** — whether the line sits inside a
//!   `#[cfg(test)]`-gated item, which exempts it from the panic rules.
//!
//! The lexer understands line comments (`//`, `///`, `//!`), *nested*
//! block comments (`/* /* */ */`), plain and byte strings with escapes,
//! raw strings with arbitrary `#` fences (`r#"..."#`, `br##"..."##`),
//! char literals (including escapes like `'\u{1F600}'`) and tells them
//! apart from lifetimes (`'static`).

/// One file, split into rule-ready views. All three vectors have one
/// entry per source line.
#[derive(Debug, Clone)]
pub struct LexedFile {
    /// Source code with comments and literal bodies blanked.
    pub code: Vec<String>,
    /// Concatenated comment text per line.
    pub comments: Vec<String>,
    /// `true` when the line is inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* */` pairs.
    BlockComment(u32),
    /// Plain or byte string; `true` while the next char is escaped.
    Str { escaped: bool },
    /// Raw (byte) string closed by `"` followed by this many `#`.
    RawStr(u32),
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes one source file. Never fails: malformed source degrades to
/// treating the remainder as code, which at worst produces a spurious
/// diagnostic rather than a missed file.
#[must_use]
pub fn lex(source: &str) -> LexedFile {
    let b = source.as_bytes();
    let mut code_lines: Vec<String> = Vec::new();
    let mut comment_lines: Vec<String> = Vec::new();
    let mut code = String::new();
    let mut comment = String::new();
    let mut state = State::Code;
    let mut prev_code: u8 = b' '; // last code byte, for ident-boundary checks
    let mut i = 0usize;

    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            code_lines.push(std::mem::take(&mut code));
            comment_lines.push(std::mem::take(&mut comment));
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                if c == b'/' && b.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == b'"' {
                    code.push('"');
                    prev_code = b'"';
                    state = State::Str { escaped: false };
                    i += 1;
                } else if (c == b'r' || c == b'b') && !is_ident(prev_code) {
                    // Possible raw/byte string head: r" r#" b" br" br#"
                    if let Some((fence, consumed)) = raw_string_head(b, i) {
                        code.push('"');
                        prev_code = b'"';
                        state = match fence {
                            Some(h) => State::RawStr(h),
                            None => State::Str { escaped: false },
                        };
                        i += consumed;
                    } else {
                        code.push(c as char);
                        prev_code = c;
                        i += 1;
                    }
                } else if c == b'\'' {
                    if let Some(end) = char_literal_end(b, i) {
                        code.push('\'');
                        code.push('\'');
                        prev_code = b'\'';
                        i = end;
                    } else {
                        // A lifetime: keep the tick, it is harmless code.
                        code.push('\'');
                        prev_code = b'\'';
                        i += 1;
                    }
                } else {
                    code.push(c as char);
                    prev_code = c;
                    i += 1;
                }
            }
            State::LineComment => {
                comment.push(c as char);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == b'/' && b.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == b'*' && b.get(i + 1) == Some(&b'/') {
                    state = if depth <= 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment.push(c as char);
                    i += 1;
                }
            }
            State::Str { escaped } => {
                if escaped {
                    state = State::Str { escaped: false };
                } else if c == b'\\' {
                    state = State::Str { escaped: true };
                } else if c == b'"' {
                    code.push('"');
                    prev_code = b'"';
                    state = State::Code;
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == b'"' && has_hashes(b, i + 1, hashes) {
                    code.push('"');
                    prev_code = b'"';
                    state = State::Code;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    code_lines.push(code);
    comment_lines.push(comment);

    let in_test = mark_test_regions(&code_lines);
    LexedFile {
        code: code_lines,
        comments: comment_lines,
        in_test,
    }
}

/// If `b[i..]` starts a raw or byte string opener, returns
/// `(fence_hashes, bytes_consumed)`; `fence_hashes` is `None` for a plain
/// byte string (`b"`), `Some(n)` for raw strings with `n` hashes.
fn raw_string_head(b: &[u8], i: usize) -> Option<(Option<u32>, usize)> {
    let mut j = i;
    if b.get(j) == Some(&b'b') {
        j += 1;
    }
    if b.get(j) == Some(&b'r') {
        j += 1;
        let mut hashes = 0u32;
        while b.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        if b.get(j) == Some(&b'"') {
            return Some((Some(hashes), j + 1 - i));
        }
        return None;
    }
    // b"..." (byte string without raw fence)
    if j > i && b.get(j) == Some(&b'"') {
        return Some((None, j + 1 - i));
    }
    None
}

/// Whether `count` `#` bytes follow at `b[i..]`.
fn has_hashes(b: &[u8], i: usize, count: u32) -> bool {
    let n = count as usize;
    i + n <= b.len() && b[i..i + n].iter().all(|&c| c == b'#')
}

/// If a char literal starts at `b[i]` (which must be `'`), returns the
/// index just past its closing quote. Returns `None` for lifetimes.
fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    match b.get(i + 1)? {
        b'\\' => {
            // Escape: '\n' '\\' '\'' '\u{...}' '\x7f'
            let mut j = i + 2;
            if b.get(j) == Some(&b'u') && b.get(j + 1) == Some(&b'{') {
                j += 2;
                while j < b.len() && b[j] != b'}' {
                    j += 1;
                }
                j += 1;
            } else {
                j += 1;
                if b.get(i + 2) == Some(&b'x') {
                    j += 2;
                }
            }
            (b.get(j) == Some(&b'\'')).then_some(j + 1)
        }
        _ => {
            // Unescaped: scan to the next quote within the longest legal
            // literal (one UTF-8 scalar, at most 4 bytes). A tick followed
            // by ident chars and no closing quote is a lifetime.
            let mut j = i + 1;
            let limit = (i + 5).min(b.len());
            while j < limit {
                if b[j] == b'\'' {
                    // `''` is not a char literal; `'a'` and `'é'` are.
                    return (j > i + 1).then_some(j + 1);
                }
                j += 1;
            }
            None
        }
    }
}

/// Marks the lines belonging to `#[cfg(test)]`-gated items.
///
/// Strategy: find each `#[cfg(test)]` attribute in the blanked code, skip
/// any further attributes, then consume one item — either up to the first
/// `;` (e.g. `#[cfg(test)] use ...;`) or a brace-matched `{ ... }` block
/// (the common `#[cfg(test)] mod tests { ... }`). Works on blanked code,
/// so braces inside strings or comments cannot desynchronize the match.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let chars: Vec<(usize, char)> = code
        .iter()
        .enumerate()
        .flat_map(|(ln, l)| l.chars().map(move |c| (ln, c)).chain([(ln, '\n')]))
        .collect();
    let flat: String = chars.iter().map(|&(_, c)| c).collect();

    let mut search_from = 0usize;
    while let Some(off) = find_cfg_test(&flat[search_from..]) {
        let attr_start = search_from + off;
        let Some(&(start_line, _)) = chars.get(attr_start) else {
            break;
        };
        // Move past this attribute, then past any stacked attributes.
        let mut k = skip_attr(&chars, attr_start);
        loop {
            while k < chars.len() && chars[k].1.is_whitespace() {
                k += 1;
            }
            if k < chars.len() && chars[k].1 == '#' {
                k = skip_attr(&chars, k);
            } else {
                break;
            }
        }
        // Consume one item: to `;` or through a balanced `{ ... }`.
        let mut depth = 0usize;
        let mut end_line = start_line;
        while k < chars.len() {
            let (ln, c) = chars[k];
            end_line = ln;
            match c {
                '{' => depth += 1,
                '}' => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break;
                    }
                }
                ';' if depth == 0 => break,
                _ => {}
            }
            k += 1;
        }
        for flag in in_test
            .iter_mut()
            .take(end_line + 1)
            .skip(start_line)
        {
            *flag = true;
        }
        search_from = k.max(attr_start + 1);
    }
    in_test
}

/// Finds the next `#[cfg(test)]` attribute head, tolerating interior
/// whitespace (`#[cfg( test )]`). Returns the offset of its `#`.
fn find_cfg_test(hay: &str) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = hay.get(from..).and_then(|h| h.find("#[")) {
        let start = from + pos;
        // Collect the attribute's non-whitespace prefix and compare.
        let mut compact = String::new();
        for &c in bytes.iter().skip(start).take(40) {
            if !c.is_ascii_whitespace() {
                compact.push(c as char);
            }
            if compact.len() >= 12 {
                break;
            }
        }
        if compact.starts_with("#[cfg(test)]") {
            return Some(start);
        }
        from = start + 2;
    }
    None
}

/// Given `chars[k] == '#'` starting an attribute, returns the index just
/// past its closing `]`.
fn skip_attr(chars: &[(usize, char)], k: usize) -> usize {
    let mut j = k;
    let mut depth = 0usize;
    while j < chars.len() {
        match chars[j].1 {
            '[' => depth += 1,
            ']' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code_of(src: &str) -> String {
        lex(src).code.join("\n")
    }

    #[test]
    fn line_comments_are_stripped_from_code() {
        let f = lex("let x = 1; // trailing panic!()\n// full-line HashMap\nlet y = 2;");
        assert!(!f.code.join("\n").contains("panic"));
        assert!(!f.code.join("\n").contains("HashMap"));
        assert!(f.comments[0].contains("panic!()"));
        assert!(f.comments[1].contains("HashMap"));
        assert!(f.code[2].contains("let y = 2;"));
    }

    #[test]
    fn doc_comments_are_comments() {
        let f = lex("/// uses unwrap() freely\n//! and panic!\nfn f() {}");
        assert!(!f.code.join("\n").contains("unwrap"));
        assert!(f.comments[0].contains("unwrap()"));
        assert!(f.comments[1].contains("panic!"));
    }

    #[test]
    fn block_comments_span_lines() {
        let f = lex("a /* one\n two HashMap\n three */ b");
        let code = f.code.join("\n");
        assert!(code.contains('a') && code.contains('b'));
        assert!(!code.contains("HashMap"));
        assert!(f.comments[1].contains("HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let f = lex("x /* outer /* inner panic! */ still comment */ y");
        let code = f.code.join("\n");
        assert!(code.contains('x') && code.contains('y'));
        assert!(!code.contains("panic"));
        assert!(!code.contains("still comment"));
    }

    #[test]
    fn string_bodies_are_blanked() {
        let code = code_of(r#"let s = "panic! unwrap() HashMap"; let t = 1;"#);
        assert!(!code.contains("panic"));
        assert!(!code.contains("HashMap"));
        assert!(code.contains("let t = 1;"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let code = code_of(r#"let s = "a\"panic!\"b"; unwrap_me();"#);
        assert!(!code.contains("panic"));
        assert!(code.contains("unwrap_me();"));
    }

    #[test]
    fn raw_strings_with_fences() {
        let code = code_of(r###"let s = r#"panic! "quoted" HashMap"#; after();"###);
        assert!(!code.contains("panic"));
        assert!(!code.contains("HashMap"));
        assert!(code.contains("after();"));
    }

    #[test]
    fn multiline_raw_string() {
        let f = lex("let s = r\"line1 panic!\nline2 HashMap\"; tail();");
        let code = f.code.join("\n");
        assert!(!code.contains("panic"));
        assert!(!code.contains("HashMap"));
        assert!(code.contains("tail();"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let code = code_of(r##"let a = b"panic!"; let b = br#"HashMap"#; end();"##);
        assert!(!code.contains("panic"));
        assert!(!code.contains("HashMap"));
        assert!(code.contains("end();"));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let code = code_of(r#"let var"#);
        assert!(code.contains("let var"));
    }

    #[test]
    fn char_literals_are_blanked_but_lifetimes_survive() {
        let code = code_of("let c = '\"'; fn f<'a>(x: &'a str) {} let q = '\\'';");
        // The quote char literal must not open a string.
        assert!(code.contains("fn f<'a>(x: &'a str) {}"));
        assert!(!code.contains('"') || code.matches('"').count() == 0);
    }

    #[test]
    fn escaped_char_literals() {
        let code = code_of(r"let a = '\n'; let b = '\u{1F600}'; let c = '\x7f'; done();");
        assert!(code.contains("done();"));
    }

    #[test]
    fn static_lifetime_is_not_a_char() {
        let code = code_of("fn f(x: &'static str) -> &'static str { x }");
        assert!(code.contains("'static str"));
    }

    #[test]
    fn cfg_test_module_is_marked() {
        let src = "\
fn lib_code() { a.unwrap(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { b.unwrap(); }
}

fn more_lib() {}
";
        let f = lex(src);
        assert!(!f.in_test[0], "lib code must not be marked");
        assert!(f.in_test[2], "attribute line is part of the test region");
        assert!(f.in_test[5], "test body is marked");
        assert!(f.in_test[6], "closing brace is marked");
        assert!(!f.in_test[8], "code after the module is lib again");
    }

    #[test]
    fn cfg_test_with_stacked_attributes() {
        let src = "\
#[cfg(test)]
#[allow(dead_code)]
mod tests {
    fn t() {}
}
fn lib() {}
";
        let f = lex(src);
        assert!(f.in_test[0] && f.in_test[2] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn cfg_test_on_a_single_item_without_braces() {
        let src = "#[cfg(test)]\nuse helper::thing;\nfn lib() {}\n";
        let f = lex(src);
        assert!(f.in_test[0] && f.in_test[1]);
        assert!(!f.in_test[2]);
    }

    #[test]
    fn braces_inside_strings_do_not_confuse_test_regions() {
        let src = "\
#[cfg(test)]
mod tests {
    const S: &str = \"}\";
    fn t() {}
}
fn lib_after() { x.unwrap(); }
";
        let f = lex(src);
        assert!(f.in_test[1] && f.in_test[4]);
        assert!(!f.in_test[5], "string brace must not close the module early");
    }

    #[test]
    fn cfg_not_test_is_ignored() {
        let f = lex("#[cfg(not(test))]\nmod real {\n fn f() {}\n}\n");
        assert!(f.in_test.iter().all(|&t| !t));
    }

    #[test]
    fn views_are_line_aligned() {
        let src = "a\nb /* c\nd */ e\nf";
        let f = lex(src);
        assert_eq!(f.code.len(), 4);
        assert_eq!(f.comments.len(), 4);
        assert_eq!(f.in_test.len(), 4);
    }
}
