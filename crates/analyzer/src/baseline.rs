//! The ratchet: a committed table of tolerated R001 and D004 site counts.
//!
//! `crates/analyzer/baseline.toml` records, per library file, how many
//! `unwrap()/expect(/panic!` sites (`[r001]`) and `NodeId`-keyed ordered
//! maps (`[d004]`) existed when the baseline was last written. The check
//! fails when any file's count **rises** above its baseline (new debt),
//! merely notes when it falls (run `simlint --baseline write` to ratchet
//! down), and treats files absent from the tables as baseline 0 — so new
//! files must be free of both from their first commit.
//!
//! The format is a deliberately tiny TOML subset (tables of quoted-path
//! keys to integer counts) so the analyzer stays dependency-free.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Parsed baseline: path → tolerated site count, per ratcheted rule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Tolerated `unwrap()/expect(/panic!` sites per library file.
    pub r001: BTreeMap<String, usize>,
    /// Tolerated `NodeId`-keyed ordered-map sites per sim-crate file.
    pub d004: BTreeMap<String, usize>,
}

/// Why a baseline file failed to parse.
#[derive(Debug)]
pub struct ParseError {
    /// 1-based line in `baseline.toml`.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "baseline.toml:{}: {}", self.line, self.message)
    }
}

impl Baseline {
    /// Parses the baseline text.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] naming the offending line.
    pub fn parse(text: &str) -> Result<Baseline, ParseError> {
        let mut r001 = BTreeMap::new();
        let mut d004 = BTreeMap::new();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(ParseError {
                        line: line_no,
                        message: "unterminated section header".to_string(),
                    });
                };
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ParseError {
                    line: line_no,
                    message: "expected `\"path\" = count`".to_string(),
                });
            };
            let key = key.trim();
            let key = key
                .strip_prefix('"')
                .and_then(|k| k.strip_suffix('"'))
                .unwrap_or(key);
            let count: usize = match value.trim().parse() {
                Ok(n) => n,
                Err(_) => {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("count is not an integer: {}", value.trim()),
                    });
                }
            };
            match section.as_str() {
                "r001" => {
                    r001.insert(key.to_string(), count);
                }
                "d004" => {
                    d004.insert(key.to_string(), count);
                }
                // Unknown sections are tolerated for forward compatibility.
                _ => {}
            }
        }
        Ok(Baseline { r001, d004 })
    }

    /// Loads the baseline from `path`; a missing file is an empty
    /// baseline (every count 0).
    ///
    /// # Errors
    ///
    /// Returns the parse error message for a malformed file.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text).map_err(|e| e.to_string()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    /// Renders the baseline in canonical form (sorted, zero counts
    /// omitted).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# Ratchet baselines: tolerated sites per library file.\n\
             # [r001] counts unwrap()/expect(/panic!; [d004] counts\n\
             # NodeId-keyed BTreeMap/HashMap in sim crates.\n\
             # Regenerate (only ever downward) with:\n\
             #     cargo run -p analyzer -- --baseline write\n\
             # New library files are held to zero; these tables exist so\n\
             # pre-existing debt fails no builds while new debt fails fast.\n\
             \n[r001]\n",
        );
        for (path, count) in &self.r001 {
            if *count > 0 {
                out.push_str(&format!("\"{path}\" = {count}\n"));
            }
        }
        out.push_str("\n[d004]\n");
        for (path, count) in &self.d004 {
            if *count > 0 {
                out.push_str(&format!("\"{path}\" = {count}\n"));
            }
        }
        out
    }
}

fn strip_comment(line: &str) -> &str {
    // No quoted `#` appears in our keys; a plain split is enough.
    match line.split_once('#') {
        Some((head, _)) => head,
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_render() {
        let mut b = Baseline::default();
        b.r001.insert("crates/netsim/src/event.rs".to_string(), 2);
        b.r001.insert("crates/core/src/a.rs".to_string(), 1);
        b.d004.insert("crates/rip/src/table.rs".to_string(), 1);
        let text = b.render();
        let parsed = Baseline::parse(&text).expect("round trip");
        assert_eq!(parsed, b);
    }

    #[test]
    fn zero_counts_are_omitted_on_render() {
        let mut b = Baseline::default();
        b.r001.insert("a.rs".to_string(), 0);
        assert!(!b.render().contains("a.rs"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\n[r001]\n\"x.rs\" = 3 # trailing\n";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.r001.get("x.rs"), Some(&3));
    }

    #[test]
    fn unknown_sections_are_tolerated() {
        let text = "[future]\n\"y.rs\" = 9\n[r001]\n\"x.rs\" = 1\n";
        let b = Baseline::parse(text).expect("parses");
        assert_eq!(b.r001.len(), 1);
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = Baseline::parse("[r001]\nnot a pair\n").expect_err("must fail");
        assert_eq!(err.line, 2);
        let err = Baseline::parse("[r001\n").expect_err("must fail");
        assert_eq!(err.line, 1);
        let err = Baseline::parse("[r001]\n\"x\" = lots\n").expect_err("must fail");
        assert!(err.message.contains("integer"));
    }

    #[test]
    fn missing_file_is_empty() {
        let b = Baseline::load(Path::new("/nonexistent/baseline.toml")).expect("empty");
        assert!(b.r001.is_empty());
    }
}
