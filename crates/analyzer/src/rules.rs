//! The simulator-specific lint rules.
//!
//! | rule | name            | enforces                                              |
//! |------|-----------------|-------------------------------------------------------|
//! | D001 | `unordered-map` | no `HashMap`/`HashSet` in sim/protocol crates         |
//! | D002 | `wall-clock`    | no `Instant::now`/`SystemTime::now` outside `bench`   |
//! | D003 | `unseeded-rng`  | no `thread_rng`/`from_entropy`/`OsRng` outside tests  |
//! | D004 | `node-keyed-map`| no `BTreeMap`/`HashMap` keyed by `NodeId` in sim crates |
//! | R001 | `panic`         | no `unwrap()`/`expect(`/`panic!` in library code      |
//! | S001 | `unsafe`        | lib crates carry `#![forbid(unsafe_code)]`, no `unsafe` |
//! | A001 | —               | `simlint:` annotations must be well-formed            |
//!
//! D001–D003 and S001 are hard failures unless suppressed by an inline
//! `// simlint: allow(<name>, reason = "...")` annotation; R001 and D004
//! are governed by the committed baseline ratchet instead (see
//! [`crate::baseline`]) on top of the same annotation syntax. D004 exists
//! because node-keyed ordered maps on the hot path were replaced by the
//! dense-index types in `netsim::dense` — a tree walk per neighbor lookup
//! is exactly the cost the migration removed, so new sites are debt.

use std::collections::BTreeSet;
use std::fmt;

use crate::lexer::LexedFile;

/// Crates whose iteration order and timing feed the deterministic
/// simulation results; D001 applies to every file in them.
pub const SIM_CRATES: &[&str] = &[
    "netsim",
    "topology",
    "routing-core",
    "rip",
    "dbf",
    "bgp",
    "spf",
    "dual",
    "core",
];

/// Rule identifiers, in report order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Unordered collections in sim crates.
    D001,
    /// Wall-clock reads outside `bench`.
    D002,
    /// Unseeded randomness outside tests/benches.
    D003,
    /// `BTreeMap`/`HashMap` keyed by `NodeId` in sim crates (ratcheted).
    D004,
    /// Panics in library code (ratcheted).
    R001,
    /// Missing `#![forbid(unsafe_code)]` or an `unsafe` token.
    S001,
    /// Malformed `simlint:` annotation.
    A001,
}

impl RuleId {
    /// The name used inside `allow(...)` annotations.
    #[must_use]
    pub fn allow_name(self) -> &'static str {
        match self {
            RuleId::D001 => "unordered-map",
            RuleId::D002 => "wall-clock",
            RuleId::D003 => "unseeded-rng",
            RuleId::D004 => "node-keyed-map",
            RuleId::R001 => "panic",
            RuleId::S001 => "unsafe",
            RuleId::A001 => "annotation",
        }
    }

    fn from_allow_name(name: &str) -> Option<RuleId> {
        [
            RuleId::D001,
            RuleId::D002,
            RuleId::D003,
            RuleId::D004,
            RuleId::R001,
            RuleId::S001,
        ]
        .into_iter()
        .find(|r| r.allow_name() == name)
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::R001 => "R001",
            RuleId::S001 => "S001",
            RuleId::A001 => "A001",
        };
        f.write_str(s)
    }
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What was found.
    pub message: String,
    /// How to fix or suppress it.
    pub help: String,
}

/// What role a file plays, derived from its workspace-relative path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (rules apply in full).
    Lib,
    /// A binary (`src/bin/*`, `src/main.rs`, `build.rs`).
    Bin,
    /// Integration tests / fixtures (`tests/` anywhere in the path).
    Test,
    /// Benchmarks (`benches/`, or anything in the `bench` crate).
    Bench,
    /// Examples.
    Example,
}

/// A classified file.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Crate directory name (`""` for the workspace root package).
    pub krate: String,
    /// Role.
    pub kind: FileKind,
}

/// Classifies `rel` (workspace-relative, `/`-separated). Returns `None`
/// for files outside the analysis scope (vendored stubs, build output).
#[must_use]
pub fn classify(rel: &str) -> Option<FileContext> {
    let parts: Vec<&str> = rel.split('/').collect();
    let first = *parts.first()?;
    if matches!(first, "vendor" | "target") || first.starts_with('.') {
        return None;
    }
    let krate = if first == "crates" {
        (*parts.get(1)?).to_string()
    } else {
        String::new()
    };
    let kind = if krate == "bench" || parts.contains(&"benches") {
        FileKind::Bench
    } else if parts.contains(&"tests") {
        FileKind::Test
    } else if parts.contains(&"examples") {
        FileKind::Example
    } else if parts.contains(&"bin")
        || parts.last() == Some(&"main.rs")
        || parts.last() == Some(&"build.rs")
    {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    Some(FileContext {
        rel: rel.to_string(),
        krate,
        kind,
    })
}

/// A parsed `simlint: allow(rule, reason = "...")` annotation.
#[derive(Debug, Clone)]
struct Allow {
    rule: RuleId,
    /// Lines (1-based) the annotation covers.
    lines: [usize; 2],
}

/// Scans comment text for annotations. Returns the valid allows plus
/// A001 findings for malformed ones.
fn collect_allows(ctx: &FileContext, file: &LexedFile) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for (idx, comment) in file.comments.iter().enumerate() {
        // Only a comment that *starts* with `simlint:` is an annotation;
        // prose that merely mentions the grammar is not.
        let Some(rest) = comment.trim_start().strip_prefix("simlint:") else {
            continue;
        };
        let line = idx + 1;
        let rest = rest.trim_start();
        match parse_allow(rest) {
            Ok(name) => match RuleId::from_allow_name(name) {
                Some(rule) => {
                    // A whole-line comment covers the next line; a
                    // trailing comment covers its own line.
                    let own_code_blank =
                        file.code.get(idx).is_none_or(|c| c.trim().is_empty());
                    let covered = if own_code_blank { line + 1 } else { line };
                    allows.push(Allow {
                        rule,
                        lines: [line, covered],
                    });
                }
                None => findings.push(Finding {
                    rule: RuleId::A001,
                    path: ctx.rel.clone(),
                    line,
                    message: format!("unknown rule {name:?} in simlint annotation"),
                    help: "valid rules: unordered-map, wall-clock, unseeded-rng, \
                           node-keyed-map, panic, unsafe"
                        .to_string(),
                }),
            },
            Err(why) => findings.push(Finding {
                rule: RuleId::A001,
                path: ctx.rel.clone(),
                line,
                message: format!("malformed simlint annotation: {why}"),
                help: "expected: simlint: allow(<rule>, reason = \"...\")".to_string(),
            }),
        }
    }
    (allows, findings)
}

/// Parses `allow(<name>, reason = "...")`, returning the rule name.
fn parse_allow(s: &str) -> Result<&str, &'static str> {
    let body = s
        .strip_prefix("allow(")
        .ok_or("expected allow(...)")?;
    let close = body.rfind(')').ok_or("missing closing parenthesis")?;
    let body = &body[..close];
    let (name, rest) = body.split_once(',').ok_or("missing reason")?;
    let rest = rest.trim_start();
    let reason = rest
        .strip_prefix("reason")
        .map(str::trim_start)
        .and_then(|r| r.strip_prefix('='))
        .map(str::trim)
        .ok_or("missing reason = \"...\"")?;
    let quoted = reason.len() >= 2 && reason.starts_with('"') && reason.ends_with('"');
    if !quoted || reason.len() == 2 {
        return Err("reason must be a non-empty quoted string");
    }
    Ok(name.trim())
}

/// Per-file analysis output.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Hard findings (D/S/A rules).
    pub findings: Vec<Finding>,
    /// Lines (1-based) with R001 (`unwrap()/expect(/panic!`) sites in
    /// library code, after annotation suppression.
    pub r001_lines: Vec<usize>,
    /// Lines (1-based) with D004 (`NodeId`-keyed ordered map) sites in
    /// sim-crate code, after annotation suppression.
    pub d004_lines: Vec<usize>,
}

/// Runs every line-level rule over one lexed file.
#[must_use]
pub fn check_file(ctx: &FileContext, file: &LexedFile) -> FileReport {
    let (allows, mut findings) = collect_allows(ctx, file);
    let allowed = |rule: RuleId, line: usize| {
        allows
            .iter()
            .any(|a| a.rule == rule && a.lines.contains(&line))
    };

    let sim_crate = SIM_CRATES.contains(&ctx.krate.as_str());
    let d001_on = sim_crate;
    let d002_on = ctx.kind != FileKind::Bench;
    let d003_on = !matches!(ctx.kind, FileKind::Test | FileKind::Bench);
    let d004_on = sim_crate && ctx.kind == FileKind::Lib;
    let r001_on = ctx.kind == FileKind::Lib;
    let s001_on = ctx.kind == FileKind::Lib;

    let mut r001_lines = Vec::new();
    let mut d004_lines = Vec::new();
    for (idx, code) in file.code.iter().enumerate() {
        let line = idx + 1;
        let in_test = file.in_test.get(idx).copied().unwrap_or(false);
        if d001_on && !in_test {
            for token in ["HashMap", "HashSet"] {
                if has_word(code, token) && !allowed(RuleId::D001, line) {
                    findings.push(Finding {
                        rule: RuleId::D001,
                        path: ctx.rel.clone(),
                        line,
                        message: format!(
                            "{token} in deterministic sim crate `{}` (iteration order is unstable)",
                            ctx.krate
                        ),
                        help: format!(
                            "use BTree{} instead, or annotate: // simlint: allow(unordered-map, reason = \"...\")",
                            &token[4..]
                        ),
                    });
                }
            }
        }
        if d002_on {
            for token in ["Instant::now", "SystemTime::now"] {
                if has_word(code, token) && !allowed(RuleId::D002, line) {
                    findings.push(Finding {
                        rule: RuleId::D002,
                        path: ctx.rel.clone(),
                        line,
                        message: format!("wall-clock read `{token}` outside the bench crate"),
                        help: "simulation code must use SimTime; move timing into crates/bench \
                               or annotate: // simlint: allow(wall-clock, reason = \"...\")"
                            .to_string(),
                    });
                }
            }
        }
        if d003_on && !in_test {
            for token in ["thread_rng", "from_entropy", "OsRng"] {
                if has_word(code, token) && !allowed(RuleId::D003, line) {
                    findings.push(Finding {
                        rule: RuleId::D003,
                        path: ctx.rel.clone(),
                        line,
                        message: format!("unseeded randomness `{token}` outside tests/benches"),
                        help: "all randomness must flow from the run's seed (SimRng); \
                               or annotate: // simlint: allow(unseeded-rng, reason = \"...\")"
                            .to_string(),
                    });
                }
            }
        }
        if d004_on && !in_test && !allowed(RuleId::D004, line) {
            let hits = count_node_keyed_maps(code);
            for _ in 0..hits {
                d004_lines.push(line);
            }
        }
        if r001_on && !in_test && !allowed(RuleId::R001, line) {
            let hits = count_panics(code);
            for _ in 0..hits {
                r001_lines.push(line);
            }
        }
        if s001_on && !in_test && has_word(code, "unsafe") && !allowed(RuleId::S001, line) {
            findings.push(Finding {
                rule: RuleId::S001,
                path: ctx.rel.clone(),
                line,
                message: "`unsafe` in library code".to_string(),
                help: "the workspace forbids unsafe code; \
                       or annotate: // simlint: allow(unsafe, reason = \"...\")"
                    .to_string(),
            });
        }
    }
    FileReport {
        findings,
        r001_lines,
        d004_lines,
    }
}

/// S001 attribute check for a crate root: the blanked code must contain
/// `#![forbid(unsafe_code)]`.
#[must_use]
pub fn check_forbid_unsafe(ctx: &FileContext, file: &LexedFile) -> Option<Finding> {
    let found = file.code.iter().any(|l| {
        let compact: String = l.chars().filter(|c| !c.is_whitespace()).collect();
        compact.contains("#![forbid(unsafe_code)]")
    });
    if found {
        None
    } else {
        Some(Finding {
            rule: RuleId::S001,
            path: ctx.rel.clone(),
            line: 1,
            message: "library crate root is missing #![forbid(unsafe_code)]".to_string(),
            help: "add #![forbid(unsafe_code)] to the crate root".to_string(),
        })
    }
}

/// Number of `BTreeMap<NodeId, …>` / `HashMap<NodeId, …>` sites on one
/// blanked code line: an ident-bounded map token whose first generic
/// argument is `NodeId`. `BTreeMap<PacketId, …>` and maps that merely
/// *contain* `NodeId` values do not count — the rule targets the
/// tree-walk-per-node-lookup pattern the dense-index types replace.
#[must_use]
pub fn count_node_keyed_maps(code: &str) -> usize {
    ["BTreeMap", "HashMap"]
        .iter()
        .map(|token| {
            word_positions(code, token)
                .into_iter()
                .filter(|&p| {
                    let rest = code[p + token.len()..].trim_start();
                    match rest.strip_prefix('<') {
                        Some(args) => {
                            let args = args.trim_start();
                            args.strip_prefix("NodeId").is_some_and(|after| {
                                !after.starts_with(|c: char| {
                                    c.is_ascii_alphanumeric() || c == '_'
                                })
                            })
                        }
                        None => false,
                    }
                })
                .count()
        })
        .sum()
}

/// Number of `unwrap()` / `expect(` / `panic!` sites on one blanked code
/// line.
#[must_use]
pub fn count_panics(code: &str) -> usize {
    word_followed_by(code, "unwrap", "(")
        + word_followed_by(code, "expect", "(")
        + word_followed_by(code, "panic", "!")
}

/// Occurrences of `word` (ident-bounded) whose next non-space char starts
/// `suffix`.
fn word_followed_by(hay: &str, word: &str, suffix: &str) -> usize {
    word_positions(hay, word)
        .into_iter()
        .filter(|&p| hay[p + word.len()..].trim_start().starts_with(suffix))
        .count()
}

/// Whether `token` occurs ident-bounded in `hay`. Multi-segment tokens
/// (`Instant::now`) are bounded on their outer edges only.
#[must_use]
pub fn has_word(hay: &str, token: &str) -> bool {
    !word_positions(hay, token).is_empty()
}

fn word_positions(hay: &str, token: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = hay.as_bytes();
    let mut from = 0usize;
    while let Some(pos) = hay.get(from..).and_then(|h| h.find(token)) {
        let start = from + pos;
        let end = start + token.len();
        let left_ok = start == 0 || !is_ident_byte(bytes[start - 1]);
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            out.push(start);
        }
        from = start + token.len().max(1);
    }
    out
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// The set of rule names valid in annotations (used by docs/tests).
#[must_use]
pub fn allow_names() -> BTreeSet<&'static str> {
    [
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::D004,
        RuleId::R001,
        RuleId::S001,
    ]
    .into_iter()
    .map(RuleId::allow_name)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn lib_ctx(rel: &str) -> FileContext {
        classify(rel).expect("in scope")
    }

    #[test]
    fn classification_covers_the_layout() {
        assert_eq!(lib_ctx("crates/netsim/src/simulator.rs").kind, FileKind::Lib);
        assert_eq!(lib_ctx("crates/netsim/src/simulator.rs").krate, "netsim");
        assert_eq!(lib_ctx("crates/netsim/tests/engine.rs").kind, FileKind::Test);
        assert_eq!(lib_ctx("crates/bench/src/lib.rs").kind, FileKind::Bench);
        assert_eq!(lib_ctx("crates/bench/src/bin/run_all.rs").kind, FileKind::Bench);
        assert_eq!(lib_ctx("crates/core/benches/engine.rs").kind, FileKind::Bench);
        assert_eq!(lib_ctx("src/lib.rs").kind, FileKind::Lib);
        assert_eq!(lib_ctx("src/lib.rs").krate, "");
        assert_eq!(lib_ctx("examples/quickstart.rs").kind, FileKind::Example);
        assert_eq!(lib_ctx("tests/extensions.rs").kind, FileKind::Test);
        assert_eq!(
            lib_ctx("crates/analyzer/src/main.rs").kind,
            FileKind::Bin
        );
        assert!(classify("vendor/rand/src/lib.rs").is_none());
        assert!(classify("target/debug/build.rs").is_none());
    }

    #[test]
    fn d001_fires_only_in_sim_crates() {
        let file = lex("use std::collections::HashMap;\n");
        let hit = check_file(&lib_ctx("crates/netsim/src/x.rs"), &file);
        assert_eq!(hit.findings.len(), 1);
        assert_eq!(hit.findings[0].rule, RuleId::D001);
        assert_eq!(hit.findings[0].line, 1);
        let miss = check_file(&lib_ctx("crates/analyzer/src/x.rs"), &file);
        assert!(miss.findings.is_empty());
    }

    #[test]
    fn d001_allow_annotation_suppresses() {
        let src = "\
// simlint: allow(unordered-map, reason = \"iteration order never escapes\")
use std::collections::HashMap;
";
        let report = check_file(&lib_ctx("crates/netsim/src/x.rs"), &lex(src));
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        // Trailing form covers its own line.
        let src2 = "use std::collections::HashMap; // simlint: allow(unordered-map, reason = \"x\")\n";
        let report2 = check_file(&lib_ctx("crates/netsim/src/x.rs"), &lex(src2));
        assert!(report2.findings.is_empty());
    }

    #[test]
    fn annotation_without_reason_is_a001() {
        let src = "// simlint: allow(unordered-map)\nuse std::collections::HashMap;\n";
        let report = check_file(&lib_ctx("crates/netsim/src/x.rs"), &lex(src));
        let rules: Vec<RuleId> = report.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&RuleId::A001));
        assert!(rules.contains(&RuleId::D001), "malformed allow must not suppress");
    }

    #[test]
    fn annotation_with_unknown_rule_is_a001() {
        let src = "// simlint: allow(everything, reason = \"no\")\n";
        let report = check_file(&lib_ctx("crates/netsim/src/x.rs"), &lex(src));
        assert_eq!(report.findings[0].rule, RuleId::A001);
    }

    #[test]
    fn d002_exempts_the_bench_crate() {
        let file = lex("let t = Instant::now();\n");
        let hit = check_file(&lib_ctx("crates/core/src/x.rs"), &file);
        assert_eq!(hit.findings[0].rule, RuleId::D002);
        let miss = check_file(&lib_ctx("crates/bench/src/lib.rs"), &file);
        assert!(miss.findings.is_empty());
    }

    #[test]
    fn d003_exempts_tests_and_benches() {
        let file = lex("let r = thread_rng();\n");
        let hit = check_file(&lib_ctx("crates/rip/src/x.rs"), &file);
        assert_eq!(hit.findings[0].rule, RuleId::D003);
        assert!(check_file(&lib_ctx("crates/rip/tests/x.rs"), &file)
            .findings
            .is_empty());
        assert!(check_file(&lib_ctx("crates/bench/benches/x.rs"), &file)
            .findings
            .is_empty());
    }

    #[test]
    fn r001_counts_lib_code_only() {
        let src = "\
fn lib() { a.unwrap(); b.expect(\"x\"); panic!(\"y\"); }

#[cfg(test)]
mod tests {
    fn t() { c.unwrap(); }
}
";
        let file = lex(src);
        let lib = check_file(&lib_ctx("crates/core/src/x.rs"), &file);
        assert_eq!(lib.r001_lines, vec![1, 1, 1]);
        let test = check_file(&lib_ctx("crates/core/tests/x.rs"), &file);
        assert!(test.r001_lines.is_empty());
    }

    #[test]
    fn r001_does_not_match_lookalikes() {
        assert_eq!(count_panics("x.unwrap_or(0); expect_err(); should_panic; panicking"), 0);
        assert_eq!(count_panics("x.unwrap();"), 1);
        assert_eq!(count_panics("Option::unwrap (x)"), 1);
        assert_eq!(count_panics("panic! (\"boom\")"), 1);
        assert_eq!(count_panics("debug_assert!(true)"), 0);
    }

    #[test]
    fn s001_flags_unsafe_tokens_but_not_unsafe_code_attr() {
        let attr = lex("#![forbid(unsafe_code)]\n");
        let ok = check_file(&lib_ctx("crates/core/src/lib.rs"), &attr);
        assert!(ok.findings.is_empty());
        let bad = lex("unsafe { *ptr }\n");
        let hit = check_file(&lib_ctx("crates/core/src/x.rs"), &bad);
        assert_eq!(hit.findings[0].rule, RuleId::S001);
    }

    #[test]
    fn forbid_attr_check() {
        let ctx = lib_ctx("crates/core/src/lib.rs");
        assert!(check_forbid_unsafe(&ctx, &lex("#![forbid(unsafe_code)]\n")).is_none());
        assert!(check_forbid_unsafe(&ctx, &lex("#![ forbid( unsafe_code ) ]\n")).is_none());
        let missing = check_forbid_unsafe(&ctx, &lex("fn f() {}\n"));
        assert_eq!(missing.map(|f| f.rule), Some(RuleId::S001));
        // The attribute inside a comment does not count.
        let commented = check_forbid_unsafe(&ctx, &lex("// #![forbid(unsafe_code)]\n"));
        assert!(commented.is_some());
    }

    #[test]
    fn tokens_in_strings_and_comments_never_fire() {
        let src = "let s = \"HashMap Instant::now panic!\"; // HashMap unwrap()\n";
        let report = check_file(&lib_ctx("crates/netsim/src/x.rs"), &lex(src));
        assert!(report.findings.is_empty());
        assert!(report.r001_lines.is_empty());
    }

    #[test]
    fn allow_names_are_stable() {
        let names = allow_names();
        for n in [
            "unordered-map",
            "wall-clock",
            "unseeded-rng",
            "node-keyed-map",
            "panic",
            "unsafe",
        ] {
            assert!(names.contains(n));
        }
    }

    #[test]
    fn d004_counts_node_keyed_maps_only() {
        assert_eq!(count_node_keyed_maps("x: BTreeMap<NodeId, SimTime>,"), 1);
        assert_eq!(count_node_keyed_maps("y: HashMap < NodeId , u32 >,"), 1);
        assert_eq!(count_node_keyed_maps("z: BTreeMap<NodeId, BTreeMap<NodeId, V>>,"), 2);
        // Keyed by something else, or NodeId only as a value/prefix.
        assert_eq!(count_node_keyed_maps("a: BTreeMap<PacketId, PacketLog>,"), 0);
        assert_eq!(count_node_keyed_maps("b: BTreeMap<Edge, Vec<NodeId>>,"), 0);
        assert_eq!(count_node_keyed_maps("c: BTreeMap<NodeIdx, V>,"), 0);
        assert_eq!(count_node_keyed_maps("d: MyBTreeMap<NodeId, V>,"), 0);
        assert_eq!(count_node_keyed_maps("e: BTreeSet<NodeId>,"), 0);
    }

    #[test]
    fn d004_is_scoped_to_sim_crate_lib_code() {
        let file = lex("let m: BTreeMap<NodeId, u32> = BTreeMap::new();\n");
        let hit = check_file(&lib_ctx("crates/netsim/src/x.rs"), &file);
        assert_eq!(hit.d004_lines, vec![1]);
        assert!(hit.findings.is_empty(), "D004 is ratcheted, not a hard finding");
        // Outside the sim crates, or outside lib code, the rule is off.
        assert!(check_file(&lib_ctx("crates/analyzer/src/x.rs"), &file)
            .d004_lines
            .is_empty());
        assert!(check_file(&lib_ctx("crates/netsim/tests/x.rs"), &file)
            .d004_lines
            .is_empty());
        assert!(check_file(&lib_ctx("crates/bench/src/lib.rs"), &file)
            .d004_lines
            .is_empty());
    }

    #[test]
    fn d004_allow_annotation_suppresses() {
        let src = "\
// simlint: allow(node-keyed-map, reason = \"cold path, sparse ids\")
let m: BTreeMap<NodeId, u32> = BTreeMap::new();
";
        let report = check_file(&lib_ctx("crates/netsim/src/x.rs"), &lex(src));
        assert!(report.d004_lines.is_empty());
        assert!(report.findings.is_empty());
    }
}
