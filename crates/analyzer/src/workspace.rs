//! Walking the workspace and assembling the full analysis.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::baseline::Baseline;
use crate::lexer::lex;
use crate::rules::{check_file, check_forbid_unsafe, classify, Finding, RuleId};

/// Everything one analysis run produced.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Hard findings (D001–D003, S001, A001), sorted by path then line.
    pub findings: Vec<Finding>,
    /// Per-library-file R001 site lines (1-based), path-sorted.
    pub r001: BTreeMap<String, Vec<usize>>,
    /// Per-sim-crate-file D004 site lines (1-based), path-sorted.
    pub d004: BTreeMap<String, Vec<usize>>,
}

impl Analysis {
    /// Current ratcheted-rule counts in baseline form.
    #[must_use]
    pub fn counts(&self) -> Baseline {
        let collect = |m: &BTreeMap<String, Vec<usize>>| {
            m.iter()
                .filter(|(_, lines)| !lines.is_empty())
                .map(|(p, lines)| (p.clone(), lines.len()))
                .collect()
        };
        Baseline {
            r001: collect(&self.r001),
            d004: collect(&self.d004),
        }
    }

    /// Compares current ratcheted-rule counts against a baseline,
    /// producing one finding per regressed file and a note per improvable
    /// file.
    #[must_use]
    pub fn ratchet(&self, baseline: &Baseline) -> (Vec<Finding>, Vec<String>) {
        let mut regressions = Vec::new();
        let mut improvements = Vec::new();
        ratchet_rule(
            RuleId::R001,
            &self.r001,
            &baseline.r001,
            "unwrap()/expect(/panic! sites in library code",
            "return a Result (RunError/BuildError/MetricsError) instead; \
             the ratchet only ever goes down",
            &mut regressions,
            &mut improvements,
        );
        ratchet_rule(
            RuleId::D004,
            &self.d004,
            &baseline.d004,
            "NodeId-keyed BTreeMap/HashMap sites in sim-crate code",
            "use netsim::dense::{DenseMap, DenseSet} instead (node ids are \
             dense indices); the ratchet only ever goes down",
            &mut regressions,
            &mut improvements,
        );
        (regressions, improvements)
    }
}

/// The per-rule half of [`Analysis::ratchet`].
#[allow(clippy::too_many_arguments)]
fn ratchet_rule(
    rule: RuleId,
    current: &BTreeMap<String, Vec<usize>>,
    tolerated: &BTreeMap<String, usize>,
    what: &str,
    help: &str,
    regressions: &mut Vec<Finding>,
    improvements: &mut Vec<String>,
) {
    for (path, lines) in current {
        let allowed = tolerated.get(path).copied().unwrap_or(0);
        let count = lines.len();
        if count > allowed {
            let at = lines
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            regressions.push(Finding {
                rule,
                path: path.clone(),
                line: lines.first().copied().unwrap_or(1),
                message: format!(
                    "{count} {what} (baseline tolerates {allowed}); sites at lines {at}"
                ),
                help: help.to_string(),
            });
        } else if count < allowed {
            improvements.push(format!(
                "{path}: {count} {rule} sites, baseline tolerates {allowed} \
                 — run `cargo run -p analyzer -- --baseline write` to ratchet down"
            ));
        }
    }
    // Baseline entries for deleted files are improvable too.
    for (path, allowed) in tolerated {
        if *allowed > 0 && !current.contains_key(path) {
            improvements.push(format!(
                "{path}: file gone or {rule}-free, baseline still tolerates {allowed}"
            ));
        }
    }
}

/// Recursively collects workspace `.rs` files, skipping build output,
/// vendored stubs, test fixture trees and VCS metadata.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let entries = std::fs::read_dir(dir)?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        paths.push(entry?.path());
    }
    paths.sort();
    for path in paths {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if matches!(name, "target" | "vendor" | "results" | "fixtures") || name.starts_with('.')
            {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Library crate roots that must carry `#![forbid(unsafe_code)]`: every
/// `crates/*/src/lib.rs` plus the workspace package's `src/lib.rs`.
fn lib_roots(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let root_lib = root.join("src/lib.rs");
    if root_lib.is_file() {
        out.push(root_lib);
    }
    let crates = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates) {
        let mut dirs: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        dirs.sort();
        for dir in dirs {
            let lib = dir.join("src/lib.rs");
            if lib.is_file() {
                out.push(lib);
            }
        }
    }
    out
}

/// Analyzes the workspace rooted at `root`.
///
/// # Errors
///
/// Fails only on I/O errors (unreadable directories or files).
pub fn analyze(root: &Path) -> std::io::Result<Analysis> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let roots = lib_roots(root);

    let mut analysis = Analysis::default();
    for path in &files {
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        let Some(ctx) = classify(&rel) else {
            continue;
        };
        let source = std::fs::read_to_string(path)?;
        let lexed = lex(&source);
        let mut report = check_file(&ctx, &lexed);
        if roots.iter().any(|r| r == path) {
            if let Some(finding) = check_forbid_unsafe(&ctx, &lexed) {
                report.findings.push(finding);
            }
        }
        analysis.findings.append(&mut report.findings);
        if !report.r001_lines.is_empty() {
            analysis.r001.insert(rel.clone(), report.r001_lines);
        }
        if !report.d004_lines.is_empty() {
            analysis.d004.insert(rel, report.d004_lines);
        }
    }
    analysis
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(analysis)
}

/// Renders one finding rustc-style.
#[must_use]
pub fn render_finding(f: &Finding) -> String {
    format!(
        "error[{}]: {}\n  --> {}:{}\n  = help: {}\n",
        f.rule, f.message, f.path, f.line, f.help
    )
}
