//! Named counters and histograms with deterministic iteration and a
//! stable text rendering.
//!
//! Names are `&'static str` so recording never allocates; the registry
//! stores them in a `BTreeMap`, so every iteration, rendering and merge
//! is in lexicographic name order — byte-identical output for identical
//! recorded values, whatever the recording order was.

use std::collections::BTreeMap;

/// A value distribution: count, sum, extremes and power-of-two buckets.
///
/// Bucket `i` counts values whose bit length is `i` (bucket 0 holds the
/// value zero), giving a log2 histogram without configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = (64 - value.leading_zeros()) as usize;
        self.buckets[bucket] += 1;
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, `None` before the first record.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, `None` before the first record.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Integer mean (sum / count), `None` before the first record.
    #[must_use]
    pub fn mean(&self) -> Option<u64> {
        (self.count > 0).then(|| self.sum / self.count)
    }

    /// The log2 bucket counts (bucket `i` = values of bit length `i`).
    #[must_use]
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
    }
}

/// Monotonically growing, deterministically ordered counters and
/// histograms.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `delta` to the counter `name` (created at zero on first use).
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        let slot = self.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// The current value of counter `name` (zero if never touched).
    #[must_use]
    pub fn counter(&self, name: &'static str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one observation into the histogram `name`.
    pub fn record(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// The histogram `name`, if anything was recorded under it.
    #[must_use]
    pub fn histogram(&self, name: &'static str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(name, value)| (*name, *value))
    }

    /// Histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(name, h)| (*name, h))
    }

    /// Folds another registry into this one (counters add, histograms
    /// merge).
    pub fn merge(&mut self, other: &Registry) {
        for (name, value) in &other.counters {
            let slot = self.counters.entry(name).or_insert(0);
            *slot = slot.saturating_add(*value);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// A stable text rendering: one line per counter, one per histogram,
    /// in name order. Identical recorded values produce identical bytes.
    #[must_use]
    pub fn render_lines(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(name);
            out.push_str(" = ");
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, h) in &self.histograms {
            out.push_str(name);
            out.push_str(": count=");
            out.push_str(&h.count.to_string());
            out.push_str(" sum=");
            out.push_str(&h.sum.to_string());
            out.push_str(" min=");
            out.push_str(&h.min().unwrap_or(0).to_string());
            out.push_str(" max=");
            out.push_str(&h.max().unwrap_or(0).to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_default_to_zero() {
        let mut r = Registry::new();
        assert_eq!(r.counter("missing"), 0);
        r.counter_add("events", 3);
        r.counter_add("events", 4);
        assert_eq!(r.counter("events"), 7);
    }

    #[test]
    fn histogram_tracks_extremes_and_buckets() {
        let mut h = Histogram::default();
        assert_eq!(h.min(), None);
        assert_eq!(h.mean(), None);
        h.record(0);
        h.record(1);
        h.record(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1001);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1000));
        assert_eq!(h.mean(), Some(333));
        assert_eq!(h.buckets()[0], 1); // the zero
        assert_eq!(h.buckets()[1], 1); // the one
        assert_eq!(h.buckets()[10], 1); // 1000 has bit length 10
    }

    #[test]
    fn rendering_is_in_name_order_regardless_of_recording_order() {
        let mut a = Registry::new();
        a.counter_add("zeta", 1);
        a.counter_add("alpha", 2);
        a.record("span_b", 5);
        a.record("span_a", 7);
        let mut b = Registry::new();
        b.record("span_a", 7);
        b.counter_add("alpha", 2);
        b.record("span_b", 5);
        b.counter_add("zeta", 1);
        assert_eq!(a.render_lines(), b.render_lines());
        assert!(a.render_lines().starts_with("alpha = 2\nzeta = 1\n"));
    }

    #[test]
    fn merge_adds_counters_and_folds_histograms() {
        let mut a = Registry::new();
        a.counter_add("c", 1);
        a.record("h", 10);
        let mut b = Registry::new();
        b.counter_add("c", 2);
        b.record("h", 2);
        b.record("h", 30);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        let h = a.histogram("h").expect("merged histogram");
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), Some(2));
        assert_eq!(h.max(), Some(30));
    }

    #[test]
    fn saturating_sums_never_wrap() {
        let mut h = Histogram::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX);
        let mut r = Registry::new();
        r.counter_add("c", u64::MAX);
        r.counter_add("c", 5);
        assert_eq!(r.counter("c"), u64::MAX);
    }
}
