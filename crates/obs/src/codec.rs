//! A small LZ77-style byte codec for golden-trace fixtures.
//!
//! Trace renderings are extremely repetitive (thousands of near-identical
//! event lines), so even this deliberately simple greedy matcher shrinks
//! them by an order of magnitude. The format is fixed so fixtures stay
//! stable across compiler and platform changes:
//!
//! ```text
//! "OBZ1"                      magic
//! varint  decompressed_len    LEB128
//! tokens:
//!   0x00 varint(len) bytes    literal run
//!   0x01 varint(dist) varint(len)   copy `len` bytes from `dist` back
//! ```
//!
//! Matches are at least [`MIN_MATCH`] bytes and may overlap the output
//! cursor (runs encode naturally). Decompression is panic-free and
//! validates every token against the declared output length.

/// Shortest back-reference worth emitting.
const MIN_MATCH: usize = 4;
/// Longest back-reference emitted by the compressor.
const MAX_MATCH: usize = 1 << 16;
/// How far back the compressor searches.
const WINDOW: usize = 1 << 16;
/// Hash-chain probes per position (caps worst-case compress time).
const MAX_PROBES: usize = 32;

const MAGIC: &[u8; 4] = b"OBZ1";

/// Why a compressed buffer could not be decoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer does not start with the `OBZ1` magic.
    BadMagic,
    /// The buffer ended inside a varint or token.
    Truncated,
    /// A token was malformed (unknown tag, zero/overlong copy, bad
    /// distance) or the output did not match the declared length.
    Corrupt,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => f.write_str("not an OBZ1 stream"),
            CodecError::Truncated => f.write_str("truncated OBZ1 stream"),
            CodecError::Corrupt => f.write_str("corrupt OBZ1 stream"),
        }
    }
}

impl std::error::Error for CodecError {}

fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(CodecError::Corrupt);
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(CodecError::Corrupt);
        }
    }
}

fn hash3(data: &[u8], i: usize) -> usize {
    let a = data[i] as u32;
    let b = data[i + 1] as u32;
    let c = data[i + 2] as u32;
    let key = a | (b << 8) | (c << 16);
    (key.wrapping_mul(2654435761) >> 17) as usize & (HASH_SLOTS - 1)
}

const HASH_SLOTS: usize = 1 << 15;

/// Compresses `input` into a self-describing `OBZ1` buffer.
#[must_use]
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 4 + 16);
    out.extend_from_slice(MAGIC);
    push_varint(&mut out, input.len() as u64);

    // head[h] = most recent position with hash h; prev[i] = previous
    // position sharing position i's hash. usize::MAX = empty.
    let mut head = vec![usize::MAX; HASH_SLOTS];
    let mut prev = vec![usize::MAX; input.len()];

    let mut literal_start = 0usize;
    let mut i = 0usize;

    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut from = from;
        while from < to {
            let len = (to - from).min(MAX_MATCH);
            out.push(0x00);
            push_varint(out, len as u64);
            out.extend_from_slice(&input[from..from + len]);
            from += len;
        }
    };

    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash3(input, i);
            let mut candidate = head[h];
            let mut probes = 0usize;
            while candidate != usize::MAX && probes < MAX_PROBES && i - candidate <= WINDOW {
                let limit = (input.len() - i).min(MAX_MATCH);
                let mut len = 0usize;
                while len < limit && input[candidate + len] == input[i + len] {
                    len += 1;
                }
                if len > best_len {
                    best_len = len;
                    best_dist = i - candidate;
                    if len == limit {
                        break;
                    }
                }
                candidate = prev[candidate];
                probes += 1;
            }
            prev[i] = head[h];
            head[h] = i;
        }

        if best_len >= MIN_MATCH {
            flush_literals(&mut out, literal_start, i);
            out.push(0x01);
            push_varint(&mut out, best_dist as u64);
            push_varint(&mut out, best_len as u64);
            // Index the skipped positions so later matches can refer into
            // this region too.
            let end = i + best_len;
            let mut j = i + 1;
            while j < end && j + MIN_MATCH <= input.len() {
                let h = hash3(input, j);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i = end;
            literal_start = i;
        } else {
            i += 1;
        }
    }
    flush_literals(&mut out, literal_start, input.len());
    out
}

/// Decompresses an `OBZ1` buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let mut pos = MAGIC.len();
    let expected = read_varint(data, &mut pos)?;
    let expected = usize::try_from(expected).map_err(|_| CodecError::Corrupt)?;
    // Each stream byte can expand to at most MAX_MATCH output bytes, so
    // a larger declared length cannot be honest — reject it before
    // allocating.
    if expected > data.len().saturating_mul(MAX_MATCH) {
        return Err(CodecError::Corrupt);
    }
    let mut out: Vec<u8> = Vec::with_capacity(expected.min(1 << 24));

    while pos < data.len() {
        let tag = data[pos];
        pos += 1;
        match tag {
            0x00 => {
                let len = read_varint(data, &mut pos)?;
                let len = usize::try_from(len).map_err(|_| CodecError::Corrupt)?;
                if len == 0 {
                    return Err(CodecError::Corrupt);
                }
                let end = pos.checked_add(len).ok_or(CodecError::Corrupt)?;
                if end > data.len() {
                    return Err(CodecError::Truncated);
                }
                if out.len() + len > expected {
                    return Err(CodecError::Corrupt);
                }
                out.extend_from_slice(&data[pos..end]);
                pos = end;
            }
            0x01 => {
                let dist = read_varint(data, &mut pos)?;
                let len = read_varint(data, &mut pos)?;
                let dist = usize::try_from(dist).map_err(|_| CodecError::Corrupt)?;
                let len = usize::try_from(len).map_err(|_| CodecError::Corrupt)?;
                if dist == 0 || len == 0 || dist > out.len() {
                    return Err(CodecError::Corrupt);
                }
                if out.len() + len > expected {
                    return Err(CodecError::Corrupt);
                }
                // Byte-by-byte copy: overlapping matches (dist < len)
                // replicate the run, exactly as the compressor assumed.
                let start = out.len() - dist;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            }
            _ => return Err(CodecError::Corrupt),
        }
    }

    if out.len() != expected {
        return Err(CodecError::Corrupt);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(input: &[u8]) {
        let packed = compress(input);
        let unpacked = decompress(&packed).expect("round trip");
        assert_eq!(unpacked, input);
    }

    #[test]
    fn round_trips_edge_cases() {
        round_trip(b"");
        round_trip(b"x");
        round_trip(b"abc");
        round_trip(b"abcd");
        round_trip(&[0u8; 10_000]);
    }

    #[test]
    fn round_trips_repetitive_text_and_shrinks_it() {
        let mut text = String::new();
        for i in 0..500 {
            text.push_str(&format!(
                "PacketDelivered time=1{i:06}000 id=p{i} node=n42 hops=6\n"
            ));
        }
        let input = text.as_bytes();
        let packed = compress(input);
        assert!(
            packed.len() < input.len() / 3,
            "expected >3x shrink, got {} -> {}",
            input.len(),
            packed.len()
        );
        round_trip(input);
    }

    #[test]
    fn round_trips_pseudorandom_bytes() {
        // xorshift so the test is deterministic without a clock or RNG dep.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut data = Vec::with_capacity(4096);
        for _ in 0..4096 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            data.push((state >> 32) as u8);
        }
        round_trip(&data);
    }

    #[test]
    fn compression_is_deterministic() {
        let input = b"the quick brown fox jumps over the lazy dog, the quick brown fox";
        assert_eq!(compress(input), compress(input));
    }

    #[test]
    fn rejects_malformed_streams() {
        assert_eq!(decompress(b"nope"), Err(CodecError::BadMagic));
        assert_eq!(decompress(b"OBZ1"), Err(CodecError::Truncated));
        // Declared length 5 but no tokens.
        assert_eq!(decompress(b"OBZ1\x05"), Err(CodecError::Corrupt));
        // Unknown tag.
        assert_eq!(decompress(b"OBZ1\x01\x07"), Err(CodecError::Corrupt));
        // Literal run longer than the stream.
        assert_eq!(decompress(b"OBZ1\x05\x00\x05ab"), Err(CodecError::Truncated));
        // Match before any output exists.
        assert_eq!(
            decompress(b"OBZ1\x04\x01\x01\x04"),
            Err(CodecError::Corrupt)
        );
        // Valid prefix, then garbage tag.
        let mut buf = compress(b"hello hello hello hello").to_vec();
        buf.push(0x7f);
        assert_eq!(decompress(&buf), Err(CodecError::Corrupt));
    }

    #[test]
    fn overlapping_match_replicates_runs() {
        // "OBZ1", len 8, literal "ab", match dist=2 len=6 -> "abababab".
        let mut buf = Vec::new();
        buf.extend_from_slice(b"OBZ1");
        buf.push(8);
        buf.extend_from_slice(&[0x00, 0x02]);
        buf.extend_from_slice(b"ab");
        buf.extend_from_slice(&[0x01, 0x02, 0x06]);
        assert_eq!(decompress(&buf).expect("overlap"), b"abababab");
    }
}
