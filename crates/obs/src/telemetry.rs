//! Per-run telemetry records and their JSONL rendering.
//!
//! One [`RunTelemetry`] is emitted per sweep slot — completed or failed —
//! and rendered as one JSON line with a fixed key order. All numeric
//! fields are integers, so the rendering is byte-deterministic for a
//! fixed seed and independent of the worker-thread count (rows are
//! assembled in slot order by the sweep drivers).

/// Everything a sweep records about one run slot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RunTelemetry {
    /// Caller-assigned context, e.g. `"fig3/dbf/d4"`. Empty when emitted
    /// below the bench layer.
    pub label: String,
    /// Slot index within the sweep.
    pub slot: u64,
    /// The slot's base seed (before retry reseeding).
    pub seed: u64,
    /// Attempts consumed, the first included (> 1 after retries).
    pub attempts: u32,
    /// Whether the slot produced a usable run.
    pub ok: bool,
    /// Routing protocol under test.
    pub protocol: String,
    /// Engine events processed.
    pub events_processed: u64,
    /// Event-calendar high-water mark (peak pending events).
    pub queue_high_water: u64,
    /// Control messages offered to links.
    pub control_messages: u64,
    /// Control bytes offered to links.
    pub control_bytes: u64,
    /// Reliable-transport retransmissions forced by impairment loss.
    pub control_retransmits: u64,
    /// Data packets injected.
    pub packets_injected: u64,
    /// Data packets delivered.
    pub packets_delivered: u64,
    /// Data packets dropped.
    pub packets_dropped: u64,
    /// 1 if the run was aborted by the event-budget watchdog.
    pub watchdog_trips: u32,
    /// Rendered error of a failed slot; empty when `ok`.
    pub error: String,
}

impl RunTelemetry {
    /// Renders the record as one JSON object line (no trailing newline),
    /// with a fixed key order.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                "{{\"label\":\"{label}\",\"slot\":{slot},\"seed\":{seed},",
                "\"attempts\":{attempts},\"ok\":{ok},\"protocol\":\"{protocol}\",",
                "\"events_processed\":{events},\"queue_high_water\":{qhw},",
                "\"control_messages\":{cmsg},\"control_bytes\":{cbytes},",
                "\"control_retransmits\":{cretx},\"packets_injected\":{pin},",
                "\"packets_delivered\":{pdel},\"packets_dropped\":{pdrop},",
                "\"watchdog_trips\":{wd},\"error\":\"{error}\"}}"
            ),
            label = escape_json(&self.label),
            slot = self.slot,
            seed = self.seed,
            attempts = self.attempts,
            ok = self.ok,
            protocol = escape_json(&self.protocol),
            events = self.events_processed,
            qhw = self.queue_high_water,
            cmsg = self.control_messages,
            cbytes = self.control_bytes,
            cretx = self.control_retransmits,
            pin = self.packets_injected,
            pdel = self.packets_delivered,
            pdrop = self.packets_dropped,
            wd = self.watchdog_trips,
            error = escape_json(&self.error),
        )
    }
}

/// Renders records as JSONL: one line each, trailing newline after the
/// last. Empty input renders as the empty string.
#[must_use]
pub fn render_jsonl(rows: &[RunTelemetry]) -> String {
    let mut out = String::new();
    for row in rows {
        out.push_str(&row.to_json_line());
        out.push('\n');
    }
    out
}

/// Escapes a string for embedding in a JSON string literal.
#[must_use]
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let b = c as u32;
                for shift in [4u32, 0] {
                    let nibble = (b >> shift) & 0xf;
                    let digit = char::from_digit(nibble, 16).unwrap_or('0');
                    out.push(digit);
                }
            }
            c => out.push(c),
        }
    }
    out
}

/// Extracts the integer value of `"key":<number>` from a telemetry JSON
/// line (the hand-rolled reader used by `run_all` to aggregate per-bin
/// telemetry into the manifest).
#[must_use]
pub fn field_u64(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

/// Extracts the boolean value of `"key":true|false` from a telemetry
/// JSON line.
#[must_use]
pub fn field_bool(line: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\":");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunTelemetry {
        RunTelemetry {
            label: "fig3/dbf/d4".to_string(),
            slot: 7,
            seed: 20030622,
            attempts: 2,
            ok: true,
            protocol: "dbf".to_string(),
            events_processed: 123_456,
            queue_high_water: 890,
            control_messages: 4321,
            control_bytes: 99_000,
            control_retransmits: 3,
            packets_injected: 1000,
            packets_delivered: 950,
            packets_dropped: 50,
            watchdog_trips: 0,
            error: String::new(),
        }
    }

    #[test]
    fn json_line_has_fixed_key_order_and_round_trips_fields() {
        let line = sample().to_json_line();
        assert!(line.starts_with("{\"label\":\"fig3/dbf/d4\",\"slot\":7,"));
        assert!(line.ends_with("\"watchdog_trips\":0,\"error\":\"\"}"));
        assert_eq!(field_u64(&line, "seed"), Some(20030622));
        assert_eq!(field_u64(&line, "events_processed"), Some(123_456));
        assert_eq!(field_u64(&line, "queue_high_water"), Some(890));
        assert_eq!(field_bool(&line, "ok"), Some(true));
        assert_eq!(field_u64(&line, "missing"), None);
        assert_eq!(field_bool(&line, "missing"), None);
    }

    #[test]
    fn jsonl_rendering_is_one_line_per_row() {
        let rows = vec![sample(), sample()];
        let text = render_jsonl(&rows);
        assert_eq!(text.lines().count(), 2);
        assert!(text.ends_with('\n'));
        assert_eq!(render_jsonl(&[]), "");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape_json("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape_json("x\ny"), "x\\ny");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        let mut t = sample();
        t.error = "panicked: \"boom\"".to_string();
        assert!(t.to_json_line().contains("\\\"boom\\\""));
    }

    #[test]
    fn identical_rows_render_identical_bytes() {
        assert_eq!(sample().to_json_line(), sample().to_json_line());
    }
}
