//! # obs — deterministic observability for the simulation workspace
//!
//! A zero-dependency layer of spans, counters and run telemetry threaded
//! through the simulator, the experiment harness and the bench binaries.
//! Everything it records is a pure function of the instrumented program's
//! behaviour plus an injected time source, so observability output is as
//! reproducible as the simulation itself:
//!
//! - [`span::Recorder`] measures hierarchical spans with exclusive-time
//!   attribution against an injected [`clock::TimeSource`] — simulated
//!   time by default (deterministic), or an external wall clock injected
//!   by benchmarking code (this crate never reads the system clock
//!   itself, keeping the determinism lint clean).
//! - [`metrics::Registry`] holds named counters and histograms in
//!   deterministic (lexicographic) order with a stable text rendering.
//! - [`telemetry::RunTelemetry`] is the per-run record sweeps emit into
//!   `results/telemetry.jsonl`: integer-only fields and a fixed JSON key
//!   order make the rendering byte-deterministic for a fixed seed,
//!   regardless of worker-thread count.
//! - [`progress::Progress`] is a lock-free live progress tracker for
//!   parallel sweeps.
//! - [`codec`] is a small LZ77-style compressor used to store golden
//!   trace fixtures compactly.
//!
//! The crate deliberately depends on nothing — not even the workspace's
//! vendored stubs — so every layer (netsim upward) can use it without
//! dependency cycles.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod clock;
pub mod codec;
pub mod metrics;
pub mod progress;
pub mod span;
pub mod telemetry;

/// Measures `$body` as a span named `$name` on `$recorder`
/// (`&mut` [`span::Recorder`]), yielding the body's value.
///
/// With the `record` feature disabled (`--no-default-features`) the macro
/// expands to the body alone — the instrumented hot path costs zero
/// instructions.
///
/// # Examples
///
/// ```
/// let mut rec = obs::span::Recorder::manual();
/// rec.set_time(0);
/// let out = obs::span!(&mut rec, "protocol_step", { 2 + 2 });
/// assert_eq!(out, 4);
/// assert_eq!(rec.calls("protocol_step"), 1);
/// ```
/// `$recorder` is evaluated twice (once for enter, once for exit), so it
/// should be a place expression like `&mut rec` — which also leaves the
/// recorder free for use inside the body.
#[cfg(feature = "record")]
#[macro_export]
macro_rules! span {
    ($recorder:expr, $name:expr, $body:expr) => {{
        $crate::span::Recorder::enter($recorder, $name);
        let __obs_out = $body;
        $crate::span::Recorder::exit($recorder);
        __obs_out
    }};
}

/// Measures `$body` as a span named `$name` (disabled build: expands to
/// the body alone).
#[cfg(not(feature = "record"))]
#[macro_export]
macro_rules! span {
    ($recorder:expr, $name:expr, $body:expr) => {{
        $body
    }};
}

#[cfg(test)]
mod tests {
    #[test]
    fn span_macro_yields_the_body_value() {
        let mut rec = crate::span::Recorder::manual();
        rec.set_time(10);
        let v = crate::span!(&mut rec, "outer", {
            rec.set_time(25);
            7u32
        });
        assert_eq!(v, 7);
        #[cfg(feature = "record")]
        assert_eq!(rec.exclusive_ns("outer"), 15);
    }
}
