//! Hierarchical spans with exclusive-time attribution.
//!
//! A [`Recorder`] maintains a span stack over an injected
//! [`TimeSource`]. Closing a span records its *exclusive* time — total
//! minus the time spent in nested spans — into the registry histogram of
//! the span's name, so a set of phase spans partitions the measured time
//! without double counting. With a manual (simulated-time) source the
//! recording is byte-deterministic; an external wall-clock source turns
//! the same instrumentation into a profiler.

use crate::clock::TimeSource;
use crate::metrics::Registry;

/// Span name: one engine event being dispatched (the event loop body,
/// exclusive of the nested phases below).
pub const EVENT_DISPATCH: &str = "event_dispatch";
/// Span name: a routing-protocol or application handler running.
pub const PROTOCOL_PROCESSING: &str = "protocol_processing";
/// Span name: appending records to the run trace.
pub const TRACE_RECORDING: &str = "trace_recording";
/// Span name: folding a finished run's trace into its metrics.
pub const METRIC_FOLDING: &str = "metric_folding";

#[derive(Debug)]
struct Frame {
    name: &'static str,
    start: u64,
    /// Total (inclusive) nanoseconds spent in already-closed child spans.
    child: u64,
}

/// Records hierarchical spans and counters against an injected clock.
#[derive(Debug)]
pub struct Recorder {
    clock: TimeSource,
    registry: Registry,
    stack: Vec<Frame>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::manual()
    }
}

impl Recorder {
    /// A recorder over a manual (deterministic) time source starting at
    /// zero. The instrumented code advances it with
    /// [`Recorder::set_time`].
    #[must_use]
    pub fn manual() -> Self {
        Recorder::with_clock(TimeSource::manual())
    }

    /// A recorder over an external nanosecond closure (a wall clock owned
    /// by bench code).
    #[must_use]
    pub fn external(f: Box<dyn Fn() -> u64 + Send>) -> Self {
        Recorder::with_clock(TimeSource::external(f))
    }

    /// A recorder over an explicit time source.
    #[must_use]
    pub fn with_clock(clock: TimeSource) -> Self {
        Recorder {
            clock,
            registry: Registry::new(),
            stack: Vec::with_capacity(8),
        }
    }

    /// Advances a manual clock to `nanos` (no-op for external clocks).
    pub fn set_time(&mut self, nanos: u64) {
        self.clock.set(nanos);
    }

    /// The clock's current reading.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Opens a span named `name` at the current time.
    pub fn enter(&mut self, name: &'static str) {
        let start = self.clock.now();
        self.stack.push(Frame {
            name,
            start,
            child: 0,
        });
    }

    /// Closes the innermost span, recording its exclusive time into the
    /// histogram of its name. Closing with an empty stack is a no-op, so
    /// unbalanced instrumentation degrades instead of failing.
    pub fn exit(&mut self) {
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let total = self.clock.now().saturating_sub(frame.start);
        let exclusive = total.saturating_sub(frame.child);
        self.registry.record(frame.name, exclusive);
        if let Some(parent) = self.stack.last_mut() {
            parent.child = parent.child.saturating_add(total);
        }
    }

    /// Current span nesting depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Total exclusive nanoseconds recorded under span `name`.
    #[must_use]
    pub fn exclusive_ns(&self, name: &'static str) -> u64 {
        self.registry.histogram(name).map_or(0, |h| h.sum())
    }

    /// How many spans named `name` have closed.
    #[must_use]
    pub fn calls(&self, name: &'static str) -> u64 {
        self.registry.histogram(name).map_or(0, |h| h.count())
    }

    /// The underlying counter/histogram registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Mutable access to the registry (for counters recorded alongside
    /// spans).
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_time_subtracts_children() {
        let mut r = Recorder::manual();
        r.set_time(0);
        r.enter("outer");
        r.set_time(10);
        r.enter("inner");
        r.set_time(30);
        r.exit(); // inner: 20 exclusive
        r.set_time(35);
        r.exit(); // outer: 35 total - 20 child = 15 exclusive
        assert_eq!(r.exclusive_ns("inner"), 20);
        assert_eq!(r.exclusive_ns("outer"), 15);
        assert_eq!(r.calls("outer"), 1);
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn sibling_children_accumulate_into_the_parent() {
        let mut r = Recorder::manual();
        r.enter("outer");
        for t in [10u64, 20, 30, 40] {
            r.set_time(t.saturating_sub(10));
            r.enter("child");
            r.set_time(t);
            r.exit();
        }
        r.set_time(50);
        r.exit();
        // Four 10 ns children cover [0, 40); the parent keeps [40, 50).
        assert_eq!(r.calls("child"), 4);
        assert_eq!(r.exclusive_ns("child"), 40);
        assert_eq!(r.exclusive_ns("outer"), 10);
    }

    #[test]
    fn unbalanced_exit_is_a_noop() {
        let mut r = Recorder::manual();
        r.exit();
        assert_eq!(r.depth(), 0);
        assert!(r.registry().render_lines().is_empty());
    }

    #[test]
    fn deterministic_rendering_for_identical_histories() {
        let record = || {
            let mut r = Recorder::manual();
            for i in 0..100u64 {
                r.set_time(i * 10);
                r.enter(EVENT_DISPATCH);
                r.set_time(i * 10 + 3);
                r.enter(PROTOCOL_PROCESSING);
                r.set_time(i * 10 + 7);
                r.exit();
                r.exit();
            }
            r.registry().render_lines()
        };
        assert_eq!(record(), record());
    }

    #[test]
    fn external_clock_is_read_through() {
        let mut r = Recorder::external(Box::new(|| 42));
        assert_eq!(r.now(), 42);
        r.enter("x");
        r.exit();
        assert_eq!(r.exclusive_ns("x"), 0);
        assert_eq!(r.calls("x"), 1);
    }
}
