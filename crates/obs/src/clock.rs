//! Injected time sources.
//!
//! This crate never reads the system clock: time is *fed in*. The default
//! [`TimeSource::Manual`] is advanced explicitly by the instrumented code
//! (the simulator feeds it simulated nanoseconds), so recordings are
//! byte-deterministic. Benchmarking code may inject an external closure
//! (backed by a wall clock *in the caller's crate*) for real-time
//! profiling — the nondeterminism then lives where it is expected, and
//! the determinism lint keeps it out of simulation crates.

/// A monotonic nanosecond source.
pub enum TimeSource {
    /// Explicitly advanced time (simulated nanoseconds). Deterministic.
    Manual(u64),
    /// An injected closure returning nanoseconds (a wall clock owned by
    /// bench code). [`TimeSource::set`] is a no-op in this mode.
    External(Box<dyn Fn() -> u64 + Send>),
}

impl TimeSource {
    /// A manual source starting at zero.
    #[must_use]
    pub fn manual() -> Self {
        TimeSource::Manual(0)
    }

    /// Wraps an external nanosecond closure.
    #[must_use]
    pub fn external(f: Box<dyn Fn() -> u64 + Send>) -> Self {
        TimeSource::External(f)
    }

    /// The current reading in nanoseconds.
    #[must_use]
    pub fn now(&self) -> u64 {
        match self {
            TimeSource::Manual(t) => *t,
            TimeSource::External(f) => f(),
        }
    }

    /// Advances a manual source to `nanos` (never backwards); no-op for
    /// external sources.
    pub fn set(&mut self, nanos: u64) {
        if let TimeSource::Manual(t) = self {
            if nanos > *t {
                *t = nanos;
            }
        }
    }

    /// Returns `true` for the deterministic manual mode.
    #[must_use]
    pub fn is_manual(&self) -> bool {
        matches!(self, TimeSource::Manual(_))
    }
}

impl std::fmt::Debug for TimeSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeSource::Manual(t) => f.debug_tuple("Manual").field(t).finish(),
            TimeSource::External(_) => f.write_str("External(..)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_source_advances_monotonically() {
        let mut c = TimeSource::manual();
        assert!(c.is_manual());
        assert_eq!(c.now(), 0);
        c.set(50);
        assert_eq!(c.now(), 50);
        c.set(20); // never backwards
        assert_eq!(c.now(), 50);
    }

    #[test]
    fn external_source_reads_the_closure() {
        let mut c = TimeSource::external(Box::new(|| 1234));
        assert!(!c.is_manual());
        assert_eq!(c.now(), 1234);
        c.set(9999); // ignored
        assert_eq!(c.now(), 1234);
    }

    #[test]
    fn debug_formats_both_modes() {
        assert_eq!(format!("{:?}", TimeSource::Manual(3)), "Manual(3)");
        assert_eq!(
            format!("{:?}", TimeSource::external(Box::new(|| 0))),
            "External(..)"
        );
    }
}
