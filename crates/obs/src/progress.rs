//! Live progress tracking for parallel sweeps.
//!
//! [`Progress`] is shared by reference across sweep workers: each worker
//! flips its slot done with a relaxed atomic store, and whoever wants to
//! report reads a consistent-enough snapshot with [`Progress::render`].
//! The tracker itself never touches a clock — the caller passes elapsed
//! wall nanoseconds in (bench code owns the wall clock, keeping the
//! determinism lint satisfied).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Lock-free completion tracker for a fixed set of run slots.
#[derive(Debug)]
pub struct Progress {
    total: usize,
    done: AtomicUsize,
    slots: Vec<AtomicBool>,
}

impl Progress {
    /// A tracker for `total` slots, all pending.
    #[must_use]
    pub fn new(total: usize) -> Self {
        let mut slots = Vec::with_capacity(total);
        for _ in 0..total {
            slots.push(AtomicBool::new(false));
        }
        Progress {
            total,
            done: AtomicUsize::new(0),
            slots,
        }
    }

    /// Number of slots tracked.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of slots completed so far.
    #[must_use]
    pub fn done(&self) -> usize {
        self.done.load(Ordering::Relaxed).min(self.total)
    }

    /// Marks slot `index` complete (idempotent; out-of-range is ignored)
    /// and returns the new completion count.
    pub fn mark_done(&self, index: usize) -> usize {
        let Some(slot) = self.slots.get(index) else {
            return self.done();
        };
        if slot.swap(true, Ordering::Relaxed) {
            return self.done();
        }
        let previous = self.done.fetch_add(1, Ordering::Relaxed);
        (previous + 1).min(self.total)
    }

    /// Whether slot `index` has completed.
    #[must_use]
    pub fn is_done(&self, index: usize) -> bool {
        self.slots
            .get(index)
            .is_some_and(|slot| slot.load(Ordering::Relaxed))
    }

    /// One-line status: completion ratio, percentage, a slot strip for
    /// small sweeps and — when the caller supplies elapsed wall
    /// nanoseconds and at least one slot has finished — a linear ETA.
    #[must_use]
    pub fn render(&self, label: &str, elapsed_ns: Option<u64>) -> String {
        let done = self.done();
        let total = self.total.max(1);
        let percent = done * 100 / total;
        let mut line = format!("{label}: {done}/{} ({percent}%)", self.total);
        if self.total <= 64 {
            line.push_str(" [");
            for slot in &self.slots {
                line.push(if slot.load(Ordering::Relaxed) {
                    '#'
                } else {
                    '.'
                });
            }
            line.push(']');
        }
        if let Some(elapsed) = elapsed_ns {
            if done > 0 && done < self.total {
                let per_slot = elapsed / done as u64;
                let remaining = per_slot.saturating_mul((self.total - done) as u64);
                line.push_str(&format!(" eta {}s", remaining / 1_000_000_000));
            }
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marking_slots_counts_each_once() {
        let p = Progress::new(3);
        assert_eq!(p.done(), 0);
        assert_eq!(p.mark_done(1), 1);
        assert_eq!(p.mark_done(1), 1); // idempotent
        assert_eq!(p.mark_done(0), 2);
        assert_eq!(p.mark_done(99), 2); // out of range ignored
        assert!(p.is_done(1));
        assert!(!p.is_done(2));
    }

    #[test]
    fn render_shows_ratio_strip_and_eta() {
        let p = Progress::new(4);
        p.mark_done(0);
        p.mark_done(2);
        let line = p.render("fig3", Some(8_000_000_000));
        // 2 done in 8 s -> 4 s/slot -> 2 remaining slots -> 8 s ETA.
        assert_eq!(line, "fig3: 2/4 (50%) [#.#.] eta 8s");
    }

    #[test]
    fn render_omits_eta_when_unknowable() {
        let p = Progress::new(2);
        assert_eq!(p.render("x", Some(5)), "x: 0/2 (0%) [..]");
        p.mark_done(0);
        p.mark_done(1);
        assert_eq!(p.render("x", Some(5)), "x: 2/2 (100%) [##]");
        assert_eq!(p.render("x", None), "x: 2/2 (100%) [##]");
    }

    #[test]
    fn large_sweeps_skip_the_slot_strip() {
        let p = Progress::new(100);
        p.mark_done(0);
        assert_eq!(p.render("big", None), "big: 1/100 (1%)");
    }

    #[test]
    fn concurrent_marks_are_counted_exactly() {
        let p = Progress::new(64);
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let p = &p;
                scope.spawn(move || {
                    for i in (worker..64).step_by(4) {
                        p.mark_done(i);
                    }
                });
            }
        });
        assert_eq!(p.done(), 64);
    }
}
