//! Plugging a user-defined routing protocol into the harness.
//!
//! Implements "hot-standby" — a deliberately naive distance vector that
//! keeps one precomputed backup next hop per destination and switches to
//! it blindly on failure, without any poisoned-reverse validity checking —
//! then runs it through the same experiment as the paper's protocols.
//!
//! ```text
//! cargo run --release --example custom_protocol
//! ```

use convergence::experiment::ProtocolFactory;
use convergence::prelude::*;
use netsim::ident::NodeId;
use netsim::protocol::{Payload, RoutingProtocol, TimerToken};
use netsim::simulator::ProtocolContext;
use netsim::time::SimDuration;
use routing_core::message::{pack_entries, DvEntry, DvMessage};
use routing_core::metric::Metric;
use std::collections::BTreeMap;
use topology::mesh::MeshDegree;

/// Per-destination primary and backup next hops.
#[derive(Debug, Default, Clone, Copy)]
struct Pair {
    primary: Option<(NodeId, Metric)>,
    backup: Option<(NodeId, Metric)>,
}

/// A toy protocol: periodic full-table exchange, no split horizon, no
/// triggered updates; remembers the two best offers per destination and
/// fails over blindly.
#[derive(Debug, Default)]
struct HotStandby {
    table: BTreeMap<NodeId, Pair>,
}

const PERIODIC: u64 = 1;

impl HotStandby {
    fn reinstall(&self, ctx: &mut ProtocolContext<'_>, dest: NodeId) {
        let pair = self.table.get(&dest).copied().unwrap_or_default();
        let choice = [pair.primary, pair.backup]
            .into_iter()
            .flatten()
            .find(|&(nh, _)| ctx.neighbor_up(nh));
        match choice {
            Some((nh, _)) => ctx.install_route(dest, nh),
            None => ctx.remove_route(dest),
        }
    }
}

impl RoutingProtocol for HotStandby {
    fn name(&self) -> &'static str {
        "hot-standby"
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn on_start(&mut self, ctx: &mut ProtocolContext<'_>) {
        let first = ctx
            .rng()
            .gen_duration(SimDuration::ZERO, SimDuration::from_secs(5));
        ctx.set_timer(first, TimerToken::compose(PERIODIC, 0));
    }

    fn on_timer(&mut self, ctx: &mut ProtocolContext<'_>, _token: TimerToken) {
        // Advertise our own distance vector (self = 0, learned = stored).
        let mut entries = vec![DvEntry {
            dest: ctx.node(),
            metric: Metric::ZERO,
        }];
        entries.extend(self.table.iter().filter_map(|(&dest, pair)| {
            pair.primary.map(|(_, m)| DvEntry { dest, metric: m })
        }));
        for neighbor in ctx.neighbors() {
            if ctx.neighbor_up(neighbor) {
                for message in pack_entries(entries.clone()) {
                    ctx.send(neighbor, std::sync::Arc::new(message));
                }
            }
        }
        ctx.set_timer(SimDuration::from_secs(5), TimerToken::compose(PERIODIC, 0));
    }

    fn on_message(&mut self, ctx: &mut ProtocolContext<'_>, from: NodeId, payload: &dyn Payload) {
        let Some(message) = payload.as_any().downcast_ref::<DvMessage>() else {
            return;
        };
        for entry in &message.entries {
            if entry.dest == ctx.node() || !entry.metric.is_finite() {
                continue;
            }
            let offered = entry.metric + ctx.link_cost(from);
            let pair = self.table.entry(entry.dest).or_default();
            // Keep the best two distinct next hops.
            match pair.primary {
                Some((nh, m)) if nh == from => {
                    pair.primary = Some((from, offered));
                    let _ = m;
                }
                Some((nh, m)) if offered < m => {
                    pair.backup = Some((nh, m));
                    pair.primary = Some((from, offered));
                }
                Some(_) => match pair.backup {
                    Some((bh, bm)) if bh != from && offered >= bm => {}
                    _ => pair.backup = Some((from, offered)),
                },
                None => pair.primary = Some((from, offered)),
            }
            self.reinstall(ctx, entry.dest);
        }
    }

    fn on_link_down(&mut self, ctx: &mut ProtocolContext<'_>, _neighbor: NodeId) {
        let dests: Vec<NodeId> = self.table.keys().copied().collect();
        for dest in dests {
            self.reinstall(ctx, dest);
        }
    }
}

fn main() -> Result<(), RunError> {
    println!("custom protocol vs the paper's family, degree 4, 10 runs\n");
    let mut rows = Vec::new();
    for (label, protocol, factory) in [
        ("DBF", ProtocolKind::Dbf, None),
        ("RIP", ProtocolKind::Rip, None),
        (
            "hot-standby",
            ProtocolKind::Dbf, // placeholder kind; override supplies instances
            Some(ProtocolFactory::new(|| {
                Box::new(HotStandby::default()) as Box<dyn RoutingProtocol>
            })),
        ),
    ] {
        let mut delivered = 0u64;
        let mut injected = 0u64;
        let mut loops = 0u64;
        for seed in 0..10u64 {
            let mut cfg = ExperimentConfig::paper(protocol, MeshDegree::D4, 900 + seed);
            cfg.protocol_override = factory.clone();
            let result = run(&cfg)?;
            let s = summarize(&result)?;
            delivered += s.delivered;
            injected += s.injected;
            loops += s.looped_packets;
        }
        rows.push((label, delivered as f64 / injected as f64, loops));
    }
    for (label, ratio, loops) in rows {
        println!("{label:>12}: delivery {:.2}%  looped packets {loops}", ratio * 100.0);
    }
    println!();
    println!("Blind failover without validity checking can forward into stale");
    println!("or looping paths — exactly the trade-off the paper's §4.2 warns");
    println!("about when alternate paths are used without a valid-path check.");
    Ok(())
}
