//! Run all six protocols through the identical failure scenario and print
//! a side-by-side scorecard — the whole study in one table.
//!
//! ```text
//! cargo run --release --example compare_all [degree] [runs]
//! ```

use convergence::prelude::*;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

fn main() -> Result<(), RunError> {
    let degree = std::env::args()
        .nth(1)
        .map(|a| {
            MeshDegree::try_from_u32(a.parse().expect("degree must be a number"))
                .expect("degree must be 3..=8")
        })
        .unwrap_or(MeshDegree::D4);
    let runs: usize = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("runs must be a number"))
        .unwrap_or(10);

    println!("all protocols, degree {degree}, {runs} runs each (identical scenarios)\n");
    let mut table = Table::new(
        [
            "protocol",
            "delivery %",
            "no-route",
            "ttl",
            "switch-over(s)",
            "fwdconv(s)",
            "rtconv(s)",
            "msgs",
        ]
        .map(String::from)
        .to_vec(),
    );
    for protocol in ProtocolKind::ALL {
        let summaries: Vec<RunSummary> = (0..runs)
            .map(|i| {
                let cfg = ExperimentConfig::paper(protocol, degree, 4242 + i as u64);
                run(&cfg).and_then(|r| summarize(&r).map_err(RunError::from))
            })
            .collect::<Result<_, _>>()?;
        let point = convergence::aggregate::aggregate_point(&summaries)?;
        table.push_row(vec![
            protocol.label().to_string(),
            format!("{:.2}", 100.0 * point.delivery_ratio.mean),
            fmt_f64(point.drops_no_route.mean),
            fmt_f64(point.ttl_expirations.mean),
            fmt_f64(point.max_switchover_s.mean),
            fmt_f64(point.forwarding_convergence_s.mean),
            fmt_f64(point.routing_convergence_s.mean),
            fmt_f64(point.control_messages.mean),
        ]);
    }
    println!("{}", table.render());
    println!("Reading guide: RIP pays for statelessness in switch-over time and");
    println!("drops; BGP pays for its 30 s MRAI in convergence time and (sparse)");
    println!("loops; DBF/BGP-3 ride cached alternates; SPF floods and recomputes");
    println!("in milliseconds; DUAL never loops but freezes during diffusion.");
    Ok(())
}
