//! A miniature Figure 3: sweep node degree for every protocol and watch
//! the connectivity-vs-delivery relationship emerge.
//!
//! ```text
//! cargo run --release --example degree_sweep [runs-per-point]
//! ```

use convergence::aggregate::aggregate_point;
use convergence::prelude::*;
use convergence::report::{fmt_f64, Table};
use topology::mesh::MeshDegree;

fn main() -> Result<(), RunError> {
    let runs: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("runs must be a number"))
        .unwrap_or(10);
    println!("degree sweep, {runs} runs per point (paper uses 100)\n");

    let mut table = Table::new(
        ["degree", "protocol", "delivery %", "no-route", "ttl", "fwdconv(s)"]
            .map(String::from)
            .to_vec(),
    );
    for degree in MeshDegree::ALL {
        for protocol in ProtocolKind::PAPER {
            let summaries: Vec<RunSummary> = (0..runs)
                .map(|i| {
                    let cfg = ExperimentConfig::paper(protocol, degree, 1000 + i as u64);
                    run(&cfg).and_then(|r| summarize(&r).map_err(RunError::from))
                })
                .collect::<Result<_, _>>()?;
            let point = aggregate_point(&summaries)?;
            table.push_row(vec![
                degree.to_string(),
                protocol.label().to_string(),
                format!("{:.2}", 100.0 * point.delivery_ratio.mean),
                fmt_f64(point.drops_no_route.mean),
                fmt_f64(point.ttl_expirations.mean),
                fmt_f64(point.forwarding_convergence_s.mean),
            ]);
        }
    }
    println!("{}", table.render());
    println!("The paper's Observation 1: delivery improves with connectivity for");
    println!("every protocol, but only protocols that keep alternate-path state");
    println!("(DBF, BGP, BGP-3) can fully exploit it; RIP stays worst throughout.");
    Ok(())
}
