//! Reproduce the paper's §5.2 trace-file analysis: find the transient
//! forwarding loops BGP creates after a failure on a sparse mesh, name the
//! routers involved, and follow the sender→receiver path as it mutates.
//!
//! ```text
//! cargo run --release --example loop_forensics [seed]
//! ```

use convergence::metrics::loops::{analyze_loops, LoopFate};
use convergence::metrics::{path_history, PathOutcome};
use convergence::prelude::*;
use topology::mesh::MeshDegree;

fn main() -> Result<(), RunError> {
    let base: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(0);

    // Hunt for a seed where BGP's MRAI produces a forwarding loop on the
    // degree-3 mesh (roughly half of the scenarios do).
    for seed in base..base + 50 {
        let cfg = ExperimentConfig::paper(ProtocolKind::Bgp, MeshDegree::D3, seed);
        let result = run(&cfg)?;
        let report = analyze_loops(&result.trace);
        if report.looped_packets() == 0 {
            continue;
        }
        let flow = result.flows[0];
        println!("seed {seed}: flow {} -> {}", flow.sender, flow.receiver);
        println!(
            "failed link {} -- {}\n",
            result.failure.edges[0].a, result.failure.edges[0].b
        );

        println!(
            "{} packets entered loops; {} escaped and were still delivered, {} died of TTL",
            report.looped_packets(),
            report.escaped(),
            report.ttl_killed()
        );
        for enc in report.encounters.iter().take(5) {
            println!(
                "  packet {}: revisited {} after {} hops (total {} hops, fate {:?})",
                enc.packet, enc.pivot, enc.hops_before_revisit, enc.total_hops, enc.fate
            );
        }
        let killed = report
            .encounters
            .iter()
            .filter(|e| e.fate == LoopFate::TtlKilled)
            .count();
        println!("  ({killed} TTL deaths — the paper's Figure 4 quantity)\n");

        println!("forwarding-path timeline (seconds relative to failure):");
        let history = path_history(
            &result.trace,
            result.graph.num_nodes(),
            flow.sender,
            flow.receiver,
            result.t_fail,
        );
        for (t, outcome) in &history.timeline {
            let rel = t.as_secs_f64() - result.t_fail.as_secs_f64();
            let desc = match outcome {
                PathOutcome::Complete(p) => format!("complete, {} hops", p.len() - 1),
                PathOutcome::Loop(p) => format!("LOOP at {:?}", p.last().unwrap()),
                PathOutcome::Broken(p) => {
                    format!("broken after {:?}", p.last().unwrap())
                }
            };
            println!("  {rel:+9.3}s  {desc}");
        }
        return Ok(());
    }
    println!("no loops in seeds {base}..{}; try another range", base + 50);
    Ok(())
}
