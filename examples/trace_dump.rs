//! A tcpdump-style viewer for simulation traces: run one experiment and
//! print the annotated event log around the failure — the raw material of
//! the paper's §5.2 "study of the routing and forwarding trace files".
//!
//! ```text
//! cargo run --release --example trace_dump [seed] [window-secs]
//! ```

use convergence::prelude::*;
use netsim::trace::TraceEvent;
use topology::mesh::MeshDegree;

fn main() -> Result<(), RunError> {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("seed must be a number"))
        .unwrap_or(7);
    let window: f64 = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("window must be seconds"))
        .unwrap_or(0.5);

    let cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D4, seed);
    let result = run(&cfg)?;
    let t_fail = result.t_fail.as_secs_f64();
    let flow = result.flows[0];
    println!(
        "DBF, degree 4, seed {seed}; flow {} -> {}; link {} -- {} fails at {:.3}s",
        flow.sender,
        flow.receiver,
        result.failure.edges[0].a,
        result.failure.edges[0].b,
        t_fail
    );
    println!("events within ±{window}s of the failure:\n");

    let mut shown = 0usize;
    for event in &result.trace {
        let t = event.time().as_secs_f64();
        if (t - t_fail).abs() > window {
            continue;
        }
        let rel = t - t_fail;
        let line = match event {
            TraceEvent::PacketInjected { id, src, dst, .. } => {
                format!("inject   {id} {src} -> {dst}")
            }
            TraceEvent::PacketForwarded { id, node, next_hop, .. } => {
                format!("forward  {id} at {node} -> {next_hop}")
            }
            TraceEvent::PacketDelivered { id, node, hops, .. } => {
                format!("DELIVER  {id} at {node} after {hops} hops")
            }
            TraceEvent::PacketDropped { id, node, reason, .. } => {
                format!("DROP     {id} at {node} ({reason})")
            }
            TraceEvent::RouteChanged { node, dest, old, new, .. } => {
                let fmt = |h: &Option<netsim::ident::NodeId>| {
                    h.map_or("-".to_string(), |n| n.to_string())
                };
                format!(
                    "route    {node}: dest {dest} {} => {}",
                    fmt(old),
                    fmt(new)
                )
            }
            TraceEvent::ControlSent { from, to, bytes, .. } => {
                format!("control  {from} -> {to} ({bytes} B)")
            }
            TraceEvent::LinkFailed { a, b, .. } => format!("FAIL     link {a} -- {b}"),
            TraceEvent::LinkRecovered { a, b, .. } => format!("RECOVER  link {a} -- {b}"),
            TraceEvent::LinkStateDetected { node, neighbor, up, .. } => {
                format!(
                    "detect   {node} sees link to {neighbor} {}",
                    if *up { "UP" } else { "DOWN" }
                )
            }
            TraceEvent::ImpairmentChanged { link, loss_ppm, .. } => {
                format!("impair   link {link} loss {loss_ppm} ppm")
            }
            TraceEvent::NodeRestarted { node, .. } => format!("REBOOT   {node} (cold state)"),
        };
        println!("{rel:+10.6}s  {line}");
        shown += 1;
        if shown >= 200 {
            println!("... (truncated; widen/narrow with the window argument)");
            break;
        }
    }
    println!("\n{shown} events shown of {} total in the run", result.trace.len());
    Ok(())
}
