//! A terminal rendition of Figure 5: instantaneous throughput around the
//! failure for all four protocols, on a chosen mesh degree.
//!
//! ```text
//! cargo run --release --example throughput_timeline [degree] [runs]
//! ```

use convergence::metrics::series::{mean_u64_series, throughput_series};
use convergence::prelude::*;
use topology::mesh::MeshDegree;

const FROM_S: i64 = -10;
const TO_S: i64 = 40;

fn main() -> Result<(), RunError> {
    let degree = std::env::args()
        .nth(1)
        .map(|a| {
            MeshDegree::try_from_u32(a.parse().expect("degree must be a number"))
                .expect("degree must be 3..=8")
        })
        .unwrap_or(MeshDegree::D3);
    let runs: usize = std::env::args()
        .nth(2)
        .map(|a| a.parse().expect("runs must be a number"))
        .unwrap_or(20);

    println!("instantaneous throughput, degree {degree}, {runs} runs averaged");
    println!("x-axis: {FROM_S}..{TO_S} s around the failure; full rate = 20 pkt/s\n");

    for protocol in ProtocolKind::PAPER {
        let mut all = Vec::new();
        for i in 0..runs {
            let cfg = ExperimentConfig::paper(protocol, degree, 500 + i as u64);
            let result = run(&cfg)?;
            all.push(throughput_series(&result.trace, result.t_fail, FROM_S, TO_S));
        }
        let mean = mean_u64_series(&all);
        // Render as rows of a bar chart, one character per second.
        let bars: String = mean
            .iter()
            .map(|&(_, v)| {
                const GLYPHS: [char; 9] =
                    [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
                let ix = ((v / 20.0) * 8.0).round().clamp(0.0, 8.0) as usize;
                GLYPHS[ix]
            })
            .collect();
        println!("{:>5} |{bars}|", protocol.label());
    }
    let marker: String = (FROM_S..TO_S)
        .map(|s| if s == 0 { '^' } else { ' ' })
        .collect();
    println!("       {marker} failure");
    println!();
    println!("Expected (paper Fig. 5): at degree 3 every protocol dips; RIP");
    println!("recovers on the 30 s periodic cycle, BGP on the ~30 s MRAI,");
    println!("DBF/BGP-3 within seconds. At degree 6 only RIP still dips.");
    Ok(())
}
