//! Quickstart: run the paper's canonical experiment once and print what
//! happened to the packets.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use convergence::prelude::*;
use topology::mesh::MeshDegree;

fn main() -> Result<(), RunError> {
    // One run: DBF on the 7x7 degree-5 mesh, a random link on the live
    // sender->receiver path fails, 20 packets/s flow through it.
    let config = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D5, 42);
    let result = run(&config)?;
    let summary = summarize(&result)?;

    let flow = result.flows[0];
    println!("protocol        : {}", config.protocol);
    println!("flow            : {} -> {}", flow.sender, flow.receiver);
    println!(
        "failed link     : {} -- {}",
        result.failure.edges[0].a, result.failure.edges[0].b
    );
    println!(
        "failure at      : {} (detected {} later)",
        result.t_fail, result.detection
    );
    println!();
    println!("injected        : {}", summary.injected);
    println!("delivered       : {}", summary.delivered);
    println!("delivery ratio  : {:.2}%", 100.0 * summary.delivery_ratio());
    println!("drops (no route): {}", summary.drops.no_route);
    println!("drops (TTL)     : {}", summary.drops.ttl_expired);
    println!("drops (on link) : {}", summary.drops.link_down);
    println!(
        "fwd convergence : {:.3} s after detection",
        summary.forwarding_convergence_s
    );
    println!(
        "rt  convergence : {:.3} s after detection",
        summary.routing_convergence_s
    );
    println!("transient paths : {}", summary.transient_paths);
    if let Some(delay) = summary.mean_delay_s {
        println!("mean delay      : {:.3} ms", delay * 1e3);
    }
    Ok(())
}
