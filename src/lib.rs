//! # routing-convergence-study
//!
//! Umbrella crate for the reproduction of *"A Study of Packet Delivery
//! Performance during Routing Convergence"* (DSN 2003). It re-exports the
//! workspace crates so the examples and integration tests can address the
//! whole system through one dependency:
//!
//! * [`netsim`] — deterministic packet-level network simulator,
//! * [`topology`] — regular meshes and graph analysis,
//! * [`routing_core`] — shared protocol building blocks,
//! * [`rip`], [`dbf`], [`bgp`], [`spf`] — the routing protocols,
//! * [`convergence`] — the experiment harness and metrics.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub use bgp;
pub use convergence;
pub use dbf;
pub use netsim;
pub use rip;
pub use routing_core;
pub use spf;
pub use topology;
