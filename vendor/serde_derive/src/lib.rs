//! No-op `Serialize`/`Deserialize` derives for the vendored serde stub.
//!
//! The stub `serde` crate implements both traits for all types via blanket
//! impls, so the derives have nothing to emit — they only need to exist so
//! `#[derive(Serialize, Deserialize)]` parses.

use proc_macro::TokenStream;

/// Emits nothing; the stub serde has a blanket `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Emits nothing; the stub serde has a blanket `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
