//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the small slice of the rand 0.8 API the workspace actually uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`] for
//! `u64`/`f64`, and [`Rng::gen_range`] over integer ranges.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — statistically
//! solid, fast, and fully deterministic. Streams differ from the real
//! `rand::rngs::SmallRng`, which is fine: every consumer in this workspace
//! only requires determinism for a fixed seed, not a particular stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of `T` from the "standard" distribution: the full
    /// integer range, or `[0, 1)` for floats.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, span)` by rejection sampling (no modulo
/// bias, loops at most a couple of times in expectation).
fn uniform_below<R: Rng>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Concrete generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let v: usize = rng.gen_range(0..3);
            assert!(v < 3);
            let v: u64 = rng.gen_range(5..=5);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
