//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its config and trace
//! types but never performs actual serialization (no `serde_json` or
//! similar is in the dependency tree — reports are hand-rolled CSV). Since
//! the build environment has no crates.io access, this crate supplies the
//! two marker traits plus no-op derive macros so those derives compile.
//!
//! Blanket implementations make every type trivially `Serialize` and
//! `Deserialize`, which is sound here precisely because no code consumes
//! the traits' (empty) contracts.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T> Deserialize<'de> for T {}
