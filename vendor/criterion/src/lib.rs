//! Offline stand-in for `criterion`.
//!
//! Provides enough of the criterion 0.5 API for this workspace's benches to
//! compile and produce useful (if statistically unsophisticated) numbers:
//! each benchmark runs a short warm-up followed by a fixed number of timed
//! iterations, and the mean per-iteration time is printed.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; accepted and ignored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver handed to registered benchmark functions.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), self.sample_size, f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Registers and immediately runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name.into()),
            self.sample_size,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        iterations: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
    println!("{label}: {:.3} ms/iter ({} iters)", mean * 1e3, bencher.iterations);
}

/// Times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` input per iteration; setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Registers a group of benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
