//! Case execution support: configuration, failure type, and the per-case
//! deterministic generator.

use std::fmt;

/// Mirrors `proptest::test_runner::Config` for the `with_cases` usage.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Why a single case failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failed assertion with a rendered message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator backing one test case (SplitMix64).
///
/// Case `i` always uses the stream seeded by `i`, so "case 17 failed" is a
/// complete reproduction recipe.
#[derive(Debug, Clone)]
pub struct CaseRng {
    state: u64,
}

impl CaseRng {
    /// The generator for case number `case`.
    #[must_use]
    pub fn for_case(case: u64) -> Self {
        CaseRng {
            state: case.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)` without modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty sampling span");
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % span;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_rng_is_deterministic() {
        let mut a = CaseRng::for_case(3);
        let mut b = CaseRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = CaseRng::for_case(4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = CaseRng::for_case(0);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
