//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API used by this workspace's
//! property tests: the [`proptest!`] macro with `#![proptest_config(..)]`,
//! integer-range / `prop::sample::select` / `prop::collection::vec` / tuple
//! strategies, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking: each test runs its configured
//! number of cases with deterministically seeded inputs (case `i` uses seed
//! `i`), so a failure report's case index is enough to reproduce it.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Strategy constructors, mirroring proptest's `prop` module.
pub mod prop {
    /// Sampling from explicit collections.
    pub mod sample {
        use crate::strategy::Select;

        /// Uniformly selects one of `options` per case.
        pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select { options }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{Strategy, VecStrategy};
        use std::ops::Range;

        /// Generates vectors whose length is drawn from `len` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "vec strategy needs a nonempty length range");
            VecStrategy { element, len }
        }
    }
}

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a
/// `#[test]` that evaluates `body` for every generated case, panicking on
/// the first failed case with its index.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut runner_rng =
                        $crate::test_runner::CaseRng::for_case(u64::from(case));
                    $(
                        let $arg = $crate::strategy::Strategy::sample(
                            &$strategy,
                            &mut runner_rng,
                        );
                    )+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case}/{} failed: {}",
                            config.cases, e
                        );
                    }
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strategy),+) $body
            )*
        }
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: both sides equal {:?}",
            left
        );
    }};
}
