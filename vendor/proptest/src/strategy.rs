//! Value-generation strategies (subset of proptest's `Strategy`).

use std::ops::Range;

use crate::test_runner::CaseRng;

/// Something that can generate values for test cases.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut CaseRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut CaseRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy returned by `prop::sample::select`.
#[derive(Debug, Clone)]
pub struct Select<T> {
    pub(crate) options: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut CaseRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// Strategy returned by `prop::collection::vec`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut CaseRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let len = self.len.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut CaseRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut CaseRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_collections_compose() {
        let mut rng = CaseRng::for_case(1);
        let strat = crate::prop::collection::vec((1u64..10, 0usize..4), 2..6);
        let v = strat.sample(&mut rng);
        assert!((2..6).contains(&v.len()));
        for (a, b) in v {
            assert!((1..10).contains(&a));
            assert!(b < 4);
        }
    }
}
