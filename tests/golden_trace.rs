//! Golden-trace regression tests: one small fixed-seed run per paper
//! protocol, with the full `TraceEvent` stream pinned as a compressed
//! fixture under `tests/golden/`.
//!
//! Any engine change that reorders events, alters a tie-break, or drifts
//! a timer shows up here as a byte-level diff of the rendered trace —
//! *before* it can silently shift the paper's figures. The fixtures are
//! compressed with the dependency-free `obs` codec, so they stay small
//! enough to commit.
//!
//! To regenerate after an *intentional* behavior change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test --test golden_trace
//! ```
//!
//! and commit the updated fixtures together with the change that
//! justified them.

use convergence::experiment::TopologySpec;
use convergence::prelude::*;
use netsim::time::SimDuration;
use topology::mesh::MeshDegree;

/// The golden scenario: the paper's degree-4 single-link failure shrunk
/// to a 4×4 mesh with a short, low-rate flow, so each fixture stays a
/// few kilobytes compressed while still exercising failure detection,
/// convergence, and the full drop taxonomy.
fn golden_config(protocol: ProtocolKind) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(protocol, MeshDegree::D4, 20030622);
    cfg.topology = TopologySpec::Mesh {
        rows: 4,
        cols: 4,
        degree: MeshDegree::D4,
    };
    cfg.traffic.lead = SimDuration::from_secs(2);
    cfg.traffic.tail = SimDuration::from_secs(10);
    cfg.traffic.rate_pps = 10;
    cfg.drain = SimDuration::from_secs(30);
    cfg
}

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.trace.lz"))
}

fn check_golden(protocol: ProtocolKind, name: &str) {
    let cfg = golden_config(protocol);
    let result = run(&cfg).expect("golden run succeeds");
    let rendered = result.trace.render_lines();
    let path = fixture_path(name);

    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create dir");
        std::fs::write(&path, obs::codec::compress(rendered.as_bytes()))
            .expect("write fixture");
        return;
    }

    let compressed = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run GOLDEN_REGEN=1 cargo test --test golden_trace",
            path.display()
        )
    });
    let golden = obs::codec::decompress(&compressed).expect("fixture decompresses");
    let golden = String::from_utf8(golden).expect("fixture is utf-8");
    if rendered != golden {
        // Point at the first divergent line: a full multi-thousand-line
        // assert_eq dump is useless for diagnosing a tie-break change.
        let line = rendered
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| rendered.lines().count().min(golden.lines().count()));
        let got = rendered.lines().nth(line).unwrap_or("<end of trace>");
        let want = golden.lines().nth(line).unwrap_or("<end of trace>");
        panic!(
            "{name}: trace diverges from golden fixture at line {} of {} (golden {}):\n  got:  {got}\n  want: {want}",
            line + 1,
            rendered.lines().count(),
            golden.lines().count(),
        );
    }
}

#[test]
fn golden_trace_rip() {
    check_golden(ProtocolKind::Rip, "rip");
}

#[test]
fn golden_trace_dbf() {
    check_golden(ProtocolKind::Dbf, "dbf");
}

#[test]
fn golden_trace_bgp() {
    check_golden(ProtocolKind::Bgp, "bgp");
}

#[test]
fn golden_trace_bgp3() {
    check_golden(ProtocolKind::Bgp3, "bgp3");
}

/// The golden scenario itself is deterministic: two runs render
/// byte-identical traces (guards the fixtures against flakiness of the
/// scenario rather than of the engine).
#[test]
fn golden_scenario_is_deterministic() {
    let a = run(&golden_config(ProtocolKind::Dbf)).expect("run");
    let b = run(&golden_config(ProtocolKind::Dbf)).expect("run");
    assert_eq!(a.trace.render_lines(), b.trace.render_lines());
}
