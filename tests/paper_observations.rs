//! End-to-end assertions of the paper's five observations, each checked
//! over a handful of seeded runs (the figure binaries run the full
//! 100-run versions).

use convergence::aggregate::aggregate_point;
use convergence::prelude::*;
use topology::mesh::MeshDegree;

const RUNS: usize = 8;

fn point(protocol: ProtocolKind, degree: MeshDegree) -> convergence::aggregate::PointSummary {
    let summaries: Vec<RunSummary> = (0..RUNS)
        .map(|i| {
            let cfg = ExperimentConfig::paper(protocol, degree, 7000 + i as u64);
            summarize(&run(&cfg).expect("run succeeds")).expect("summary")
        })
        .collect();
    aggregate_point(&summaries).expect("nonempty sweep")
}

#[test]
fn observation_1_drops_fall_with_degree_and_rip_stays_worst() {
    for protocol in [ProtocolKind::Dbf, ProtocolKind::Bgp, ProtocolKind::Bgp3] {
        let sparse = point(protocol, MeshDegree::D3);
        let dense = point(protocol, MeshDegree::D6);
        assert!(
            sparse.drops_no_route.mean > dense.drops_no_route.mean,
            "{protocol}: drops should fall with connectivity"
        );
        assert!(
            dense.drops_no_route.mean < 1.0,
            "{protocol}: virtually no drops at degree 6, got {}",
            dense.drops_no_route.mean
        );
    }
    let rip_dense = point(ProtocolKind::Rip, MeshDegree::D6);
    assert!(
        rip_dense.drops_no_route.mean > 10.0,
        "RIP improves only slightly; expected substantial drops at degree 6, got {}",
        rip_dense.drops_no_route.mean
    );
}

#[test]
fn observation_2_rip_never_loops_and_bgp_loops_most() {
    let rip = point(ProtocolKind::Rip, MeshDegree::D3);
    assert_eq!(
        rip.ttl_expirations.mean, 0.0,
        "RIP must have zero TTL expirations (it drops instead of looping)"
    );
    let bgp = point(ProtocolKind::Bgp, MeshDegree::D3);
    let bgp3 = point(ProtocolKind::Bgp3, MeshDegree::D3);
    assert!(
        bgp.ttl_expirations.mean > bgp3.ttl_expirations.mean,
        "BGP's 30 s MRAI must stretch loops beyond BGP-3's ({} vs {})",
        bgp.ttl_expirations.mean,
        bgp3.ttl_expirations.mean
    );
    // Dense meshes end looping entirely.
    for protocol in ProtocolKind::PAPER {
        let dense = point(protocol, MeshDegree::D8);
        assert_eq!(
            dense.ttl_expirations.mean, 0.0,
            "{protocol}: no TTL expirations at degree 8"
        );
    }
}

#[test]
fn observation_3_recovery_timescales_match_the_timers() {
    // RIP's post-failure outage at degree 3 is on the periodic-update
    // timescale (several seconds, bounded by ~30 s).
    let rip = point(ProtocolKind::Rip, MeshDegree::D3);
    let outage_s = rip.drops_no_route.mean / 20.0; // 20 pkt/s
    assert!(
        (1.0..=35.0).contains(&outage_s),
        "RIP outage should be seconds-to-30s, got {outage_s:.1}s"
    );
    // DBF and BGP-3 lose far less.
    let dbf = point(ProtocolKind::Dbf, MeshDegree::D3);
    assert!(
        dbf.drops_no_route.mean < rip.drops_no_route.mean / 2.0,
        "DBF ({}) should drop far less than RIP ({})",
        dbf.drops_no_route.mean,
        rip.drops_no_route.mean
    );
}

#[test]
fn observation_4_fast_mrai_speeds_convergence_but_not_delivery_at_degree_6() {
    let bgp = point(ProtocolKind::Bgp, MeshDegree::D6);
    let bgp3 = point(ProtocolKind::Bgp3, MeshDegree::D6);
    assert!(
        bgp.routing_convergence_s.mean > bgp3.routing_convergence_s.mean + 5.0,
        "BGP-3 must converge much faster ({} vs {})",
        bgp3.routing_convergence_s.mean,
        bgp.routing_convergence_s.mean
    );
    // ...while the packet-drop difference is negligible.
    assert!(
        (bgp.drops_no_route.mean - bgp3.drops_no_route.mean).abs() < 2.0,
        "drop difference should be negligible at degree 6 ({} vs {})",
        bgp.drops_no_route.mean,
        bgp3.drops_no_route.mean
    );
}

#[test]
fn observation_5_convergence_era_packets_take_longer_paths() {
    // Find a BGP-3 degree-3 run that delivered packets during convergence
    // and compare their delay to the steady-state baseline. The sparse
    // mesh is where the effect lives: alternate paths are much longer
    // than the failed shortest path, so convergence-era packets arrive
    // with visibly higher delay. (At degree >= 4 the detour is often the
    // same length and the bump vanishes.)
    for seed in 0..20u64 {
        let cfg = ExperimentConfig::paper(ProtocolKind::Bgp3, MeshDegree::D3, 400 + seed);
        let result = run(&cfg).expect("run succeeds");
        let series = convergence::metrics::delay_series(&result.trace, result.t_fail, -10, 40);
        let baseline: Vec<f64> = series[..10].iter().filter_map(|&(_, d)| d).collect();
        let after: Vec<f64> = series[10..15].iter().filter_map(|&(_, d)| d).collect();
        if baseline.is_empty() || after.is_empty() {
            continue;
        }
        let base = baseline.iter().sum::<f64>() / baseline.len() as f64;
        let conv = after.iter().copied().fold(0.0f64, f64::max);
        if conv > base * 1.2 {
            return; // found the paper's delay bump
        }
    }
    panic!("no run showed elevated delay during convergence");
}

#[test]
fn whole_pipeline_is_deterministic() {
    let cfg = ExperimentConfig::paper(ProtocolKind::Bgp, MeshDegree::D5, 31415);
    let a = summarize(&run(&cfg).expect("first run")).expect("summary");
    let b = summarize(&run(&cfg).expect("second run")).expect("summary");
    assert_eq!(a, b);
}

#[test]
fn packet_conservation_across_protocols() {
    for protocol in ProtocolKind::ALL {
        let cfg = ExperimentConfig::paper(protocol, MeshDegree::D4, 99);
        let result = run(&cfg).expect("run succeeds");
        let s = summarize(&result).expect("summary");
        assert_eq!(
            s.injected,
            s.delivered + s.drops.total(),
            "{protocol}: injected != delivered + dropped"
        );
    }
}
