//! End-to-end tests of the parallel sweep engine: bit-identical results
//! for every worker count, streaming-vs-trace metric equality, and panic
//! isolation inside a multi-threaded sweep.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use convergence::experiment::ProtocolFactory;
use convergence::prelude::*;
use spf::Spf;
use topology::mesh::MeshDegree;

fn options(jobs: usize, mode: SweepMode) -> SweepOptions {
    SweepOptions {
        jobs,
        retry: RetryPolicy::default(),
        mode,
    }
}

#[test]
fn run_many_is_bit_identical_for_every_job_count() {
    let cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D4, 0);
    let sequential = run_many_jobs(&cfg, 4, 901, 1).expect("sequential runs succeed");
    let parallel = run_many_jobs(&cfg, 4, 901, 4).expect("parallel runs succeed");
    assert_eq!(sequential.len(), parallel.len());
    for ((seq_result, seq_summary), (par_result, par_summary)) in
        sequential.iter().zip(parallel.iter())
    {
        assert_eq!(seq_summary, par_summary);
        assert_eq!(seq_result.trace.len(), par_result.trace.len());
        assert_eq!(
            seq_result.stats.events_processed,
            par_result.stats.events_processed
        );
    }
}

#[test]
fn hardened_sweep_is_bit_identical_for_every_job_count() {
    let cfg = ExperimentConfig::paper(ProtocolKind::Rip, MeshDegree::D4, 0);
    let sequential = run_sweep_with(&cfg, 4, 300, options(1, SweepMode::Trace));
    let parallel = run_sweep_with(&cfg, 4, 300, options(4, SweepMode::Trace));
    assert!(sequential.failed.is_empty());
    assert!(parallel.failed.is_empty());
    assert_eq!(sequential.retries, parallel.retries);
    assert_eq!(sequential.summaries(), parallel.summaries());
}

#[test]
fn streaming_mode_matches_trace_mode_for_each_paper_protocol() {
    for protocol in [ProtocolKind::Rip, ProtocolKind::Dbf, ProtocolKind::Bgp3] {
        let cfg = ExperimentConfig::paper(protocol, MeshDegree::D4, 0);
        let trace = run_sweep_with(&cfg, 3, 700, options(2, SweepMode::Trace));
        let streaming = run_sweep_with(&cfg, 3, 700, options(2, SweepMode::Streaming));
        assert!(trace.failed.is_empty(), "{protocol}: trace sweep failed");
        assert_eq!(
            trace.summaries(),
            streaming.summaries(),
            "{protocol}: streaming fold diverged from the trace analyzers"
        );
        // Streaming discards every trace; trace mode keeps them all.
        assert_eq!(streaming.results().count(), 0);
        assert_eq!(trace.results().count(), 3);
    }
}

#[test]
fn sweep_telemetry_is_bit_identical_for_every_job_count() {
    let cfg = ExperimentConfig::paper(ProtocolKind::Dbf, MeshDegree::D4, 0);
    let sequential = run_sweep_with(&cfg, 3, 512, options(1, SweepMode::Streaming));
    let parallel = run_sweep_with(&cfg, 3, 512, options(3, SweepMode::Streaming));
    assert_eq!(sequential.telemetry, parallel.telemetry);
    assert_eq!(
        render_jsonl(&sequential.telemetry),
        render_jsonl(&parallel.telemetry),
        "telemetry JSONL bytes must not depend on the worker count"
    );
    // One record per slot, in slot order, fully populated.
    assert_eq!(sequential.telemetry.len(), 3);
    for (i, row) in sequential.telemetry.iter().enumerate() {
        assert_eq!(row.slot, i as u64);
        assert_eq!(row.attempts, 1);
        assert!(row.ok);
        assert_eq!(row.protocol, "DBF");
        assert!(row.events_processed > 0);
        assert!(row.queue_high_water > 0);
        assert_eq!(row.packets_injected, 1000);
    }
    // Streaming mode discards results but never the telemetry.
    assert_eq!(sequential.results().count(), 0);
}

#[test]
fn retry_attempts_are_recorded_in_telemetry() {
    // Exactly one protocol build panics, early enough to land inside
    // slot 0's first attempt (the sweep's label probe consumes build 0;
    // builds 1..=49 install slot 0's 49 nodes). The retry — with a
    // derived seed — completes, and the sweep must report the true
    // attempt count, not just the final attempt's success.
    let builds = Arc::new(AtomicUsize::new(0));
    let factory = {
        let builds = Arc::clone(&builds);
        ProtocolFactory::new(move || {
            assert_ne!(
                builds.fetch_add(1, Ordering::Relaxed),
                5,
                "injected mid-install panic"
            );
            Box::new(Spf::default())
        })
    };
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 0);
    cfg.protocol_override = Some(factory);

    let outcome = run_sweep_with(&cfg, 2, 40, options(1, SweepMode::Streaming));
    assert!(outcome.failed.is_empty(), "retry should have salvaged slot 0");
    assert_eq!(outcome.retries, 1);
    assert_eq!(outcome.completed[0].attempts, 2);
    assert_eq!(outcome.completed[1].attempts, 1);
    assert_eq!(outcome.telemetry.len(), 2);
    assert_eq!(outcome.telemetry[0].attempts, 2);
    assert_eq!(outcome.telemetry[1].attempts, 1);
    assert!(outcome.telemetry.iter().all(|t| t.ok));
}

#[test]
fn exhausted_retries_yield_a_failed_telemetry_record() {
    let factory = ProtocolFactory::new(|| panic!("injected unconditional panic"));
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 0);
    cfg.protocol_override = Some(factory);

    let outcome = run_sweep_with(
        &cfg,
        1,
        40,
        SweepOptions {
            jobs: 1,
            retry: RetryPolicy { max_attempts: 2 },
            mode: SweepMode::Streaming,
        },
    );
    assert!(outcome.completed.is_empty());
    assert_eq!(outcome.failed.len(), 1);
    assert_eq!(outcome.failed[0].attempts, 2);
    assert_eq!(outcome.telemetry.len(), 1);
    let row = &outcome.telemetry[0];
    assert!(!row.ok);
    assert_eq!(row.attempts, 2);
    assert!(!row.error.is_empty());
    // The JSONL line survives the panic message's quoting.
    let line = row.to_json_line();
    assert!(line.contains("\"ok\":false"));
    assert!(line.contains("\"attempts\":2"));
}

#[test]
fn a_panicking_run_is_isolated_and_reported() {
    let runs = 4;
    // The factory is called once per node (49 per run); exactly one call
    // — inside exactly one run, whichever worker gets there first —
    // panics. With retries disabled, the other slots must complete
    // untouched while the poisoned one surfaces as a typed failure.
    let builds = Arc::new(AtomicUsize::new(0));
    let trigger = 60; // lands mid-build of some run for every schedule
    let factory = {
        let builds = Arc::clone(&builds);
        ProtocolFactory::new(move || {
            assert_ne!(
                builds.fetch_add(1, Ordering::Relaxed),
                trigger,
                "injected protocol-construction panic"
            );
            Box::new(Spf::default())
        })
    };
    let mut cfg = ExperimentConfig::paper(ProtocolKind::Spf, MeshDegree::D4, 0);
    cfg.protocol_override = Some(factory);

    let outcome = run_sweep_with(
        &cfg,
        runs,
        40,
        SweepOptions {
            jobs: 2,
            retry: RetryPolicy { max_attempts: 1 },
            mode: SweepMode::Streaming,
        },
    );
    assert_eq!(outcome.completed.len(), runs - 1);
    assert_eq!(outcome.failed.len(), 1);
    assert!(
        matches!(outcome.failed[0].error, RunError::Panicked(_)),
        "expected a Panicked error, got: {}",
        outcome.failed[0].error
    );
}
